//! Property test: the indexed backtracking evaluator agrees with a naive
//! reference evaluator (full cross product + filter) on random databases
//! and random conjunctive queries.

use eq_db::{Database, Valuation};
use eq_ir::{Atom, Term, Value, Var};
use proptest::prelude::*;

const RELS: [&str; 2] = ["P", "Q"];
const ARITY: usize = 2;
const NUM_VARS: u32 = 3;
const DOMAIN: i64 = 4;

#[derive(Clone, Debug)]
struct Instance {
    rows_p: Vec<(i64, i64)>,
    rows_q: Vec<(i64, i64)>,
    atoms: Vec<Atom>,
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NUM_VARS).prop_map(|i| Term::var(Var(i))),
        (0..DOMAIN).prop_map(Term::int),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0..RELS.len(), proptest::collection::vec(arb_term(), ARITY))
        .prop_map(|(r, terms)| Atom::new(RELS[r], terms))
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..12),
        proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..12),
        proptest::collection::vec(arb_atom(), 1..4),
    )
        .prop_map(|(rows_p, rows_q, atoms)| Instance {
            rows_p,
            rows_q,
            atoms,
        })
}

fn build_db(inst: &Instance) -> Database {
    let mut db = Database::new();
    db.create_table("P", &["a", "b"]).unwrap();
    db.create_table("Q", &["a", "b"]).unwrap();
    for &(a, b) in &inst.rows_p {
        db.insert("P", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    for &(a, b) in &inst.rows_q {
        db.insert("Q", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    db
}

/// Reference evaluator: enumerate every assignment of the atoms' variables
/// over the value domain and keep those under which every atom is a
/// database fact.
fn reference_eval(db: &Database, atoms: &[Atom]) -> Vec<Vec<(Var, Value)>> {
    let mut vars: Vec<Var> = atoms.iter().flat_map(|a| a.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    let k = vars.len();
    let mut out = Vec::new();
    let mut counters = vec![0i64; k];
    'outer: loop {
        let lookup = |v: Var| -> Value {
            let idx = vars.iter().position(|&x| x == v).unwrap();
            Value::int(counters[idx])
        };
        let holds = atoms.iter().all(|atom| {
            let row: Vec<Value> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => lookup(*v),
                })
                .collect();
            db.contains(atom.relation.as_str(), &row)
        });
        if holds {
            out.push(vars.iter().map(|&v| (v, lookup(v))).collect());
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == k {
                break 'outer;
            }
            counters[i] += 1;
            if counters[i] < DOMAIN {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
        if k == 0 {
            break;
        }
    }
    out
}

fn normalize(mut vals: Vec<Vec<(Var, Value)>>) -> Vec<Vec<(Var, Value)>> {
    for v in &mut vals {
        v.sort_unstable_by_key(|(var, _)| *var);
    }
    vals.sort();
    vals.dedup();
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_eval_matches_reference(inst in arb_instance()) {
        let db = build_db(&inst);
        let fast: Vec<Valuation> = db.evaluate(&inst.atoms, usize::MAX).unwrap();
        let fast_norm = normalize(
            fast.into_iter()
                .map(|m| m.into_iter().collect::<Vec<_>>())
                .collect(),
        );
        let slow_norm = normalize(reference_eval(&db, &inst.atoms));
        prop_assert_eq!(fast_norm, slow_norm);
    }

    #[test]
    fn limit_is_prefix_of_full(inst in arb_instance(), limit in 0usize..5) {
        let db = build_db(&inst);
        let full = db.evaluate(&inst.atoms, usize::MAX).unwrap();
        let limited = db.evaluate(&inst.atoms, limit).unwrap();
        prop_assert_eq!(limited.len(), full.len().min(limit));
        // Every limited valuation is a valid full valuation.
        for lv in &limited {
            prop_assert!(full.contains(lv));
        }
    }
}
