//! Stack-bound regression test for the iterative evaluator.
//!
//! The recursive evaluator's depth equaled the atom count, so a
//! conjunction this deep needed a dedicated big-stack thread (the bench
//! runner used to spawn one with 512 MiB). The iterative evaluator
//! keeps its frames on the heap; this test joins a chain whose depth
//! would blow a ~1 MiB stack through the old recursion (roughly one
//! `search` + `try_row` frame pair per atom) and must pass even under
//! `RUST_MIN_STACK=1048576`, which is exactly how `scripts/ci.sh` runs
//! it — if recursion ever sneaks back into `eq_db::eval`, this test
//! overflows there instead of deep inside a benchmark.

use eq_db::Database;
use eq_ir::{Atom, Term, Value, Var};

const DEPTH: usize = 4096;

fn chain_db() -> Database {
    let mut db = Database::new();
    db.create_table("Chain", &["from", "to"]).unwrap();
    db.insert_many(
        "Chain",
        (0..DEPTH as i64)
            .map(|i| vec![Value::int(i), Value::int(i + 1)])
            .collect(),
    )
    .unwrap();
    db
}

#[test]
fn deep_chain_join_runs_on_a_small_stack() {
    let db = chain_db();
    // One atom per chain link, each binding its own variable: the join
    // is DEPTH levels deep, with exactly one candidate row per level.
    let atoms: Vec<Atom> = (0..DEPTH)
        .map(|i| Atom::new("Chain", vec![Term::int(i as i64), Term::var(Var(i as u32))]))
        .collect();
    // limit 2 forces the search to exhaust the space (prove uniqueness),
    // exercising the full unwind path, not just the first descent.
    let sols = db.evaluate(&atoms, 2).unwrap();
    assert_eq!(sols.len(), 1);
    for i in 0..DEPTH {
        assert_eq!(sols[0][&Var(i as u32)], Value::int(i as i64 + 1));
    }
}

#[test]
fn deep_unsatisfiable_chain_unwinds_without_overflow() {
    let db = chain_db();
    // Same chain, but the last link demands a row that does not exist:
    // the search descends DEPTH frames and backtracks all the way out.
    let mut atoms: Vec<Atom> = (0..DEPTH)
        .map(|i| Atom::new("Chain", vec![Term::int(i as i64), Term::var(Var(i as u32))]))
        .collect();
    atoms.push(Atom::new(
        "Chain",
        vec![
            Term::var(Var(DEPTH as u32 - 1)),
            Term::int(-1), // no such successor
        ],
    ));
    let sols = db.evaluate(&atoms, 1).unwrap();
    assert!(sols.is_empty());
}
