//! The database: a catalog of tables plus the public evaluation API.

use crate::eval::{self, EvalStats, Valuation};
use crate::table::{RowStore, StoreIoStats, Table, TableSchema, Tuple};
use eq_ir::{Atom, Constraint, FastMap, Symbol, Value};
use std::fmt;

/// Errors raised by the database layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// A relation name was not found in the catalog.
    UnknownRelation(Symbol),
    /// A relation with this name already exists.
    DuplicateRelation(Symbol),
    /// A tuple or atom had the wrong number of columns for its relation.
    ArityMismatch {
        /// The relation involved.
        relation: Symbol,
        /// Arity declared in the catalog.
        expected: usize,
        /// Arity supplied by the caller.
        got: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            DbError::DuplicateRelation(r) => write!(f, "relation {r} already exists"),
            DbError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for {relation}: schema has {expected} columns, got {got}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

/// An in-memory relational database.
///
/// Evaluation operates on `&self`; the coordination engine wraps the
/// database in a read-write lock and evaluates combined queries under a
/// read guard, which realises the paper's requirement that "the
/// underlying database is not changed during the answering process"
/// (§2.3).
#[derive(Default)]
pub struct Database {
    /// Relation backends. [`Database::create_table`] installs the
    /// in-memory [`Table`]; [`Database::attach_table`] accepts any
    /// [`RowStore`] (notably `eq_store`'s paged backend).
    tables: FastMap<Symbol, Box<dyn RowStore>>,
    /// Monotone mutation counter; see [`Database::revision`].
    revision: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table. Fails if the name is taken.
    pub fn create_table(&mut self, name: &str, columns: &[&str]) -> Result<(), DbError> {
        let schema = TableSchema::new(name, columns);
        let name = schema.name;
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateRelation(name));
        }
        self.tables.insert(name, Box::new(Table::new(schema)));
        self.revision += 1;
        Ok(())
    }

    /// Installs an externally built [`RowStore`] backend (a paged
    /// on-disk table, say) under its schema's relation name. Fails if
    /// the name is taken. The backend participates in every catalog
    /// operation — inserts, deletes, scans, evaluation — exactly like a
    /// table created by [`Database::create_table`].
    pub fn attach_table(&mut self, table: Box<dyn RowStore>) -> Result<(), DbError> {
        let name = table.schema().name;
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateRelation(name));
        }
        self.tables.insert(name, table);
        self.revision += 1;
        Ok(())
    }

    /// Sum of the I/O counters of every table backend. In-memory
    /// tables contribute zeros, so this is non-zero exactly when a
    /// paged backend has touched its cache. Stamped into
    /// `BatchReport::io` by the coordination engine's flush.
    pub fn io_stats(&self) -> StoreIoStats {
        self.tables
            .values()
            .fold(StoreIoStats::default(), |acc, t| acc.merge(t.io_stats()))
    }

    /// A counter bumped by every successful mutation (`create_table`,
    /// `insert`, `delete`, `update`). Readers that cache derived state —
    /// the coordination engine's dirty-component tracking uses this to
    /// decide whether kept-pending components must be re-evaluated —
    /// compare revisions instead of diffing tables.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Inserts a tuple, maintaining all column indexes.
    pub fn insert(&mut self, relation: &str, row: Tuple) -> Result<(), DbError> {
        let name = Symbol::new(relation);
        let table = self
            .tables
            .get_mut(&name)
            .ok_or(DbError::UnknownRelation(name))?;
        let expected = table.schema().arity();
        if row.len() != expected {
            return Err(DbError::ArityMismatch {
                relation: name,
                expected,
                got: row.len(),
            });
        }
        table.push(row);
        self.revision += 1;
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(
        &mut self,
        relation: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), DbError> {
        for row in rows {
            self.insert(relation, row)?;
        }
        Ok(())
    }

    /// Bulk insert with one catalog lookup, one arity validation pass,
    /// and a **single revision bump** for the whole batch. Loading n
    /// rows through [`Database::insert`] bumps [`Database::revision`] n
    /// times and — when the database sits behind the engine's lock —
    /// costs n lock round trips; `insert_many` is the
    /// one-lock/one-revision form workload generators and example setup
    /// code should use. All-or-nothing: if any row has the wrong arity,
    /// nothing is inserted. Returns the number of rows inserted.
    pub fn insert_many(&mut self, relation: &str, rows: Vec<Tuple>) -> Result<usize, DbError> {
        let name = Symbol::new(relation);
        let table = self
            .tables
            .get_mut(&name)
            .ok_or(DbError::UnknownRelation(name))?;
        let expected = table.schema().arity();
        if let Some(bad) = rows.iter().find(|r| r.len() != expected) {
            return Err(DbError::ArityMismatch {
                relation: name,
                expected,
                got: bad.len(),
            });
        }
        let n = rows.len();
        for row in rows {
            table.push(row);
        }
        if n > 0 {
            self.revision += 1;
        }
        Ok(n)
    }

    /// Deletes one occurrence of an exact tuple. Returns true if a row
    /// was removed. Row ids stay stable (tombstoned internally).
    pub fn delete(&mut self, relation: &str, row: &[Value]) -> Result<bool, DbError> {
        let name = Symbol::new(relation);
        let table = self
            .tables
            .get_mut(&name)
            .ok_or(DbError::UnknownRelation(name))?;
        if row.len() != table.schema().arity() {
            return Err(DbError::ArityMismatch {
                relation: name,
                expected: table.schema().arity(),
                got: row.len(),
            });
        }
        let deleted = table.delete(row);
        if deleted {
            self.revision += 1;
        }
        Ok(deleted)
    }

    /// Replaces one occurrence of `old` with `new` (delete + insert).
    /// Returns true if `old` existed.
    pub fn update(&mut self, relation: &str, old: &[Value], new: Tuple) -> Result<bool, DbError> {
        if !self.delete(relation, old)? {
            return Ok(false);
        }
        self.insert(relation, new)?;
        Ok(true)
    }

    /// A deep copy of the database (schemas + rows, fresh revision
    /// counter, tombstones compacted away). The substrate has no
    /// structural sharing, so this is O(rows); one-shot coordination,
    /// engine-rebuild flows, and durability checkpoints use it to get
    /// an owned database from a borrowed one.
    ///
    /// The copy is a **trusted bulk transfer**: every row already
    /// passed arity validation when it entered its source table, so the
    /// snapshot clones schemas and pushes rows straight into fresh
    /// in-memory tables without re-running the `insert_many` validation
    /// pass — checkpoints taken every flush must not pay O(rows) of
    /// re-validation on rows the catalog itself produced. Paged
    /// backends snapshot to in-memory tables (a snapshot is an owned,
    /// self-contained image).
    pub fn snapshot(&self) -> Database {
        let mut out = Database::new();
        for table in self.tables.values() {
            let mut copy = Table::new(table.schema().clone());
            table.for_each_row(&mut |row| Table::push(&mut copy, row.to_vec()));
            out.tables.insert(copy.schema().name, Box::new(copy));
            out.revision += 1;
        }
        out
    }

    /// Looks up a table backend by name.
    pub fn table(&self, name: Symbol) -> Option<&dyn RowStore> {
        self.tables.get(&name).map(|t| t.as_ref())
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.tables.keys().copied()
    }

    /// True if the exact tuple is present in `relation`.
    pub fn contains(&self, relation: &str, row: &[Value]) -> bool {
        self.tables
            .get(&Symbol::new(relation))
            .is_some_and(|t| t.contains(row))
    }

    /// All rows of a relation, for tests and exports.
    pub fn scan(&self, relation: &str) -> Result<Vec<Tuple>, DbError> {
        let name = Symbol::new(relation);
        let table = self
            .tables
            .get(&name)
            .ok_or(DbError::UnknownRelation(name))?;
        let mut rows = Vec::with_capacity(table.len());
        table.for_each_row(&mut |row| rows.push(row.to_vec()));
        Ok(rows)
    }

    /// Evaluates a conjunction of atoms over database relations, returning
    /// up to `limit` valuations of the atoms' variables (a `LIMIT k`
    /// select-project-join query). `usize::MAX` means "all".
    ///
    /// Fails fast if an atom names an unknown relation or has the wrong
    /// arity — those are programming errors in query generation, not
    /// coordination failures.
    pub fn evaluate(&self, atoms: &[Atom], limit: usize) -> Result<Vec<Valuation>, DbError> {
        self.evaluate_with_stats(atoms, limit).map(|(v, _)| v)
    }

    /// [`Database::evaluate`] with additional comparison constraints on
    /// the valuations (`x < 5`, `level >= min`). Constraints are checked
    /// as soon as their variables bind, pruning the join search.
    pub fn evaluate_filtered(
        &self,
        atoms: &[Atom],
        constraints: &[Constraint],
        limit: usize,
    ) -> Result<Vec<Valuation>, DbError> {
        self.check_atoms(atoms)?;
        Ok(eval::evaluate(self, atoms, constraints, limit).0)
    }

    /// Streaming form of [`Database::evaluate_filtered`]: `visit` is
    /// called once per valuation, in the exact order `evaluate_filtered`
    /// would collect them, without materializing a result set. Return
    /// [`ControlFlow::Break`](std::ops::ControlFlow::Break) to stop the
    /// enumeration early. The borrowed valuation is the search's live
    /// binding map — clone it to keep a solution.
    ///
    /// This is the enumeration primitive behind the engine's
    /// articulation-projection region merge, which retains only a
    /// projection of each streamed solution instead of the solution
    /// set itself.
    pub fn evaluate_visit(
        &self,
        atoms: &[Atom],
        constraints: &[Constraint],
        visit: impl FnMut(&Valuation) -> std::ops::ControlFlow<()>,
    ) -> Result<EvalStats, DbError> {
        self.check_atoms(atoms)?;
        Ok(eval::evaluate_visit(self, atoms, constraints, visit))
    }

    /// [`Database::evaluate`] plus evaluator statistics (rows touched,
    /// index probes), used by the Figure 7 harness to report DB time
    /// drivers.
    pub fn evaluate_with_stats(
        &self,
        atoms: &[Atom],
        limit: usize,
    ) -> Result<(Vec<Valuation>, EvalStats), DbError> {
        self.check_atoms(atoms)?;
        Ok(eval::evaluate(self, atoms, &[], limit))
    }

    /// Validates that every atom names a known relation with the right
    /// arity — the same fail-fast pre-check [`Database::evaluate`] runs
    /// before searching. Public so callers that split a conjunction
    /// into independently evaluated pieces (the engine's partitioned
    /// intra-component evaluation) can report validation errors for the
    /// *whole* conjunction up front, exactly as one-shot evaluation
    /// would.
    pub fn check_atoms(&self, atoms: &[Atom]) -> Result<(), DbError> {
        for atom in atoms {
            let table = self
                .tables
                .get(&atom.relation)
                .ok_or(DbError::UnknownRelation(atom.relation))?;
            let expected = table.schema().arity();
            if atom.arity() != expected {
                return Err(DbError::ArityMismatch {
                    relation: atom.relation,
                    expected,
                    got: atom.arity(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<_> = self.tables.values().map(|t| format!("{t:?}")).collect();
        names.sort();
        write!(f, "Database[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_scan() {
        let mut db = Database::new();
        db.create_table("User", &["name", "home"]).unwrap();
        db.insert("User", vec![Value::str("Jerry"), Value::str("ITH")])
            .unwrap();
        let rows = db.scan("User").unwrap();
        assert_eq!(rows.len(), 1);
        assert!(db.contains("User", &[Value::str("Jerry"), Value::str("ITH")]));
        assert!(!db.contains("User", &[Value::str("Jerry"), Value::str("JFK")]));
    }

    #[test]
    fn insert_many_single_revision_bump() {
        let mut db = Database::new();
        db.create_table("T", &["a", "b"]).unwrap();
        let before = db.revision();
        let n = db
            .insert_many(
                "T",
                vec![
                    vec![Value::int(1), Value::str("x")],
                    vec![Value::int(2), Value::str("y")],
                    vec![Value::int(3), Value::str("z")],
                ],
            )
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.revision(), before + 1);
        assert_eq!(db.scan("T").unwrap().len(), 3);
        // Empty batches don't bump the revision.
        assert_eq!(db.insert_many("T", vec![]).unwrap(), 0);
        assert_eq!(db.revision(), before + 1);
    }

    #[test]
    fn insert_many_is_all_or_nothing_on_arity_error() {
        let mut db = Database::new();
        db.create_table("T", &["a", "b"]).unwrap();
        let err = db
            .insert_many(
                "T",
                vec![vec![Value::int(1), Value::str("x")], vec![Value::int(2)]],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { got: 1, .. }));
        assert!(db.scan("T").unwrap().is_empty());
        assert!(db.insert_many("Nope", vec![]).is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table("T", &["a"]).unwrap();
        assert_eq!(
            db.create_table("T", &["a", "b"]),
            Err(DbError::DuplicateRelation(Symbol::new("T")))
        );
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = Database::new();
        assert_eq!(
            db.insert("Nope", vec![]),
            Err(DbError::UnknownRelation(Symbol::new("Nope")))
        );
        assert!(db.scan("Nope").is_err());
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut db = Database::new();
        db.create_table("T", &["a", "b"]).unwrap();
        assert_eq!(
            db.insert("T", vec![Value::int(1)]),
            Err(DbError::ArityMismatch {
                relation: Symbol::new("T"),
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn delete_removes_tuple_and_index_entries() {
        let mut db = Database::new();
        db.create_table("T", &["a", "b"]).unwrap();
        db.insert("T", vec![Value::int(1), Value::str("x")])
            .unwrap();
        db.insert("T", vec![Value::int(2), Value::str("y")])
            .unwrap();
        assert!(db.delete("T", &[Value::int(1), Value::str("x")]).unwrap());
        assert!(!db.contains("T", &[Value::int(1), Value::str("x")]));
        assert!(db.contains("T", &[Value::int(2), Value::str("y")]));
        // Deleting again is a no-op.
        assert!(!db.delete("T", &[Value::int(1), Value::str("x")]).unwrap());
        // Scans skip the tombstone.
        assert_eq!(db.scan("T").unwrap().len(), 1);
        // Evaluation no longer sees the deleted row.
        use eq_ir::{atom, Term, Var};
        let rows = db
            .evaluate(
                &[atom!("T", [Term::var(Var(0)), Term::var(Var(1))])],
                usize::MAX,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn delete_only_first_duplicate() {
        let mut db = Database::new();
        db.create_table("D", &["a"]).unwrap();
        db.insert("D", vec![Value::int(7)]).unwrap();
        db.insert("D", vec![Value::int(7)]).unwrap();
        assert!(db.delete("D", &[Value::int(7)]).unwrap());
        assert!(db.contains("D", &[Value::int(7)]));
        assert_eq!(db.scan("D").unwrap().len(), 1);
    }

    #[test]
    fn update_replaces_tuple() {
        let mut db = Database::new();
        db.create_table("Seats", &["fno", "left"]).unwrap();
        db.insert("Seats", vec![Value::int(122), Value::int(3)])
            .unwrap();
        assert!(db
            .update(
                "Seats",
                &[Value::int(122), Value::int(3)],
                vec![Value::int(122), Value::int(2)],
            )
            .unwrap());
        assert!(db.contains("Seats", &[Value::int(122), Value::int(2)]));
        assert!(!db.contains("Seats", &[Value::int(122), Value::int(3)]));
        // Updating a missing row reports false and inserts nothing.
        assert!(!db
            .update(
                "Seats",
                &[Value::int(999), Value::int(1)],
                vec![Value::int(999), Value::int(0)],
            )
            .unwrap());
    }

    #[test]
    fn snapshot_is_deep_and_compacted() {
        let mut db = Database::new();
        db.create_table("T", &["a"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        db.insert("T", vec![Value::int(2)]).unwrap();
        db.delete("T", &[Value::int(1)]).unwrap();
        let copy = db.snapshot();
        db.insert("T", vec![Value::int(3)]).unwrap();
        assert_eq!(copy.scan("T").unwrap(), vec![vec![Value::int(2)]]);
        assert_eq!(db.scan("T").unwrap().len(), 2);
    }

    #[test]
    fn delete_arity_checked() {
        let mut db = Database::new();
        db.create_table("T", &["a", "b"]).unwrap();
        assert!(db.delete("T", &[Value::int(1)]).is_err());
        assert!(db.delete("Nope", &[Value::int(1)]).is_err());
    }

    #[test]
    fn error_display() {
        let e = DbError::ArityMismatch {
            relation: Symbol::new("T"),
            expected: 2,
            got: 1,
        };
        assert!(e.to_string().contains("arity mismatch"));
    }
}
