//! Tables: schema, row storage, per-column hash indexes, and the
//! [`RowStore`] backend trait the catalog and evaluator run over.

use eq_ir::{FastMap, Symbol, Value};
use std::fmt;

/// A database tuple.
pub type Tuple = Vec<Value>;

/// Always-on I/O counters reported by a [`RowStore`] backend.
///
/// The in-memory [`Table`] reports all zeros; paged backends (the
/// `eq_store` crate) count page traffic through their cache. Counters
/// are cumulative over the store's lifetime. [`StoreIoStats::merge`]
/// sums per-table stats into a database-wide view; since each paged
/// table owns its own cache, the summed `resident_bytes_peak` is an
/// upper bound on simultaneous residency (exact when one table pages).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Pages faulted in from the backing file (cache misses that hit disk).
    pub page_reads: u64,
    /// Pages written back to the backing file (dirty evictions + flushes).
    pub page_writes: u64,
    /// Page requests satisfied by the cache without touching the file.
    pub cache_hits: u64,
    /// Frames evicted to stay under the cache's byte budget.
    pub evictions: u64,
    /// High-water mark of bytes resident in the page cache.
    pub resident_bytes_peak: u64,
}

impl StoreIoStats {
    /// Element-wise saturating sum of two counter sets.
    pub fn merge(self, other: StoreIoStats) -> StoreIoStats {
        StoreIoStats {
            page_reads: self.page_reads.saturating_add(other.page_reads),
            page_writes: self.page_writes.saturating_add(other.page_writes),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            evictions: self.evictions.saturating_add(other.evictions),
            resident_bytes_peak: self
                .resident_bytes_peak
                .saturating_add(other.resident_bytes_peak),
        }
    }
}

/// Storage backend for one relation: row storage plus a per-column
/// value index. Extracted from the in-memory [`Table`] so the catalog
/// ([`Database`](crate::Database)), the evaluator's candidate cursors,
/// and bulk loading work unchanged over either the in-memory backend or
/// `eq_store`'s paged on-disk backend.
///
/// Contract shared by every backend (what the backend-equivalence
/// property tests pin down):
///
/// * Row ids are assigned densely in insertion order and never reused.
/// * Deletion tombstones a row in place: ids stay stable, and
///   [`RowStore::read_row`] returns `false` for dead ids.
/// * [`RowStore::probe_into`] yields ids in ascending insertion order
///   (the order index postings are appended) — the evaluator's
///   answer-order guarantee rests on this.
/// * Arity is validated by the database layer before `push`/`delete`
///   reach the backend.
pub trait RowStore: fmt::Debug + Send + Sync {
    /// The relation's schema.
    fn schema(&self) -> &TableSchema;

    /// Number of live rows (tombstones excluded).
    fn len(&self) -> usize;

    /// Upper bound (exclusive) on row ids; ids below it may be
    /// tombstones.
    fn row_id_bound(&self) -> u32;

    /// True if the row id refers to a live (non-tombstoned) row.
    fn is_live(&self, id: u32) -> bool;

    /// Appends a row. The caller has already validated arity.
    fn push(&mut self, row: Tuple);

    /// Reads the row with a given id into `out` (clearing it first).
    /// Returns `false` — leaving `out` in an unspecified state — when
    /// the id is a tombstone or out of bounds.
    fn read_row(&self, id: u32, out: &mut Tuple) -> bool;

    /// Replaces `out` with the ids whose column `col` equals `value`,
    /// in insertion order.
    fn probe_into(&self, col: usize, value: Value, out: &mut Vec<u32>);

    /// Posting-list length for a probe — the evaluator's cardinality
    /// estimate when choosing which bound column drives a lookup.
    fn probe_len(&self, col: usize, value: Value) -> usize;

    /// Deletes the first occurrence of an exact tuple (tombstoning it).
    /// Returns true if a row was removed.
    fn delete(&mut self, row: &[Value]) -> bool;

    /// Number of tombstoned (deleted) rows still occupying ids.
    fn tombstone_count(&self) -> usize;

    /// True if the store has no live rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if an exact tuple is present.
    fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.schema().arity() {
            return false;
        }
        if row.is_empty() {
            return self.len() > 0;
        }
        let mut ids = Vec::new();
        self.probe_into(0, row[0], &mut ids);
        let mut buf = Tuple::new();
        ids.iter()
            .any(|&id| self.read_row(id, &mut buf) && buf == row)
    }

    /// Visits every live row in id order.
    fn for_each_row(&self, f: &mut dyn FnMut(&[Value])) {
        let mut buf = Tuple::new();
        for id in 0..self.row_id_bound() {
            if self.read_row(id, &mut buf) {
                f(&buf);
            }
        }
    }

    /// The backend's cumulative I/O counters. Purely in-memory backends
    /// report all zeros.
    fn io_stats(&self) -> StoreIoStats {
        StoreIoStats::default()
    }
}

/// Schema of one relation: a name and ordered column names.
#[derive(Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Relation name.
    pub name: Symbol,
    /// Column names, in position order.
    pub columns: Vec<Symbol>,
}

impl TableSchema {
    /// Builds a schema.
    pub fn new(name: impl Into<Symbol>, columns: &[&str]) -> Self {
        TableSchema {
            name: name.into(),
            columns: columns.iter().map(|c| Symbol::new(c)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a named column.
    pub fn column_index(&self, name: Symbol) -> Option<usize> {
        self.columns.iter().position(|&c| c == name)
    }
}

impl fmt::Debug for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// One relation: rows plus a hash index per column.
///
/// Indexes are maintained eagerly on insert. Workload relations are
/// narrow (arity ≤ 3 in the paper's schema) and read-dominated — the
/// coordination engine evaluates many combined queries against a
/// database that changes rarely — so eager maintenance is the right
/// trade. The evaluator probes the index of whichever bound column has
/// the shortest posting list.
pub struct Table {
    schema: TableSchema,
    rows: Vec<Tuple>,
    /// `indexes[col][value]` = row ids having `value` in column `col`.
    indexes: Vec<FastMap<Value, Vec<u32>>>,
    /// Deleted rows left in place as tombstones so row ids stay stable.
    tombstones: usize,
}

impl Table {
    /// Creates an empty table with an index per column.
    pub fn new(schema: TableSchema) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: Vec::new(),
            indexes: (0..arity).map(|_| FastMap::default()).collect(),
            tombstones: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows (tombstones excluded).
    pub fn len(&self) -> usize {
        self.rows.len() - self.tombstones
    }

    /// Upper bound (exclusive) on row ids; ids below it may be
    /// tombstones. Scans iterate this range and skip dead rows.
    pub fn row_id_bound(&self) -> u32 {
        self.rows.len() as u32
    }

    /// True if the row id refers to a live (non-tombstoned) row.
    pub fn is_live(&self, id: u32) -> bool {
        self.schema.arity() == 0 || !self.rows[id as usize].is_empty()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (arity already checked by the database layer).
    pub(crate) fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.arity());
        let id = u32::try_from(self.rows.len()).expect("table too large");
        for (col, value) in row.iter().enumerate() {
            self.indexes[col].entry(*value).or_default().push(id);
        }
        self.rows.push(row);
    }

    /// The row with a given id.
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// Iterates over all live rows.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        let arity = self.schema.arity();
        self.rows
            .iter()
            .filter(move |r| arity == 0 || !r.is_empty())
    }

    /// Row ids whose column `col` equals `value`; empty slice if none.
    pub fn probe(&self, col: usize, value: Value) -> &[u32] {
        self.indexes[col]
            .get(&value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Posting-list length for a probe — the evaluator's cardinality
    /// estimate when choosing which bound column to drive the lookup.
    pub fn probe_len(&self, col: usize, value: Value) -> usize {
        self.indexes[col].get(&value).map_or(0, Vec::len)
    }

    /// Deletes the first occurrence of an exact tuple, updating all
    /// indexes. Returns true if a row was removed.
    ///
    /// Deletion marks the row as a tombstone (empty tuple) rather than
    /// shifting ids, so existing row ids stay stable; tombstones are
    /// skipped by scans and never referenced by indexes.
    pub(crate) fn delete(&mut self, row: &[Value]) -> bool {
        if row.len() != self.schema.arity() {
            return false;
        }
        let id = if row.is_empty() {
            return false;
        } else {
            self.probe(0, row[0])
                .iter()
                .copied()
                .find(|&id| self.rows[id as usize] == row)
        };
        let Some(id) = id else {
            return false;
        };
        for (col, value) in row.iter().enumerate() {
            if let Some(list) = self.indexes[col].get_mut(value) {
                list.retain(|&x| x != id);
            }
        }
        self.rows[id as usize] = Tuple::new();
        self.tombstones += 1;
        true
    }

    /// Number of tombstoned (deleted) rows still occupying ids.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// True if an exact tuple is present.
    pub fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.schema.arity() {
            return false;
        }
        if row.is_empty() {
            return !self.rows.is_empty();
        }
        self.probe(0, row[0])
            .iter()
            .any(|&id| self.rows[id as usize] == row)
    }
}

impl RowStore for Table {
    fn schema(&self) -> &TableSchema {
        Table::schema(self)
    }

    fn len(&self) -> usize {
        Table::len(self)
    }

    fn row_id_bound(&self) -> u32 {
        Table::row_id_bound(self)
    }

    fn is_live(&self, id: u32) -> bool {
        Table::is_live(self, id)
    }

    fn push(&mut self, row: Tuple) {
        Table::push(self, row)
    }

    fn read_row(&self, id: u32, out: &mut Tuple) -> bool {
        let Some(row) = self.rows.get(id as usize) else {
            return false;
        };
        if !Table::is_live(self, id) {
            return false;
        }
        out.clear();
        out.extend_from_slice(row);
        true
    }

    fn probe_into(&self, col: usize, value: Value, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(Table::probe(self, col, value));
    }

    fn probe_len(&self, col: usize, value: Value) -> usize {
        Table::probe_len(self, col, value)
    }

    fn delete(&mut self, row: &[Value]) -> bool {
        Table::delete(self, row)
    }

    fn tombstone_count(&self) -> usize {
        Table::tombstone_count(self)
    }

    fn is_empty(&self) -> bool {
        Table::is_empty(self)
    }

    fn contains(&self, row: &[Value]) -> bool {
        Table::contains(self, row)
    }

    fn for_each_row(&self, f: &mut dyn FnMut(&[Value])) {
        for row in self.rows() {
            f(row);
        }
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table({:?}, {} rows)", self.schema, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> Table {
        let mut t = Table::new(TableSchema::new("Flights", &["fno", "dest"]));
        for (fno, dest) in [(122, "Paris"), (123, "Paris"), (136, "Rome")] {
            t.push(vec![Value::int(fno), Value::str(dest)]);
        }
        t
    }

    #[test]
    fn schema_lookup() {
        let s = TableSchema::new("Flights", &["fno", "dest"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index(Symbol::new("dest")), Some(1));
        assert_eq!(s.column_index(Symbol::new("nope")), None);
        assert_eq!(format!("{s:?}"), "Flights(fno, dest)");
    }

    #[test]
    fn insert_and_scan() {
        let t = flights();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows[0][0], Value::int(122));
    }

    #[test]
    fn index_probe() {
        let t = flights();
        let paris = t.probe(1, Value::str("Paris"));
        assert_eq!(paris.len(), 2);
        assert_eq!(t.probe_len(1, Value::str("Paris")), 2);
        assert_eq!(t.probe(1, Value::str("Athens")), &[] as &[u32]);
        assert_eq!(t.probe(0, Value::int(136)), &[2]);
    }

    #[test]
    fn contains_exact_tuple() {
        let t = flights();
        assert!(t.contains(&[Value::int(122), Value::str("Paris")]));
        assert!(!t.contains(&[Value::int(122), Value::str("Rome")]));
        assert!(!t.contains(&[Value::int(122)]));
    }

    #[test]
    fn duplicate_rows_both_indexed() {
        let mut t = Table::new(TableSchema::new("D", &["a"]));
        t.push(vec![Value::int(1)]);
        t.push(vec![Value::int(1)]);
        assert_eq!(t.probe(0, Value::int(1)).len(), 2);
    }
}
