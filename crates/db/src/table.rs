//! Tables: schema, row storage, per-column hash indexes.

use eq_ir::{FastMap, Symbol, Value};
use std::fmt;

/// A database tuple.
pub type Tuple = Vec<Value>;

/// Schema of one relation: a name and ordered column names.
#[derive(Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Relation name.
    pub name: Symbol,
    /// Column names, in position order.
    pub columns: Vec<Symbol>,
}

impl TableSchema {
    /// Builds a schema.
    pub fn new(name: impl Into<Symbol>, columns: &[&str]) -> Self {
        TableSchema {
            name: name.into(),
            columns: columns.iter().map(|c| Symbol::new(c)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a named column.
    pub fn column_index(&self, name: Symbol) -> Option<usize> {
        self.columns.iter().position(|&c| c == name)
    }
}

impl fmt::Debug for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// One relation: rows plus a hash index per column.
///
/// Indexes are maintained eagerly on insert. Workload relations are
/// narrow (arity ≤ 3 in the paper's schema) and read-dominated — the
/// coordination engine evaluates many combined queries against a
/// database that changes rarely — so eager maintenance is the right
/// trade. The evaluator probes the index of whichever bound column has
/// the shortest posting list.
pub struct Table {
    schema: TableSchema,
    rows: Vec<Tuple>,
    /// `indexes[col][value]` = row ids having `value` in column `col`.
    indexes: Vec<FastMap<Value, Vec<u32>>>,
    /// Deleted rows left in place as tombstones so row ids stay stable.
    tombstones: usize,
}

impl Table {
    /// Creates an empty table with an index per column.
    pub fn new(schema: TableSchema) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: Vec::new(),
            indexes: (0..arity).map(|_| FastMap::default()).collect(),
            tombstones: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows (tombstones excluded).
    pub fn len(&self) -> usize {
        self.rows.len() - self.tombstones
    }

    /// Upper bound (exclusive) on row ids; ids below it may be
    /// tombstones. Scans iterate this range and skip dead rows.
    pub fn row_id_bound(&self) -> u32 {
        self.rows.len() as u32
    }

    /// True if the row id refers to a live (non-tombstoned) row.
    pub fn is_live(&self, id: u32) -> bool {
        self.schema.arity() == 0 || !self.rows[id as usize].is_empty()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (arity already checked by the database layer).
    pub(crate) fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.arity());
        let id = u32::try_from(self.rows.len()).expect("table too large");
        for (col, value) in row.iter().enumerate() {
            self.indexes[col].entry(*value).or_default().push(id);
        }
        self.rows.push(row);
    }

    /// The row with a given id.
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// Iterates over all live rows.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        let arity = self.schema.arity();
        self.rows
            .iter()
            .filter(move |r| arity == 0 || !r.is_empty())
    }

    /// Row ids whose column `col` equals `value`; empty slice if none.
    pub fn probe(&self, col: usize, value: Value) -> &[u32] {
        self.indexes[col]
            .get(&value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Posting-list length for a probe — the evaluator's cardinality
    /// estimate when choosing which bound column to drive the lookup.
    pub fn probe_len(&self, col: usize, value: Value) -> usize {
        self.indexes[col].get(&value).map_or(0, Vec::len)
    }

    /// Deletes the first occurrence of an exact tuple, updating all
    /// indexes. Returns true if a row was removed.
    ///
    /// Deletion marks the row as a tombstone (empty tuple) rather than
    /// shifting ids, so existing row ids stay stable; tombstones are
    /// skipped by scans and never referenced by indexes.
    pub(crate) fn delete(&mut self, row: &[Value]) -> bool {
        if row.len() != self.schema.arity() {
            return false;
        }
        let id = if row.is_empty() {
            return false;
        } else {
            self.probe(0, row[0])
                .iter()
                .copied()
                .find(|&id| self.rows[id as usize] == row)
        };
        let Some(id) = id else {
            return false;
        };
        for (col, value) in row.iter().enumerate() {
            if let Some(list) = self.indexes[col].get_mut(value) {
                list.retain(|&x| x != id);
            }
        }
        self.rows[id as usize] = Tuple::new();
        self.tombstones += 1;
        true
    }

    /// Number of tombstoned (deleted) rows still occupying ids.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// True if an exact tuple is present.
    pub fn contains(&self, row: &[Value]) -> bool {
        if row.len() != self.schema.arity() {
            return false;
        }
        if row.is_empty() {
            return !self.rows.is_empty();
        }
        self.probe(0, row[0])
            .iter()
            .any(|&id| self.rows[id as usize] == row)
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table({:?}, {} rows)", self.schema, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> Table {
        let mut t = Table::new(TableSchema::new("Flights", &["fno", "dest"]));
        for (fno, dest) in [(122, "Paris"), (123, "Paris"), (136, "Rome")] {
            t.push(vec![Value::int(fno), Value::str(dest)]);
        }
        t
    }

    #[test]
    fn schema_lookup() {
        let s = TableSchema::new("Flights", &["fno", "dest"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index(Symbol::new("dest")), Some(1));
        assert_eq!(s.column_index(Symbol::new("nope")), None);
        assert_eq!(format!("{s:?}"), "Flights(fno, dest)");
    }

    #[test]
    fn insert_and_scan() {
        let t = flights();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let rows: Vec<_> = t.rows().collect();
        assert_eq!(rows[0][0], Value::int(122));
    }

    #[test]
    fn index_probe() {
        let t = flights();
        let paris = t.probe(1, Value::str("Paris"));
        assert_eq!(paris.len(), 2);
        assert_eq!(t.probe_len(1, Value::str("Paris")), 2);
        assert_eq!(t.probe(1, Value::str("Athens")), &[] as &[u32]);
        assert_eq!(t.probe(0, Value::int(136)), &[2]);
    }

    #[test]
    fn contains_exact_tuple() {
        let t = flights();
        assert!(t.contains(&[Value::int(122), Value::str("Paris")]));
        assert!(!t.contains(&[Value::int(122), Value::str("Rome")]));
        assert!(!t.contains(&[Value::int(122)]));
    }

    #[test]
    fn duplicate_rows_both_indexed() {
        let mut t = Table::new(TableSchema::new("D", &["a"]));
        t.push(vec![Value::int(1)]);
        t.push(vec![Value::int(1)]);
        assert_eq!(t.probe(0, Value::int(1)).len(), 2);
    }
}
