//! In-memory relational database substrate.
//!
//! The paper's prototype delegated combined-query evaluation to MySQL
//! 4.1 over JDBC (§5.1). This crate provides the equivalent substrate:
//! a catalog of named relations, row storage with per-column hash
//! indexes, and an evaluator for conjunctive (select-project-join)
//! queries with `LIMIT k` — exactly the query class the combined queries
//! of §4.2 fall into.
//!
//! Two entry points matter to the coordination engine:
//!
//! * [`Database::evaluate`] — find up to `k` valuations of a conjunction
//!   of body atoms (used both for combined queries and for grounding
//!   individual queries in the brute-force oracle);
//! * [`Database::contains`] / [`Database::scan`] — point and full access
//!   used by tests and workload loaders.
//!
//! The evaluator orders atoms greedily (most-bound-first, preferring
//! indexed probes) and backtracks; this is the classic strategy for
//! conjunctive queries and reproduces the qualitative join blow-up of
//! Figure 7 when postcondition counts grow.

#![forbid(unsafe_code)]

mod database;
mod eval;
mod table;

pub use database::{Database, DbError};
pub use eval::{EvalStats, Valuation};
pub use table::{RowStore, StoreIoStats, Table, TableSchema, Tuple};
