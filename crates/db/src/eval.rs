//! Conjunctive-query evaluation: greedy atom ordering + indexed
//! backtracking join, driven by an **iterative, explicit-frame search**.
//!
//! The join used to be a recursive `search` whose depth equaled the
//! atom count, which put a hard stack bound on combined-query size (a
//! 10k-query entangled ring produces a 20k-atom body — the bench
//! runner had to spawn a 512 MiB-stack thread just to evaluate it).
//! The search now keeps its own stack of [`Frame`]s on the heap — one
//! frame per joined atom, holding the atom's candidate-row cursor and
//! the variables its current row bound — so depth is bounded by memory,
//! not thread stack: a 100k-atom body evaluates on a default 8 MiB
//! stack.
//!
//! The rewrite is a mechanical transformation of the recursion: frames
//! open with the same greedy [`choose_atom`] pick (structural
//! tie-break — see its docs; the engine's partitioned intra-component
//! evaluation depends on it), iterate the same probe-else-scan
//! candidate order, and unwind with the same worklist restoration, so
//! answers, answer *order*, and [`EvalStats`] are bit-for-bit those of
//! the old recursive evaluator. The recursion survives as a
//! `#[cfg(test)]` oracle (`recursive_reference`) that the property
//! tests below compare against on random databases and conjunctions.
//!
//! The search core is exposed as a **visitor** ([`evaluate_visit`]):
//! each full valuation is handed to a callback that can stop the
//! enumeration early (`ControlFlow::Break`), so streaming consumers —
//! notably `eq_core::intra`'s articulation-projection region merge —
//! never materialize a solution set. The collecting [`evaluate`] is a
//! thin wrapper over it.

use crate::database::Database;
use crate::table::{RowStore, Tuple};
use eq_ir::{Atom, Constraint, FastMap, Term, Value, Var};
use std::ops::ControlFlow;

/// A valuation: an assignment of database values to query variables
/// (§2.3's "assignment of a value from D to each variable of q").
pub type Valuation = FastMap<Var, Value>;

/// Evaluator statistics for one query, reported by
/// [`Database::evaluate_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rows materialized and checked against the current pattern.
    pub rows_considered: u64,
    /// Index probes issued.
    pub index_probes: u64,
    /// Full-table scans that had no usable bound column.
    pub full_scans: u64,
}

/// Evaluates `atoms` (a conjunction over database relations) and returns
/// up to `limit` valuations. Relations and arities are pre-checked by the
/// caller. A thin collecting wrapper over [`evaluate_visit`].
pub(crate) fn evaluate(
    db: &Database,
    atoms: &[Atom],
    constraints: &[Constraint],
    limit: usize,
) -> (Vec<Valuation>, EvalStats) {
    let mut results = Vec::new();
    if limit == 0 {
        // Never enter the search: the recursive oracle's stats for
        // limit 0 are all-zero, and the bit-for-bit proptest holds the
        // wrapper to that.
        return (results, EvalStats::default());
    }
    let stats = evaluate_visit(db, atoms, constraints, |valuation| {
        results.push(valuation.clone());
        if results.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    (results, stats)
}

/// Streaming enumeration over the iterative frame search: `visit` is
/// called once per valuation, **in the exact order [`evaluate`] would
/// collect them**, without materializing a result set. Returning
/// [`ControlFlow::Break`] stops the search immediately (the stats
/// reflect only the work done up to that point).
///
/// The borrowed valuation is the search's live binding map — callers
/// that keep a solution must clone it before returning `Continue`.
pub(crate) fn evaluate_visit(
    db: &Database,
    atoms: &[Atom],
    constraints: &[Constraint],
    mut visit: impl FnMut(&Valuation) -> ControlFlow<()>,
) -> EvalStats {
    let mut stats = EvalStats::default();
    if atoms.is_empty() {
        // The empty conjunction is true under the empty valuation —
        // provided no fully-ground constraint refutes it.
        let empty = Valuation::default();
        if constraints_hold(constraints, &empty) {
            let _ = visit(&empty);
        }
        return stats;
    }
    let mut bindings = Valuation::default();
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut stack: Vec<Frame> = Vec::with_capacity(atoms.len());
    // Cursors own their posting lists (a paged backend materializes
    // them per probe); popped frames donate their buffers back to this
    // pool so steady-state backtracking allocates nothing. One shared
    // scratch tuple receives each candidate row from the backend.
    let mut spare_ids: Vec<Vec<u32>> = Vec::new();
    let mut row_buf: Tuple = Tuple::new();
    let Some(first) = Frame::open(db, &mut remaining, &bindings, &mut spare_ids, &mut stats) else {
        // A missing relation (pre-checked by the caller, so this is
        // defensive) joins zero rows: the conjunction has no answers.
        return stats;
    };
    stack.push(first);

    while let Some(top) = stack.last_mut() {
        // Undo whatever the frame's previous candidate row bound (a
        // no-op on a freshly opened frame), then advance to its next
        // matching candidate.
        for v in top.newly_bound.drain(..) {
            bindings.remove(&v);
        }
        let mut matched = false;
        while let Some(id) = top.cursor.next() {
            if !top.table.read_row(id, &mut row_buf) {
                // Tombstone: dead candidates are skipped before they
                // count as considered (the oracle's is_live gate).
                continue;
            }
            stats.rows_considered += 1;
            let mut ok = true;
            for (term, &value) in top.atom.terms.iter().zip(row_buf.iter()) {
                match term {
                    Term::Const(c) => {
                        if *c != value {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match bindings.get(v) {
                        Some(&bound) => {
                            if bound != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings.insert(*v, value);
                            top.newly_bound.push(*v);
                        }
                    },
                }
            }
            if ok && constraints_hold(constraints, &bindings) {
                if remaining.is_empty() {
                    // A full valuation: emit it and keep enumerating
                    // candidates at this deepest frame (exactly the
                    // recursion's push-then-return-and-undo).
                    if visit(&bindings).is_break() {
                        return stats;
                    }
                } else {
                    matched = true;
                    break;
                }
            }
            // Rejected row (or emitted leaf): unbind and try the next
            // candidate of this same frame.
            for v in top.newly_bound.drain(..) {
                bindings.remove(&v);
            }
        }
        if matched {
            // Descend: open the next frame over the shrunk worklist.
            let Some(frame) =
                Frame::open(db, &mut remaining, &bindings, &mut spare_ids, &mut stats)
            else {
                // Defensive (relations are pre-checked): a missing
                // relation joins zero rows, and since it is still in
                // every unexplored branch's worklist no answer can
                // exist — nothing was emitted before this point.
                return stats;
            };
            stack.push(frame);
        } else {
            // Candidates exhausted: restore the atom into the worklist
            // at its original position (mirroring the recursion's
            // unwind) and backtrack into the frame below. The pop
            // cannot miss (the loop condition saw a top frame).
            let Some(frame) = stack.pop() else { break };
            if let Cursor::Probe { ids, .. } = frame.cursor {
                spare_ids.push(ids);
            }
            remaining.push(frame.atom);
            let last = remaining.len() - 1;
            remaining.swap(frame.pick, last);
        }
    }
    stats
}

/// Candidate-row iteration state of one [`Frame`]: either the posting
/// list of the frame atom's most selective bound column, or a full
/// row-id scan when nothing is bound. The posting list is **owned** —
/// a paged backend materializes it per probe (`probe_into`), so the
/// cursor cannot borrow index internals; the search recycles the
/// buffers through a pool to stay allocation-free in steady state.
enum Cursor {
    Probe { ids: Vec<u32>, pos: usize },
    Scan { next: u32, bound: u32 },
}

impl Cursor {
    fn next(&mut self) -> Option<u32> {
        match self {
            Cursor::Probe { ids, pos } => {
                let id = *ids.get(*pos)?;
                *pos += 1;
                Some(id)
            }
            Cursor::Scan { next, bound } => {
                if next < bound {
                    let id = *next;
                    *next += 1;
                    Some(id)
                } else {
                    None
                }
            }
        }
    }
}

/// One level of the explicit-frame backtracking join: the atom chosen
/// at this depth, where it sat in the worklist (for restoration on
/// unwind), its candidate cursor, and the variables its current row
/// bound (undone before the next candidate or on backtrack).
struct Frame<'a> {
    atom: &'a Atom,
    table: &'a dyn RowStore,
    pick: usize,
    cursor: Cursor,
    newly_bound: Vec<Var>,
}

impl<'a> Frame<'a> {
    /// Picks the next atom greedily ([`choose_atom`]), removes it from
    /// the worklist, and positions a cursor over its candidate rows —
    /// the most selective bound column's posting list, or a full scan.
    /// Stats accounting is identical to the recursive evaluator's.
    ///
    /// Returns `None` when the picked atom's relation has no table —
    /// callers pre-check relations so this is defensive; the worklist
    /// is left untouched in that case.
    fn open(
        db: &'a Database,
        remaining: &mut Vec<&'a Atom>,
        bindings: &Valuation,
        spare_ids: &mut Vec<Vec<u32>>,
        stats: &mut EvalStats,
    ) -> Option<Frame<'a>> {
        let pick = choose_atom(db, remaining, bindings);
        let table = db.table(remaining[pick].relation)?;
        let atom = remaining.swap_remove(pick);

        // Find the best bound position to drive an index probe.
        let mut best: Option<(usize, Value, usize)> = None; // (col, value, cardinality)
        for (col, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => bindings.get(v).copied(),
            };
            if let Some(value) = value {
                let card = table.probe_len(col, value);
                if best.is_none_or(|(_, _, c)| card < c) {
                    best = Some((col, value, card));
                }
            }
        }
        let cursor = match best {
            Some((col, value, _)) => {
                stats.index_probes += 1;
                let mut ids = spare_ids.pop().unwrap_or_default();
                table.probe_into(col, value, &mut ids);
                Cursor::Probe { ids, pos: 0 }
            }
            None => {
                stats.full_scans += 1;
                Cursor::Scan {
                    next: 0,
                    bound: table.row_id_bound(),
                }
            }
        };
        Some(Frame {
            atom,
            table,
            pick,
            cursor,
            newly_bound: Vec::new(),
        })
    }
}

/// Checks every constraint decidable under `bindings`; undecidable
/// constraints pass provisionally and are re-checked at deeper levels
/// (all variables are bound at the leaf, by range restriction).
fn constraints_hold(constraints: &[Constraint], bindings: &Valuation) -> bool {
    constraints
        .iter()
        .all(|c| c.check(&|v| bindings.get(&v).copied()))
}

/// The original recursive backtracking join, kept **test-only** as the
/// oracle for the iterative evaluator: property tests assert the two
/// agree answer-for-answer (same valuations, same order, same stats)
/// on random databases and conjunctions. Its recursion depth equals
/// the atom count, which is exactly the stack bound the iterative
/// rewrite removes — never call it on production-sized bodies.
#[cfg(test)]
pub(crate) mod recursive_reference {
    use super::*;

    /// Recursive-evaluator entry with the same contract as
    /// [`super::evaluate`].
    pub(crate) fn evaluate(
        db: &Database,
        atoms: &[Atom],
        constraints: &[Constraint],
        limit: usize,
    ) -> (Vec<Valuation>, EvalStats) {
        let mut stats = EvalStats::default();
        let mut results = Vec::new();
        if limit == 0 {
            return (results, stats);
        }
        if atoms.is_empty() {
            let empty = Valuation::default();
            if constraints_hold(constraints, &empty) {
                results.push(empty);
            }
            return (results, stats);
        }
        let mut bindings = Valuation::default();
        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        search(
            db,
            &mut remaining,
            constraints,
            &mut bindings,
            limit,
            &mut results,
            &mut stats,
        );
        (results, stats)
    }

    /// Recursive backtracking join. `remaining` holds the atoms not yet
    /// joined; each level picks the most-bound atom (greedy ordering),
    /// probes or scans its table, and recurses with extended bindings.
    #[allow(clippy::too_many_arguments)]
    fn search(
        db: &Database,
        remaining: &mut Vec<&Atom>,
        constraints: &[Constraint],
        bindings: &mut Valuation,
        limit: usize,
        results: &mut Vec<Valuation>,
        stats: &mut EvalStats,
    ) {
        if results.len() >= limit {
            return;
        }
        if remaining.is_empty() {
            results.push(bindings.clone());
            return;
        }
        let pick = choose_atom(db, remaining, bindings);
        let atom = remaining.swap_remove(pick);
        let table = db.table(atom.relation).expect("pre-checked relation");

        // Find the best bound position to drive an index probe.
        let mut best: Option<(usize, Value, usize)> = None; // (col, value, cardinality)
        for (col, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => bindings.get(v).copied(),
            };
            if let Some(value) = value {
                let card = table.probe_len(col, value);
                if best.is_none_or(|(_, _, c)| card < c) {
                    best = Some((col, value, card));
                }
            }
        }

        match best {
            Some((col, value, _)) => {
                stats.index_probes += 1;
                let mut ids = Vec::new();
                table.probe_into(col, value, &mut ids);
                for id in ids {
                    if results.len() >= limit {
                        break;
                    }
                    try_row(
                        db,
                        table,
                        atom,
                        id,
                        remaining,
                        constraints,
                        bindings,
                        limit,
                        results,
                        stats,
                    );
                }
            }
            None => {
                stats.full_scans += 1;
                for id in 0..table.row_id_bound() {
                    if results.len() >= limit {
                        break;
                    }
                    try_row(
                        db,
                        table,
                        atom,
                        id,
                        remaining,
                        constraints,
                        bindings,
                        limit,
                        results,
                        stats,
                    );
                }
            }
        }
        remaining.push(atom);
        let last = remaining.len() - 1;
        remaining.swap(pick, last);
    }

    /// Attempts to match `atom` against row `id`, extending `bindings`; on
    /// success recurses into the remaining atoms, then undoes the extension.
    #[allow(clippy::too_many_arguments)]
    fn try_row(
        db: &Database,
        table: &dyn RowStore,
        atom: &Atom,
        id: u32,
        remaining: &mut Vec<&Atom>,
        constraints: &[Constraint],
        bindings: &mut Valuation,
        limit: usize,
        results: &mut Vec<Valuation>,
        stats: &mut EvalStats,
    ) {
        let mut row = Tuple::new();
        if !table.read_row(id, &mut row) {
            return;
        }
        stats.rows_considered += 1;
        let mut newly_bound: Vec<Var> = Vec::new();
        let mut ok = true;
        for (term, &value) in atom.terms.iter().zip(row.iter()) {
            match term {
                Term::Const(c) => {
                    if *c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(&bound) => {
                        if bound != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings.insert(*v, value);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        if ok && constraints_hold(constraints, bindings) {
            search(db, remaining, constraints, bindings, limit, results, stats);
        }
        for v in newly_bound {
            bindings.remove(&v);
        }
    }
}

/// Greedy join ordering: pick the atom with the most bound positions;
/// break ties toward the smaller estimated cardinality (posting list of
/// its best bound column, or table size when nothing is bound).
///
/// Remaining ties are broken *structurally* — by `(relation, terms)`
/// order — never by position in the worklist. An atom's full key
/// therefore depends only on the atom itself and the bindings of its own
/// variables, which makes the chosen join order invariant under
/// re-grouping of variable-disjoint sub-conjunctions: evaluating a
/// sub-conjunction alone picks its atoms in exactly the order the whole
/// query would. The engine's partitioned intra-component evaluation
/// (`eq_core::intra`) relies on this to reproduce the sequential answer
/// choice from independently evaluated work units.
fn choose_atom(db: &Database, remaining: &[&Atom], bindings: &Valuation) -> usize {
    let mut best_idx = 0;
    let mut best_key = (usize::MAX, usize::MAX); // (unbound count, cardinality)
    for (i, atom) in remaining.iter().enumerate() {
        let Some(table) = db.table(atom.relation) else {
            // Defensive (relations are pre-checked): a missing relation
            // joins zero rows — pick it immediately so the caller can
            // terminate the search without enumerating anything.
            return i;
        };
        let mut unbound = 0usize;
        let mut card = table.len();
        for (col, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => bindings.get(v).copied(),
            };
            match value {
                Some(value) => card = card.min(table.probe_len(col, value)),
                None => unbound += 1,
            }
        }
        let key = (unbound, card);
        if key < best_key || (key == best_key && **atom < *remaining[best_idx]) {
            best_key = key;
            best_idx = i;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::atom;

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["fno", "dest"]).unwrap();
        db.create_table("Airlines", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("Flights", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("Airlines", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    #[test]
    fn single_atom_selection() {
        let db = flight_db();
        // F(x, Paris): Kramer's body. Three valuations (paper §2.3).
        let rows = db
            .evaluate(&[atom!("Flights", [v(0), Term::str("Paris")])], usize::MAX)
            .unwrap();
        assert_eq!(rows.len(), 3);
        let mut fnos: Vec<i64> = rows.iter().map(|r| r[&Var(0)].as_int().unwrap()).collect();
        fnos.sort_unstable();
        assert_eq!(fnos, vec![122, 123, 134]);
    }

    #[test]
    fn join_across_tables() {
        let db = flight_db();
        // Jerry's body: F(y, Paris) ∧ A(y, United) → flights 122, 123.
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Airlines", [v(0), Term::str("United")]),
                ],
                usize::MAX,
            )
            .unwrap();
        let mut fnos: Vec<i64> = rows.iter().map(|r| r[&Var(0)].as_int().unwrap()).collect();
        fnos.sort_unstable();
        assert_eq!(fnos, vec![122, 123]);
    }

    #[test]
    fn combined_query_of_section_42_shape() {
        let db = flight_db();
        // The Kramer+Jerry combined body with variables already merged:
        // F(x, Paris) ∧ F(x, Paris) ∧ A(x, United).
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Airlines", [v(0), Term::str("United")]),
                ],
                1,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        let fno = rows[0][&Var(0)].as_int().unwrap();
        assert!(fno == 122 || fno == 123);
    }

    #[test]
    fn limit_respected() {
        let db = flight_db();
        let rows = db.evaluate(&[atom!("Flights", [v(0), v(1)])], 2).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn limit_zero_returns_nothing() {
        let db = flight_db();
        let rows = db.evaluate(&[atom!("Flights", [v(0), v(1)])], 0).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn empty_conjunction_is_true() {
        let db = flight_db();
        let rows = db.evaluate(&[], usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn unsatisfiable_constant() {
        let db = flight_db();
        let rows = db
            .evaluate(&[atom!("Flights", [v(0), Term::str("Athens")])], usize::MAX)
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut db = Database::new();
        db.create_table("E", &["a", "b"]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(1)]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(2)]).unwrap();
        // E(x, x) matches only the reflexive row.
        let rows = db
            .evaluate(&[atom!("E", [v(0), v(0)])], usize::MAX)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][&Var(0)], Value::int(1));
    }

    #[test]
    fn ground_atom_membership() {
        let db = flight_db();
        let hit = db
            .evaluate(
                &[atom!("Flights", [Term::int(122), Term::str("Paris")])],
                usize::MAX,
            )
            .unwrap();
        assert_eq!(hit.len(), 1);
        let miss = db
            .evaluate(
                &[atom!("Flights", [Term::int(122), Term::str("Rome")])],
                usize::MAX,
            )
            .unwrap();
        assert!(miss.is_empty());
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let db = flight_db();
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Rome")]),
                    atom!("Airlines", [v(1), Term::str("United")]),
                ],
                usize::MAX,
            )
            .unwrap();
        // 1 Rome flight × 2 United rows.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn stats_reflect_index_use() {
        let db = flight_db();
        let (_, stats) = db
            .evaluate_with_stats(&[atom!("Flights", [v(0), Term::str("Paris")])], usize::MAX)
            .unwrap();
        assert!(stats.index_probes >= 1);
        assert_eq!(stats.full_scans, 0);
        assert_eq!(stats.rows_considered, 3);

        // An all-variable pattern requires a scan.
        let (_, stats) = db
            .evaluate_with_stats(&[atom!("Flights", [v(0), v(1)])], usize::MAX)
            .unwrap();
        assert_eq!(stats.full_scans, 1);
    }

    #[test]
    fn join_order_prefers_selective_atom() {
        // A large table joined with a highly selective one: the evaluator
        // should drive from the selective side. We verify via stats that
        // rows_considered stays near the selective cardinality.
        let mut db = Database::new();
        db.create_table("Big", &["a", "b"]).unwrap();
        db.create_table("Small", &["a"]).unwrap();
        for i in 0..1000 {
            db.insert("Big", vec![Value::int(i), Value::int(i % 7)])
                .unwrap();
        }
        db.insert("Small", vec![Value::int(500)]).unwrap();
        let (rows, stats) = db
            .evaluate_with_stats(
                &[atom!("Big", [v(0), v(1)]), atom!("Small", [v(0)])],
                usize::MAX,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(
            stats.rows_considered < 10,
            "expected selective-first ordering, considered {}",
            stats.rows_considered
        );
    }
}

/// Property tests: the iterative explicit-frame evaluator is
/// **bit-for-bit** the recursive oracle — same valuations, same answer
/// order, same [`EvalStats`] — on random databases, conjunctions,
/// constraints, and limits. This is the equivalence the engine's
/// "intra ≡ sequential" guarantee now rests on.
#[cfg(test)]
mod equivalence_proptests {
    use super::recursive_reference;
    use super::*;
    use proptest::prelude::*;

    const RELS: [&str; 3] = ["P", "Q", "S"];
    const NUM_VARS: u32 = 4;
    const DOMAIN: i64 = 4;

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            (0..NUM_VARS).prop_map(|i| Term::var(Var(i))),
            (0..DOMAIN).prop_map(Term::int),
        ]
    }

    fn arb_atom() -> impl Strategy<Value = Atom> {
        (0..RELS.len(), proptest::collection::vec(arb_term(), 2))
            .prop_map(|(r, terms)| Atom::new(RELS[r], terms))
    }

    fn arb_constraint() -> impl Strategy<Value = Constraint> {
        (arb_term(), 0..5usize, arb_term()).prop_map(|(lhs, op, rhs)| {
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne][op];
            Constraint::new(lhs, op, rhs)
        })
    }

    #[derive(Clone, Debug)]
    struct Instance {
        rows: Vec<(usize, i64, i64)>,
        atoms: Vec<Atom>,
        constraints: Vec<Constraint>,
        limit: usize,
    }

    fn arb_instance() -> impl Strategy<Value = Instance> {
        (
            proptest::collection::vec((0..RELS.len(), 0..DOMAIN, 0..DOMAIN), 0..24),
            proptest::collection::vec(arb_atom(), 0..5),
            proptest::collection::vec(arb_constraint(), 0..3),
            0..6usize,
        )
            .prop_map(|(rows, atoms, constraints, limit)| Instance {
                rows,
                atoms,
                constraints,
                // Exercise both bounded and exhaustive enumeration.
                limit: if limit == 5 { usize::MAX } else { limit },
            })
    }

    fn build_db(inst: &Instance) -> Database {
        let mut db = Database::new();
        for rel in RELS {
            db.create_table(rel, &["a", "b"]).unwrap();
        }
        for &(r, a, b) in &inst.rows {
            db.insert(RELS[r], vec![Value::int(a), Value::int(b)])
                .unwrap();
        }
        db
    }

    use eq_ir::CmpOp;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn iterative_equals_recursive_oracle(inst in arb_instance()) {
            let db = build_db(&inst);
            let (fast, fast_stats) =
                evaluate(&db, &inst.atoms, &inst.constraints, inst.limit);
            let (slow, slow_stats) = recursive_reference::evaluate(
                &db, &inst.atoms, &inst.constraints, inst.limit);
            prop_assert_eq!(&fast, &slow, "valuations (or their order) diverge");
            prop_assert_eq!(fast_stats, slow_stats, "evaluator stats diverge");
        }
    }
}
