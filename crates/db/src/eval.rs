//! Conjunctive-query evaluation: greedy atom ordering + indexed
//! backtracking join.

use crate::database::Database;
use crate::table::Table;
use eq_ir::{Atom, Constraint, FastMap, Term, Value, Var};

/// A valuation: an assignment of database values to query variables
/// (§2.3's "assignment of a value from D to each variable of q").
pub type Valuation = FastMap<Var, Value>;

/// Evaluator statistics for one query, reported by
/// [`Database::evaluate_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Rows materialized and checked against the current pattern.
    pub rows_considered: u64,
    /// Index probes issued.
    pub index_probes: u64,
    /// Full-table scans that had no usable bound column.
    pub full_scans: u64,
}

/// Evaluates `atoms` (a conjunction over database relations) and returns
/// up to `limit` valuations. Relations and arities are pre-checked by the
/// caller.
pub(crate) fn evaluate(
    db: &Database,
    atoms: &[Atom],
    constraints: &[Constraint],
    limit: usize,
) -> (Vec<Valuation>, EvalStats) {
    let mut stats = EvalStats::default();
    let mut results = Vec::new();
    if limit == 0 {
        return (results, stats);
    }
    if atoms.is_empty() {
        // The empty conjunction is true under the empty valuation —
        // provided no fully-ground constraint refutes it.
        let empty = Valuation::default();
        if constraints_hold(constraints, &empty) {
            results.push(empty);
        }
        return (results, stats);
    }
    let mut bindings = Valuation::default();
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    search(
        db,
        &mut remaining,
        constraints,
        &mut bindings,
        limit,
        &mut results,
        &mut stats,
    );
    (results, stats)
}

/// Checks every constraint decidable under `bindings`; undecidable
/// constraints pass provisionally and are re-checked at deeper levels
/// (all variables are bound at the leaf, by range restriction).
fn constraints_hold(constraints: &[Constraint], bindings: &Valuation) -> bool {
    constraints
        .iter()
        .all(|c| c.check(&|v| bindings.get(&v).copied()))
}

/// Recursive backtracking join. `remaining` holds the atoms not yet
/// joined; each level picks the most-bound atom (greedy ordering), probes
/// or scans its table, and recurses with extended bindings.
#[allow(clippy::too_many_arguments)]
fn search(
    db: &Database,
    remaining: &mut Vec<&Atom>,
    constraints: &[Constraint],
    bindings: &mut Valuation,
    limit: usize,
    results: &mut Vec<Valuation>,
    stats: &mut EvalStats,
) {
    if results.len() >= limit {
        return;
    }
    if remaining.is_empty() {
        results.push(bindings.clone());
        return;
    }
    let pick = choose_atom(db, remaining, bindings);
    let atom = remaining.swap_remove(pick);
    let table = db.table(atom.relation).expect("pre-checked relation");

    // Find the best bound position to drive an index probe.
    let mut best: Option<(usize, Value, usize)> = None; // (col, value, cardinality)
    for (col, term) in atom.terms.iter().enumerate() {
        let value = match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => bindings.get(v).copied(),
        };
        if let Some(value) = value {
            let card = table.probe_len(col, value);
            if best.is_none_or(|(_, _, c)| card < c) {
                best = Some((col, value, card));
            }
        }
    }

    match best {
        Some((col, value, _)) => {
            stats.index_probes += 1;
            // The posting list is borrowed from the table; collect ids
            // first because `try_row` re-borrows.
            for &id in table.probe(col, value) {
                if results.len() >= limit {
                    break;
                }
                try_row(
                    db,
                    table,
                    atom,
                    id,
                    remaining,
                    constraints,
                    bindings,
                    limit,
                    results,
                    stats,
                );
            }
        }
        None => {
            stats.full_scans += 1;
            for id in 0..table.row_id_bound() {
                if results.len() >= limit {
                    break;
                }
                try_row(
                    db,
                    table,
                    atom,
                    id,
                    remaining,
                    constraints,
                    bindings,
                    limit,
                    results,
                    stats,
                );
            }
        }
    }
    remaining.push(atom);
    let last = remaining.len() - 1;
    remaining.swap(pick, last);
}

/// Attempts to match `atom` against row `id`, extending `bindings`; on
/// success recurses into the remaining atoms, then undoes the extension.
#[allow(clippy::too_many_arguments)]
fn try_row(
    db: &Database,
    table: &Table,
    atom: &Atom,
    id: u32,
    remaining: &mut Vec<&Atom>,
    constraints: &[Constraint],
    bindings: &mut Valuation,
    limit: usize,
    results: &mut Vec<Valuation>,
    stats: &mut EvalStats,
) {
    if !table.is_live(id) {
        return;
    }
    stats.rows_considered += 1;
    let row = table.row(id);
    let mut newly_bound: Vec<Var> = Vec::new();
    let mut ok = true;
    for (term, &value) in atom.terms.iter().zip(row.iter()) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    ok = false;
                    break;
                }
            }
            Term::Var(v) => match bindings.get(v) {
                Some(&bound) => {
                    if bound != value {
                        ok = false;
                        break;
                    }
                }
                None => {
                    bindings.insert(*v, value);
                    newly_bound.push(*v);
                }
            },
        }
    }
    if ok && constraints_hold(constraints, bindings) {
        search(db, remaining, constraints, bindings, limit, results, stats);
    }
    for v in newly_bound {
        bindings.remove(&v);
    }
}

/// Greedy join ordering: pick the atom with the most bound positions;
/// break ties toward the smaller estimated cardinality (posting list of
/// its best bound column, or table size when nothing is bound).
///
/// Remaining ties are broken *structurally* — by `(relation, terms)`
/// order — never by position in the worklist. An atom's full key
/// therefore depends only on the atom itself and the bindings of its own
/// variables, which makes the chosen join order invariant under
/// re-grouping of variable-disjoint sub-conjunctions: evaluating a
/// sub-conjunction alone picks its atoms in exactly the order the whole
/// query would. The engine's partitioned intra-component evaluation
/// (`eq_core::intra`) relies on this to reproduce the sequential answer
/// choice from independently evaluated work units.
fn choose_atom(db: &Database, remaining: &[&Atom], bindings: &Valuation) -> usize {
    let mut best_idx = 0;
    let mut best_key = (usize::MAX, usize::MAX); // (unbound count, cardinality)
    for (i, atom) in remaining.iter().enumerate() {
        let table = db.table(atom.relation).expect("pre-checked relation");
        let mut unbound = 0usize;
        let mut card = table.len();
        for (col, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => bindings.get(v).copied(),
            };
            match value {
                Some(value) => card = card.min(table.probe_len(col, value)),
                None => unbound += 1,
            }
        }
        let key = (unbound, card);
        if key < best_key || (key == best_key && **atom < *remaining[best_idx]) {
            best_key = key;
            best_idx = i;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::atom;

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["fno", "dest"]).unwrap();
        db.create_table("Airlines", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("Flights", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("Airlines", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    #[test]
    fn single_atom_selection() {
        let db = flight_db();
        // F(x, Paris): Kramer's body. Three valuations (paper §2.3).
        let rows = db
            .evaluate(&[atom!("Flights", [v(0), Term::str("Paris")])], usize::MAX)
            .unwrap();
        assert_eq!(rows.len(), 3);
        let mut fnos: Vec<i64> = rows.iter().map(|r| r[&Var(0)].as_int().unwrap()).collect();
        fnos.sort_unstable();
        assert_eq!(fnos, vec![122, 123, 134]);
    }

    #[test]
    fn join_across_tables() {
        let db = flight_db();
        // Jerry's body: F(y, Paris) ∧ A(y, United) → flights 122, 123.
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Airlines", [v(0), Term::str("United")]),
                ],
                usize::MAX,
            )
            .unwrap();
        let mut fnos: Vec<i64> = rows.iter().map(|r| r[&Var(0)].as_int().unwrap()).collect();
        fnos.sort_unstable();
        assert_eq!(fnos, vec![122, 123]);
    }

    #[test]
    fn combined_query_of_section_42_shape() {
        let db = flight_db();
        // The Kramer+Jerry combined body with variables already merged:
        // F(x, Paris) ∧ F(x, Paris) ∧ A(x, United).
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Flights", [v(0), Term::str("Paris")]),
                    atom!("Airlines", [v(0), Term::str("United")]),
                ],
                1,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        let fno = rows[0][&Var(0)].as_int().unwrap();
        assert!(fno == 122 || fno == 123);
    }

    #[test]
    fn limit_respected() {
        let db = flight_db();
        let rows = db.evaluate(&[atom!("Flights", [v(0), v(1)])], 2).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn limit_zero_returns_nothing() {
        let db = flight_db();
        let rows = db.evaluate(&[atom!("Flights", [v(0), v(1)])], 0).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn empty_conjunction_is_true() {
        let db = flight_db();
        let rows = db.evaluate(&[], usize::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn unsatisfiable_constant() {
        let db = flight_db();
        let rows = db
            .evaluate(&[atom!("Flights", [v(0), Term::str("Athens")])], usize::MAX)
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut db = Database::new();
        db.create_table("E", &["a", "b"]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(1)]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(2)]).unwrap();
        // E(x, x) matches only the reflexive row.
        let rows = db
            .evaluate(&[atom!("E", [v(0), v(0)])], usize::MAX)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][&Var(0)], Value::int(1));
    }

    #[test]
    fn ground_atom_membership() {
        let db = flight_db();
        let hit = db
            .evaluate(
                &[atom!("Flights", [Term::int(122), Term::str("Paris")])],
                usize::MAX,
            )
            .unwrap();
        assert_eq!(hit.len(), 1);
        let miss = db
            .evaluate(
                &[atom!("Flights", [Term::int(122), Term::str("Rome")])],
                usize::MAX,
            )
            .unwrap();
        assert!(miss.is_empty());
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let db = flight_db();
        let rows = db
            .evaluate(
                &[
                    atom!("Flights", [v(0), Term::str("Rome")]),
                    atom!("Airlines", [v(1), Term::str("United")]),
                ],
                usize::MAX,
            )
            .unwrap();
        // 1 Rome flight × 2 United rows.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn stats_reflect_index_use() {
        let db = flight_db();
        let (_, stats) = db
            .evaluate_with_stats(&[atom!("Flights", [v(0), Term::str("Paris")])], usize::MAX)
            .unwrap();
        assert!(stats.index_probes >= 1);
        assert_eq!(stats.full_scans, 0);
        assert_eq!(stats.rows_considered, 3);

        // An all-variable pattern requires a scan.
        let (_, stats) = db
            .evaluate_with_stats(&[atom!("Flights", [v(0), v(1)])], usize::MAX)
            .unwrap();
        assert_eq!(stats.full_scans, 1);
    }

    #[test]
    fn join_order_prefers_selective_atom() {
        // A large table joined with a highly selective one: the evaluator
        // should drive from the selective side. We verify via stats that
        // rows_considered stays near the selective cardinality.
        let mut db = Database::new();
        db.create_table("Big", &["a", "b"]).unwrap();
        db.create_table("Small", &["a"]).unwrap();
        for i in 0..1000 {
            db.insert("Big", vec![Value::int(i), Value::int(i % 7)])
                .unwrap();
        }
        db.insert("Small", vec![Value::int(500)]).unwrap();
        let (rows, stats) = db
            .evaluate_with_stats(
                &[atom!("Big", [v(0), v(1)]), atom!("Small", [v(0)])],
                usize::MAX,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(
            stats.rows_considered < 10,
            "expected selective-first ordering, considered {}",
            stats.rows_considered
        );
    }
}
