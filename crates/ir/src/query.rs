//! The intermediate representation of an entangled query: `{C} H ⊣ B`.

use crate::{Atom, Constraint, Term, Var, VarGen};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identity of an entangled query within an engine or a matching run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An entangled query in the paper's intermediate representation (§2.2):
///
/// ```text
/// {C} H ⊣ B
/// ```
///
/// * `C` (*postconditions*) — conjunction of atoms over ANSWER relations
///   that must be satisfied by *other* queries' contributions;
/// * `H` (*head*) — conjunction of atoms over ANSWER relations contributed
///   by this query;
/// * `B` (*body*) — conjunction of atoms over database relations binding
///   the variables used in `H` and `C`.
///
/// Range restriction: every variable in `H` or `C` must appear in `B`.
/// Use [`EntangledQuery::validate`] to check this; the engine refuses
/// non-range-restricted queries at admission.
#[derive(Clone, PartialEq, Eq)]
pub struct EntangledQuery {
    /// Query identity; assigned by the engine at admission.
    pub id: QueryId,
    /// Head atoms `H` (over ANSWER relations). Must be non-empty.
    pub head: Vec<Atom>,
    /// Postcondition atoms `C` (over ANSWER relations). May be empty for a
    /// query that contributes unconditionally.
    pub postconditions: Vec<Atom>,
    /// Body atoms `B` (over database relations).
    pub body: Vec<Atom>,
    /// Comparison constraints over body valuations (e.g. `x >= 5`);
    /// purely a body filter, invisible to matching.
    pub constraints: Vec<Constraint>,
    /// `CHOOSE k`: number of coordinated solutions requested. The paper's
    /// core language fixes `k = 1`; values `> 1` enable the §6 multi-answer
    /// extension.
    pub choose: u32,
}

/// Why a query failed validation at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The head is empty — the query would contribute nothing.
    EmptyHead,
    /// A head or postcondition variable does not occur in the body
    /// (violates range restriction, §2.2).
    NotRangeRestricted {
        /// The offending variable.
        var: Var,
        /// Whether it occurred in a head or a postcondition atom.
        polarity: crate::Polarity,
    },
    /// `CHOOSE 0` is meaningless.
    ChooseZero,
    /// A comparison constraint mentions a variable the body does not
    /// bind.
    UnboundConstraintVar {
        /// The offending variable.
        var: Var,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyHead => write!(f, "query has no head atoms"),
            ValidationError::NotRangeRestricted { var, polarity } => write!(
                f,
                "variable {var} appears in a {polarity:?} atom but not in the body \
                 (range restriction, paper §2.2)"
            ),
            ValidationError::ChooseZero => write!(f, "CHOOSE 0 is not a valid choice count"),
            ValidationError::UnboundConstraintVar { var } => write!(
                f,
                "variable {var} appears in a comparison constraint but not in the body"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl EntangledQuery {
    /// Builds a `CHOOSE 1` query. The id is a placeholder until admission.
    pub fn new(head: Vec<Atom>, postconditions: Vec<Atom>, body: Vec<Atom>) -> Self {
        EntangledQuery {
            id: QueryId(0),
            head,
            postconditions,
            body,
            constraints: Vec::new(),
            choose: 1,
        }
    }

    /// Adds body comparison constraints, returning `self` (builder
    /// style).
    pub fn with_constraints(mut self, constraints: Vec<Constraint>) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the query id, returning `self` (builder style).
    pub fn with_id(mut self, id: QueryId) -> Self {
        self.id = id;
        self
    }

    /// Sets the `CHOOSE k` count, returning `self` (builder style).
    pub fn with_choose(mut self, k: u32) -> Self {
        self.choose = k;
        self
    }

    /// Checks structural well-formedness: non-empty head, range
    /// restriction, positive choose count.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if self.head.is_empty() {
            return Err(ValidationError::EmptyHead);
        }
        if self.choose == 0 {
            return Err(ValidationError::ChooseZero);
        }
        let body_vars: HashSet<Var> = self.body.iter().flat_map(|a| a.vars()).collect();
        for atom in &self.head {
            if let Some(var) = atom.vars().find(|v| !body_vars.contains(v)) {
                return Err(ValidationError::NotRangeRestricted {
                    var,
                    polarity: crate::Polarity::Head,
                });
            }
        }
        for atom in &self.postconditions {
            if let Some(var) = atom.vars().find(|v| !body_vars.contains(v)) {
                return Err(ValidationError::NotRangeRestricted {
                    var,
                    polarity: crate::Polarity::Postcondition,
                });
            }
        }
        for c in &self.constraints {
            if let Some(var) = c.vars().find(|v| !body_vars.contains(v)) {
                return Err(ValidationError::UnboundConstraintVar { var });
            }
        }
        Ok(())
    }

    /// All distinct variables of the query, in first-occurrence order
    /// (head, then postconditions, then body).
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for atom in self
            .head
            .iter()
            .chain(&self.postconditions)
            .chain(&self.body)
        {
            for v in atom.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total number of postcondition atoms (`PCCOUNT` in §4.1.1).
    pub fn pc_count(&self) -> usize {
        self.postconditions.len()
    }

    /// Renames all variables apart using fresh variables from `gen`,
    /// establishing the matching precondition that no variable is shared
    /// between queries (§4.1.3).
    pub fn rename_apart(&self, gen: &VarGen) -> EntangledQuery {
        let mut mapping: HashMap<Var, Var> = HashMap::new();
        let rename = |atom: &Atom, mapping: &mut HashMap<Var, Var>| Atom {
            relation: atom.relation,
            terms: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(*mapping.entry(*v).or_insert_with(|| gen.fresh())),
                    Term::Const(_) => *t,
                })
                .collect(),
        };
        let head = self.head.iter().map(|a| rename(a, &mut mapping)).collect();
        let postconditions = self
            .postconditions
            .iter()
            .map(|a| rename(a, &mut mapping))
            .collect();
        let body = self.body.iter().map(|a| rename(a, &mut mapping)).collect();
        let mut constraints = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            let mut map_term = |t: Term| match t {
                Term::Var(v) => Term::Var(*mapping.entry(v).or_insert_with(|| gen.fresh())),
                Term::Const(_) => t,
            };
            constraints.push(Constraint::new(map_term(c.lhs), c.op, map_term(c.rhs)));
        }
        EntangledQuery {
            id: self.id,
            head,
            postconditions,
            body,
            constraints,
            choose: self.choose,
        }
    }
}

impl fmt::Debug for EntangledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for EntangledQuery {
    /// Paper-style rendering: `{C} H <- B`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.postconditions.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}} ")?;
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " <- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a}")?;
        }
        for c in &self.constraints {
            write!(f, " & {c}")?;
        }
        if self.choose != 1 {
            write!(f, " choose {}", self.choose)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, Polarity, Term};

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    /// Kramer's query from the paper's introduction:
    /// `{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)`.
    fn kramer() -> EntangledQuery {
        EntangledQuery::new(
            vec![atom!("R", [Term::str("Kramer"), v(0)])],
            vec![atom!("R", [Term::str("Jerry"), v(0)])],
            vec![atom!("F", [v(0), Term::str("Paris")])],
        )
    }

    #[test]
    fn kramer_query_is_valid() {
        assert_eq!(kramer().validate(), Ok(()));
    }

    #[test]
    fn empty_head_rejected() {
        let q = EntangledQuery::new(vec![], vec![], vec![atom!("F", [v(0)])]);
        assert_eq!(q.validate(), Err(ValidationError::EmptyHead));
    }

    #[test]
    fn choose_zero_rejected() {
        let q = kramer().with_choose(0);
        assert_eq!(q.validate(), Err(ValidationError::ChooseZero));
    }

    #[test]
    fn range_restriction_head() {
        // Head uses ?1 which is not bound in the body.
        let q = EntangledQuery::new(vec![atom!("R", [v(1)])], vec![], vec![atom!("F", [v(0)])]);
        assert_eq!(
            q.validate(),
            Err(ValidationError::NotRangeRestricted {
                var: Var(1),
                polarity: Polarity::Head
            })
        );
    }

    #[test]
    fn range_restriction_postcondition() {
        let q = EntangledQuery::new(
            vec![atom!("R", [v(0)])],
            vec![atom!("R", [v(2)])],
            vec![atom!("F", [v(0)])],
        );
        assert_eq!(
            q.validate(),
            Err(ValidationError::NotRangeRestricted {
                var: Var(2),
                polarity: Polarity::Postcondition
            })
        );
    }

    #[test]
    fn ground_query_needs_no_body_bindings() {
        // Fully specified query (best-case workload of §5.3.1): no
        // variables in head/postconditions at all.
        let q = EntangledQuery::new(
            vec![atom!("R", [Term::str("Jerry"), Term::str("ITH")])],
            vec![atom!("R", [Term::str("Kramer"), Term::str("ITH")])],
            vec![atom!("F", [Term::str("Jerry"), Term::str("Kramer")])],
        );
        assert_eq!(q.validate(), Ok(()));
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = EntangledQuery::new(
            vec![atom!("R", [v(5), v(2)])],
            vec![atom!("R", [v(2), v(7)])],
            vec![atom!("F", [v(5), v(2), v(7), v(9)])],
        );
        assert_eq!(q.variables(), vec![Var(5), Var(2), Var(7), Var(9)]);
    }

    #[test]
    fn rename_apart_preserves_structure() {
        let gen = VarGen::starting_at(100);
        let q = kramer();
        let r = q.rename_apart(&gen);
        // Shape preserved.
        assert_eq!(r.head.len(), 1);
        assert_eq!(r.postconditions.len(), 1);
        assert_eq!(r.body.len(), 1);
        // Shared variable x stays shared after renaming.
        let hv = r.head[0].vars().next().unwrap();
        let pv = r.postconditions[0].vars().next().unwrap();
        let bv = r.body[0].vars().next().unwrap();
        assert_eq!(hv, pv);
        assert_eq!(hv, bv);
        assert!(hv.index() >= 100);
        // Constants untouched.
        assert_eq!(r.head[0].terms[0], Term::str("Kramer"));
    }

    #[test]
    fn rename_apart_twice_gives_disjoint_vars() {
        let gen = VarGen::new();
        let a = kramer().rename_apart(&gen);
        let b = kramer().rename_apart(&gen);
        let av: HashSet<Var> = a.variables().into_iter().collect();
        let bv: HashSet<Var> = b.variables().into_iter().collect();
        assert!(av.is_disjoint(&bv));
    }

    #[test]
    fn display_round_shape() {
        let q = kramer();
        let s = q.to_string();
        assert!(s.contains("{R(Jerry, ?0)}"), "{s}");
        assert!(s.contains("R(Kramer, ?0) <- F(?0, Paris)"), "{s}");
    }

    #[test]
    fn pc_count() {
        assert_eq!(kramer().pc_count(), 1);
    }
}
