//! Variables and terms.

use crate::Value;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A query variable.
///
/// §4.1.3 of the paper requires that "no variable can appear in more than
/// one query"; the engine enforces this by renaming queries apart on
/// admission using a [`VarGen`]. A `Var` is therefore globally unique
/// within one engine / one matching run, and can be used directly as a
/// dense union-find key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term of a relational atom: either a constant or a variable.
///
/// The `Ord` impl is structural (constants before variables, then by
/// payload); it carries no semantic meaning and exists so deterministic
/// tie-breaks — e.g. the database evaluator's atom ordering — can be
/// stated over term structure instead of container positions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant value.
    Const(Value),
    /// A variable.
    Var(Var),
}

impl Term {
    /// Convenience constructor for an interned string constant term.
    pub fn str(s: &str) -> Self {
        Term::Const(Value::str(s))
    }

    /// Convenience constructor for an integer constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Value::int(i))
    }

    /// Convenience constructor for a variable term.
    pub fn var(v: Var) -> Self {
        Term::Var(v)
    }

    /// Returns the constant if this term is one.
    pub fn as_const(self) -> Option<Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// Returns the variable if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// True if the term is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// True if the term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v:?}"),
            Term::Var(v) => write!(f, "{v:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

/// Generator of process-unique variables.
///
/// Every admitted query gets its variables renamed apart through one of
/// these, satisfying the matching algorithm's precondition. The generator
/// is lock-free; cloning it shares the counter.
#[derive(Debug, Default)]
pub struct VarGen {
    next: AtomicU32,
}

impl VarGen {
    /// A fresh generator starting at variable 0.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// A generator starting at `start`; useful when re-admitting queries
    /// whose variables must not collide with existing ones.
    pub fn starting_at(start: u32) -> Self {
        VarGen {
            next: AtomicU32::new(start),
        }
    }

    /// Allocates a fresh variable.
    pub fn fresh(&self) -> Var {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(idx != u32::MAX, "variable space exhausted");
        Var(idx)
    }

    /// Allocates `n` fresh variables as a contiguous block.
    pub fn fresh_block(&self, n: u32) -> Vec<Var> {
        let base = self.next.fetch_add(n, Ordering::Relaxed);
        (base..base + n).map(Var).collect()
    }

    /// Number of variables allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let t = Term::int(122);
        assert!(t.is_const());
        assert_eq!(t.as_const(), Some(Value::int(122)));
        assert_eq!(t.as_var(), None);

        let v = Term::var(Var(3));
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some(Var(3)));
        assert_eq!(v.as_const(), None);
    }

    #[test]
    fn vargen_is_monotonic_and_unique() {
        let g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert_eq!(a, Var(0));
        assert_eq!(b, Var(1));
        assert_eq!(g.allocated(), 2);
    }

    #[test]
    fn vargen_block_is_contiguous() {
        let g = VarGen::starting_at(10);
        let block = g.fresh_block(3);
        assert_eq!(block, vec![Var(10), Var(11), Var(12)]);
        assert_eq!(g.fresh(), Var(13));
    }

    #[test]
    fn vargen_concurrent_freshness() {
        let g = std::sync::Arc::new(VarGen::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || (0..100).map(|_| g.fresh()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<Var> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var(Var(7)).to_string(), "?7");
        assert_eq!(Term::str("Jerry").to_string(), "Jerry");
        assert_eq!(Term::int(5).to_string(), "5");
    }
}
