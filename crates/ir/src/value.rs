//! Constant values.

use crate::Symbol;
use std::fmt;

/// A constant value appearing in database tuples and query atoms.
///
/// The paper's example schemas use strings (user names, airports, airline
/// names) and integers (flight numbers); both are supported. Strings are
/// interned, so `Value` is `Copy` and comparisons are integer comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer constant.
    Int(i64),
    /// Interned string constant.
    Str(Symbol),
}

impl Value {
    /// Convenience constructor interning a string constant.
    pub fn str(s: &str) -> Self {
        Value::Str(Symbol::new(s))
    }

    /// Convenience constructor for an integer constant.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the string if this is a string constant.
    pub fn as_str(self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            Value::Int(_) => None,
        }
    }

    /// Returns the integer if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s.as_str()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_across_kinds() {
        assert_eq!(Value::int(122), Value::Int(122));
        assert_eq!(Value::str("Paris"), Value::str("Paris"));
        assert_ne!(Value::str("Paris"), Value::str("Rome"));
        assert_ne!(Value::int(122), Value::str("122"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::str("United").to_string(), "United");
        assert_eq!(format!("{:?}", Value::str("United")), "\"United\"");
    }

    #[test]
    fn conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v, Value::int(42));
        let v: Value = "JFK".into();
        assert_eq!(v, Value::str("JFK"));
    }

    #[test]
    fn ordering_is_total() {
        // Ints order before strings by enum discriminant; within a kind the
        // natural order applies. We only rely on *some* total order existing
        // (for BTree keys and deterministic output), not its exact shape.
        let mut vs = [Value::str("b"), Value::int(2), Value::int(1)];
        vs.sort();
        assert_eq!(vs[0], Value::int(1));
        assert_eq!(vs[1], Value::int(2));
    }
}
