//! Comparison constraints on body valuations.
//!
//! The paper restricts the *coordination* part of a query (heads and
//! postconditions) to conjunctive atoms, but the body `B` is "a query
//! over database relations" in general (§2.2). Comparisons such as
//! `level >= min_level` belong to the body: they filter valuations
//! without participating in unification or matching.

use crate::{Term, Value, Var};
use std::fmt;

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "!=",
        }
    }

    /// Evaluates the comparison on two values.
    ///
    /// Integers compare numerically; strings compare lexicographically
    /// on their text. Values of different kinds are incomparable: every
    /// ordering comparison on them is false, while `!=` is true.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            CmpOp::Ne => lhs != rhs,
            op => {
                let ord = match (lhs, rhs) {
                    (Value::Int(a), Value::Int(b)) => a.cmp(&b),
                    (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
                    _ => return false,
                };
                match op {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    CmpOp::Ne => unreachable!("handled above"),
                }
            }
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A body constraint `lhs op rhs` over terms. Variables must be bound by
/// the body's relational atoms (checked by query validation).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left operand.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl Constraint {
    /// Builds a constraint.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Constraint { lhs, op, rhs }
    }

    /// Variables mentioned (0, 1, or 2).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        [self.lhs, self.rhs].into_iter().filter_map(|t| t.as_var())
    }

    /// Evaluates under a lookup for variable values; `None` lookups mean
    /// the constraint is not yet decidable and is treated as satisfied
    /// (callers re-check once all variables are bound).
    pub fn check(&self, lookup: &impl Fn(Var) -> Option<Value>) -> bool {
        let resolve = |t: Term| -> Option<Value> {
            match t {
                Term::Const(c) => Some(c),
                Term::Var(v) => lookup(v),
            }
        };
        match (resolve(self.lhs), resolve(self.rhs)) {
            (Some(a), Some(b)) => self.op.eval(a, b),
            _ => true,
        }
    }

    /// Applies a substitution to both operands.
    pub fn apply(&self, subst: &impl Fn(Var) -> Option<Term>) -> Constraint {
        let map = |t: Term| match t {
            Term::Var(v) => subst(v).unwrap_or(t),
            Term::Const(_) => t,
        };
        Constraint {
            lhs: map(self.lhs),
            op: self.op,
            rhs: map(self.rhs),
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_comparisons() {
        assert!(CmpOp::Lt.eval(Value::int(1), Value::int(2)));
        assert!(!CmpOp::Lt.eval(Value::int(2), Value::int(2)));
        assert!(CmpOp::Le.eval(Value::int(2), Value::int(2)));
        assert!(CmpOp::Gt.eval(Value::int(3), Value::int(2)));
        assert!(CmpOp::Ge.eval(Value::int(2), Value::int(2)));
        assert!(CmpOp::Ne.eval(Value::int(1), Value::int(2)));
        assert!(!CmpOp::Ne.eval(Value::int(2), Value::int(2)));
    }

    #[test]
    fn string_comparisons_lexicographic() {
        assert!(CmpOp::Lt.eval(Value::str("AAB"), Value::str("AAC")));
        assert!(CmpOp::Ge.eval(Value::str("b"), Value::str("a")));
    }

    #[test]
    fn mixed_kinds_incomparable_but_unequal() {
        assert!(!CmpOp::Lt.eval(Value::int(1), Value::str("1")));
        assert!(!CmpOp::Ge.eval(Value::int(1), Value::str("1")));
        assert!(CmpOp::Ne.eval(Value::int(1), Value::str("1")));
    }

    #[test]
    fn check_with_partial_bindings() {
        let c = Constraint::new(Term::var(Var(0)), CmpOp::Lt, Term::int(5));
        // Unbound: provisionally satisfied.
        assert!(c.check(&|_| None));
        assert!(c.check(&|_| Some(Value::int(3))));
        assert!(!c.check(&|_| Some(Value::int(7))));
    }

    #[test]
    fn apply_substitution() {
        let c = Constraint::new(Term::var(Var(0)), CmpOp::Ge, Term::var(Var(1)));
        let out = c.apply(&|v| (v == Var(0)).then_some(Term::int(9)));
        assert_eq!(out.lhs, Term::int(9));
        assert_eq!(out.rhs, Term::var(Var(1)));
    }

    #[test]
    fn display_form() {
        let c = Constraint::new(Term::var(Var(2)), CmpOp::Ne, Term::str("x"));
        assert_eq!(c.to_string(), "?2 != x");
    }
}
