//! Relational atoms.

use crate::{Symbol, Term, Value, Var};
use std::fmt;

/// Whether an atom occurs as a query *head* (the query's contribution to an
/// ANSWER relation) or as a *postcondition* (a requirement on the ANSWER
/// relation). The unifiability graph draws edges from heads to
/// postconditions, and the atom index keeps the two sides separate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Polarity {
    /// A head atom (`SELECT ... INTO ANSWER R`).
    Head,
    /// A postcondition atom (`(...) IN ANSWER R`).
    Postcondition,
}

/// A relational atom `R(t1, ..., tn)` over constants and variables.
///
/// Atoms are used for all three parts of an entangled query: head and
/// postcondition atoms range over ANSWER relations, body atoms over
/// database relations. The distinction is contextual, not structural.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation name.
    pub relation: Symbol,
    /// The argument terms, in schema order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a relation name and terms.
    pub fn new(relation: impl Into<Symbol>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// Iterates over the constants of the atom (with repetitions).
    pub fn constants(&self) -> impl Iterator<Item = Value> + '_ {
        self.terms.iter().filter_map(|t| t.as_const())
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }

    /// The *positional* compatibility check of §3.1.1: two atoms are
    /// positionally compatible unless they name different relations, have
    /// different arities, or "contain different constants for the same
    /// attribute value".
    ///
    /// This is necessary but not sufficient for full unifiability when
    /// variables repeat (`R(z, z)` is positionally compatible with
    /// `R(2, 3)` yet not unifiable); the unification engine's
    /// `mgu_atoms` performs the complete check. The positional check is
    /// what the paper's safety definition and atom index use.
    pub fn positionally_compatible(&self, other: &Atom) -> bool {
        self.relation == other.relation
            && self.terms.len() == other.terms.len()
            && self
                .terms
                .iter()
                .zip(&other.terms)
                .all(|(a, b)| match (a, b) {
                    (Term::Const(x), Term::Const(y)) => x == y,
                    _ => true,
                })
    }

    /// Applies a variable substitution, leaving unmapped variables intact.
    pub fn apply(&self, subst: &impl Fn(Var) -> Option<Term>) -> Atom {
        Atom {
            relation: self.relation,
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => subst(*v).unwrap_or(*t),
                    Term::Const(_) => *t,
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand for building atoms in tests and examples:
/// `atom!("R", [Term::str("Jerry"), Term::var(x)])`.
#[macro_export]
macro_rules! atom {
    ($rel:expr, [$($t:expr),* $(,)?]) => {
        $crate::Atom::new($rel, vec![$($t),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    #[test]
    fn positional_compatibility_paper_examples() {
        // R(x, y) ~ R(z, z): compatible.
        let a = Atom::new("R", vec![v(0), v(1)]);
        let b = Atom::new("R", vec![v(2), v(2)]);
        assert!(a.positionally_compatible(&b));

        // R(2, y) !~ R(3, z): different constants, same position.
        let a = Atom::new("R", vec![Term::int(2), v(1)]);
        let b = Atom::new("R", vec![Term::int(3), v(2)]);
        assert!(!a.positionally_compatible(&b));
    }

    #[test]
    fn compatibility_requires_same_relation_and_arity() {
        let a = Atom::new("R", vec![v(0)]);
        let b = Atom::new("S", vec![v(1)]);
        assert!(!a.positionally_compatible(&b));
        let c = Atom::new("R", vec![v(0), v(1)]);
        assert!(!a.positionally_compatible(&c));
    }

    #[test]
    fn repeated_vars_pass_positional_check_only() {
        // Positionally compatible but NOT unifiable — documents why the
        // full MGU check exists.
        let a = Atom::new("R", vec![v(0), v(0)]);
        let b = Atom::new("R", vec![Term::int(2), Term::int(3)]);
        assert!(a.positionally_compatible(&b));
    }

    #[test]
    fn ground_and_vars() {
        let a = Atom::new("Reserve", vec![Term::str("Kramer"), Term::int(122)]);
        assert!(a.is_ground());
        assert_eq!(a.vars().count(), 0);
        assert_eq!(a.constants().count(), 2);

        let b = Atom::new("Reserve", vec![Term::str("Jerry"), v(5)]);
        assert!(!b.is_ground());
        assert_eq!(b.vars().collect::<Vec<_>>(), vec![Var(5)]);
    }

    #[test]
    fn apply_substitution() {
        let a = Atom::new("R", vec![v(0), v(1), Term::int(9)]);
        let out = a.apply(&|var: Var| {
            if var == Var(0) {
                Some(Term::str("Jerry"))
            } else {
                None
            }
        });
        assert_eq!(out.terms[0], Term::str("Jerry"));
        assert_eq!(out.terms[1], v(1).into_term());
        assert_eq!(out.terms[2], Term::int(9));
    }

    trait IntoTerm {
        fn into_term(self) -> Term;
    }
    impl IntoTerm for Term {
        fn into_term(self) -> Term {
            self
        }
    }

    #[test]
    fn display_form() {
        let a = Atom::new("F", vec![v(3), Term::str("Paris")]);
        assert_eq!(a.to_string(), "F(?3, Paris)");
    }

    #[test]
    fn atom_macro() {
        let a = atom!("R", [Term::str("Jerry"), v(1)]);
        assert_eq!(a.relation, Symbol::new("R"));
        assert_eq!(a.arity(), 2);
    }
}
