//! Fast hashing for interned keys.
//!
//! Matching touches hash maps keyed by `Var`, `Symbol` and small tuples on
//! every unification step; SipHash dominates profiles there. Keys are
//! either interner indices or engine-assigned ids — not attacker
//! controlled — so a multiplicative mixer (the `FxHash` construction used
//! by rustc) is safe and measurably faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast mixer. Drop-in for `std::collections::HashMap`.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast mixer.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiplicative hasher (public-domain construction from
/// Firefox/rustc). Not DoS-resistant; only use for trusted keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        let hashes: FastSet<u64> = (0u32..1000)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        assert!(hashes.len() > 990, "unexpected collision rate");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!");
        let mut b = FxHasher::default();
        b.write(b"hello world!?");
        assert_ne!(a.finish(), b.finish());
    }
}
