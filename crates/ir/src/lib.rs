//! Intermediate representation for entangled queries.
//!
//! This crate defines the data model shared by every other crate in the
//! workspace:
//!
//! * [`Symbol`] — interned strings (relation names, string constants);
//! * [`Value`] — constants appearing in tuples and atoms;
//! * [`Var`] / [`Term`] — variables and the terms of relational atoms;
//! * [`Atom`] — a relational atom `R(t1, .., tn)`;
//! * [`EntangledQuery`] — the paper's intermediate form `{C} H ⊣ B`
//!   (§2.2 of the SIGMOD 2011 paper), i.e. postcondition, head and body;
//! * [`QueryId`] / [`VarGen`] — identity and variable-renaming support.
//!
//! The representation is deliberately flat and copy-friendly: terms are two
//! words, atoms are a relation symbol plus a `Vec<Term>`, and all string
//! data lives behind the global interner so that unification and index
//! probes compare `u32`s only.

#![forbid(unsafe_code)]

mod atom;
mod constraint;
pub mod hash;
mod intern;
mod query;
mod term;
mod value;

pub use atom::{Atom, Polarity};
pub use constraint::{CmpOp, Constraint};
pub use hash::{FastMap, FastSet};
pub use intern::{resolve, Interner, Symbol};
pub use query::{EntangledQuery, QueryId, ValidationError};
pub use term::{Term, Var, VarGen};
pub use value::Value;
