//! Global string interner.
//!
//! All relation names and string constants are interned to [`Symbol`]s
//! (a `u32` index). Interning makes atom unification, index probes and
//! tuple comparison integer comparisons, which the matching algorithm of
//! the paper relies on for its throughput (§4.1.4–4.1.5).
//!
//! The interner is a process-wide singleton: entangled queries, database
//! tuples and workload generators all need to agree on symbol identity and
//! threading an interner handle through every API would add noise without
//! a correctness benefit. Lookups after interning are lock-free reads of a
//! boxed `&'static str`.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string.
///
/// Two `Symbol`s are equal iff the strings they were interned from are
/// equal. Construct with [`Symbol::new`] and read back with
/// [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent.
    pub fn new(s: &str) -> Self {
        global().intern(s)
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }

    /// The raw index. Stable for the lifetime of the process; useful as a
    /// dense map key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

/// Resolves a symbol to its string; free-function form of
/// [`Symbol::as_str`].
pub fn resolve(sym: Symbol) -> &'static str {
    sym.as_str()
}

/// The interner behind [`Symbol`].
///
/// Strings are leaked on first interning: the set of distinct relation
/// names, user names and airport codes in any workload is small and
/// long-lived, so leaking them is the standard trade (it is what `rustc`'s
/// own interner does per session).
pub struct Interner {
    inner: RwLock<Inner>,
}

struct Inner {
    map: HashMap<&'static str, Symbol>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            inner: RwLock::new(Inner {
                map: HashMap::new(),
                strings: Vec::new(),
            }),
        }
    }

    fn intern(&self, s: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().map.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Symbol(u32::try_from(inner.strings.len()).expect("interner overflow"));
        inner.strings.push(leaked);
        inner.map.insert(leaked, sym);
        sym
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner.read().strings[sym.0 as usize]
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("Reserve");
        let b = Symbol::new("Reserve");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Reserve");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("Flights");
        let b = Symbol::new("Airlines");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "Flights");
        assert_eq!(b.as_str(), "Airlines");
    }

    #[test]
    fn empty_string_is_internable() {
        let e = Symbol::new("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, Symbol::new(""));
    }

    #[test]
    fn display_matches_source() {
        let s = Symbol::new("ITH");
        assert_eq!(s.to_string(), "ITH");
        assert_eq!(format!("{s:?}"), "Symbol(\"ITH\")");
    }

    #[test]
    fn from_str_impl() {
        let s: Symbol = "JFK".into();
        assert_eq!(s.as_str(), "JFK");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent-key")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn resolve_free_function() {
        let s = Symbol::new("free-fn");
        assert_eq!(resolve(s), "free-fn");
    }
}
