//! The pinning page cache: fixed-size pages over one backing file,
//! a configurable byte budget, CLOCK (second-chance) eviction, and
//! always-on counters.
//!
//! Concurrency model: every page access runs its caller's closure
//! **under the cache lock** with the frame marked pinned, so a frame
//! can never be evicted while its bytes are borrowed. Accesses are
//! short (decode/encode one slot); the store is read-mostly in the
//! evaluator's inner loop, mirroring the service's coarse-lock
//! discipline. Closures must not re-enter the same `PageStore`.
//!
//! Durability note: page files are **spill**, not a durability story —
//! crash safety comes from the WAL + checkpoint pair (`eq_store::wal`,
//! `eq_store::checkpoint`). The cache therefore writes pages back only
//! on eviction and on [`PageStore::flush_pages`], without fsync.

use crate::error::StoreError;
use eq_db::StoreIoStats;
use eq_ir::FastMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Geometry and budget of one [`PageStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageCacheConfig {
    /// Bytes per page. Defaults to 4 KiB.
    pub page_bytes: usize,
    /// Cache byte budget. The effective budget is at least one page
    /// (the cache must be able to hold the frame it is serving).
    pub budget_bytes: usize,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        PageCacheConfig {
            page_bytes: 4096,
            budget_bytes: 1 << 20,
        }
    }
}

struct FrameSlot {
    page: u64,
    buf: Vec<u8>,
    dirty: bool,
    referenced: bool,
    pinned: bool,
}

/// Pins a frame for the duration of a page access and clears the flag
/// on drop — including an unwind out of the caller's closure. Without
/// this, a panicking closure would leave the frame pinned forever
/// (`lock()` recovers from poisoning), and enough leaked pins would
/// wedge [`clock_victim`] in an endless sweep.
struct PinGuard<'a> {
    frame: &'a mut FrameSlot,
}

impl<'a> PinGuard<'a> {
    fn new(frame: &'a mut FrameSlot) -> PinGuard<'a> {
        frame.pinned = true;
        PinGuard { frame }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.frame.pinned = false;
    }
}

struct CacheInner {
    file: File,
    /// Bytes of the file that have actually been written (pages past
    /// this length fault in as zero-filled fresh pages).
    file_len: u64,
    frames: Vec<FrameSlot>,
    /// page number → frame index for resident pages.
    map: FastMap<u64, usize>,
    /// CLOCK hand.
    hand: usize,
}

/// A page cache over one backing file.
pub struct PageStore {
    page_bytes: usize,
    /// Maximum resident frames under the byte budget (≥ 1).
    budget_frames: usize,
    inner: Mutex<CacheInner>,
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    cache_hits: AtomicU64,
    evictions: AtomicU64,
    resident_bytes_peak: AtomicU64,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PageStore(page_bytes={}, budget_frames={})",
            self.page_bytes, self.budget_frames
        )
    }
}

impl PageStore {
    /// Creates (truncating any previous content) a page store over
    /// `path`.
    pub fn create(path: &Path, config: PageCacheConfig) -> Result<PageStore, StoreError> {
        if config.page_bytes == 0 {
            return Err(StoreError::Corrupt("page size must be non-zero"));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(PageStore {
            page_bytes: config.page_bytes,
            budget_frames: (config.budget_bytes / config.page_bytes).max(1),
            inner: Mutex::new(CacheInner {
                file,
                file_len: 0,
                frames: Vec::new(),
                map: FastMap::default(),
                hand: 0,
            }),
            page_reads: AtomicU64::new(0),
            page_writes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_bytes_peak: AtomicU64::new(0),
        })
    }

    /// Bytes per page.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Cumulative counters.
    pub fn stats(&self) -> StoreIoStats {
        StoreIoStats {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes_peak: self.resident_bytes_peak.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // Poisoning is recoverable: the only caller code that runs
        // under the lock is the access closure, and `PinGuard` resets
        // the pinned flag on unwind, so the cache state is consistent
        // between operations even after a panicking closure.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` over the page's bytes (read-only). The frame is pinned
    /// for the duration of the call.
    pub fn with_page<R>(&self, page: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R, StoreError> {
        let mut inner = self.lock();
        let idx = self.frame_for(&mut inner, page)?;
        let frame = &mut inner.frames[idx];
        frame.referenced = true;
        let pin = PinGuard::new(frame);
        let r = f(&pin.frame.buf);
        drop(pin);
        Ok(r)
    }

    /// Runs `f` over the page's bytes mutably, marking the frame dirty.
    /// The frame is pinned for the duration of the call.
    pub fn with_page_mut<R>(
        &self,
        page: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, StoreError> {
        let mut inner = self.lock();
        let idx = self.frame_for(&mut inner, page)?;
        let frame = &mut inner.frames[idx];
        frame.referenced = true;
        frame.dirty = true;
        let pin = PinGuard::new(frame);
        let r = f(&mut pin.frame.buf);
        drop(pin);
        Ok(r)
    }

    /// Writes every dirty resident page back to the file.
    pub fn flush_pages(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let CacheInner {
            file,
            frames,
            file_len,
            ..
        } = &mut *inner;
        for frame in frames.iter_mut().filter(|f| f.dirty) {
            write_page(file, file_len, self.page_bytes, frame.page, &frame.buf)?;
            self.page_writes.fetch_add(1, Ordering::Relaxed);
            frame.dirty = false;
        }
        Ok(())
    }

    /// Returns the index of a resident frame holding `page`, faulting
    /// it in (and evicting under the budget) if needed.
    fn frame_for(&self, inner: &mut CacheInner, page: u64) -> Result<usize, StoreError> {
        if let Some(&idx) = inner.map.get(&page) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        let idx = if inner.frames.len() < self.budget_frames {
            inner.frames.push(FrameSlot {
                page,
                buf: vec![0; self.page_bytes],
                dirty: false,
                referenced: false,
                pinned: false,
            });
            let resident = (inner.frames.len() * self.page_bytes) as u64;
            self.resident_bytes_peak
                .fetch_max(resident, Ordering::Relaxed);
            inner.frames.len() - 1
        } else {
            let victim = clock_victim(inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let CacheInner {
                file,
                file_len,
                frames,
                map,
                ..
            } = &mut *inner;
            let slot = &mut frames[victim];
            if slot.dirty {
                write_page(file, file_len, self.page_bytes, slot.page, &slot.buf)?;
                self.page_writes.fetch_add(1, Ordering::Relaxed);
                slot.dirty = false;
            }
            map.remove(&slot.page);
            slot.page = page;
            slot.referenced = false;
            victim
        };
        // Load the page's content: read it back if it has ever been
        // written out, zero-fill if it is fresh.
        let offset = page * self.page_bytes as u64;
        let CacheInner {
            file,
            file_len,
            frames,
            map,
            ..
        } = &mut *inner;
        let buf = &mut frames[idx].buf;
        if offset + self.page_bytes as u64 <= *file_len {
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)?;
            self.page_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.fill(0);
        }
        map.insert(page, idx);
        Ok(idx)
    }
}

/// CLOCK second-chance sweep: skip pinned frames, clear referenced
/// bits, return the first frame that is neither. Terminates because at
/// most one frame is pinned at a time (the access discipline) and a
/// full sweep clears every referenced bit.
fn clock_victim(inner: &mut CacheInner) -> usize {
    loop {
        let idx = inner.hand;
        inner.hand = (inner.hand + 1) % inner.frames.len();
        let frame = &mut inner.frames[idx];
        if frame.pinned {
            continue;
        }
        if frame.referenced {
            frame.referenced = false;
            continue;
        }
        return idx;
    }
}

fn write_page(
    file: &mut File,
    file_len: &mut u64,
    page_bytes: usize,
    page: u64,
    buf: &[u8],
) -> Result<(), StoreError> {
    let offset = page * page_bytes as u64;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)?;
    *file_len = (*file_len).max(offset + page_bytes as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget_pages: usize) -> (std::path::PathBuf, PageStore) {
        let dir = crate::scratch_dir("cache-test");
        let store = PageStore::create(
            &dir.join("t.pages"),
            PageCacheConfig {
                page_bytes: 64,
                budget_bytes: 64 * budget_pages,
            },
        )
        .unwrap();
        (dir, store)
    }

    #[test]
    fn pages_round_trip_through_eviction() {
        let (dir, store) = store(2);
        for p in 0..6u64 {
            store.with_page_mut(p, |buf| buf[0] = p as u8 + 1).unwrap();
        }
        for p in 0..6u64 {
            let v = store.with_page(p, |buf| buf[0]).unwrap();
            assert_eq!(v, p as u8 + 1, "page {p}");
        }
        let stats = store.stats();
        assert!(stats.evictions > 0);
        assert!(stats.page_reads > 0);
        assert!(stats.page_writes > 0);
        assert_eq!(stats.resident_bytes_peak, 128);
        crate::purge_dir(&dir);
    }

    #[test]
    fn resident_peak_bounded_by_budget() {
        let (dir, store) = store(3);
        for p in 0..32u64 {
            store.with_page_mut(p, |buf| buf[1] = 7).unwrap();
        }
        assert!(store.stats().resident_bytes_peak <= 3 * 64);
        crate::purge_dir(&dir);
    }

    #[test]
    fn hits_do_not_touch_the_file() {
        let (dir, store) = store(4);
        store.with_page_mut(0, |buf| buf[0] = 1).unwrap();
        let before = store.stats();
        for _ in 0..10 {
            store.with_page(0, |buf| buf[0]).unwrap();
        }
        let after = store.stats();
        assert_eq!(after.page_reads, before.page_reads);
        assert_eq!(after.cache_hits, before.cache_hits + 10);
        crate::purge_dir(&dir);
    }

    #[test]
    fn budget_smaller_than_a_page_still_serves() {
        let dir = crate::scratch_dir("cache-tiny");
        let store = PageStore::create(
            &dir.join("t.pages"),
            PageCacheConfig {
                page_bytes: 64,
                budget_bytes: 1,
            },
        )
        .unwrap();
        store.with_page_mut(0, |buf| buf[0] = 9).unwrap();
        store.with_page_mut(1, |buf| buf[0] = 8).unwrap();
        assert_eq!(store.with_page(0, |buf| buf[0]).unwrap(), 9);
        crate::purge_dir(&dir);
    }

    #[test]
    fn panicking_closure_does_not_leak_a_pin() {
        let (dir, store) = store(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.with_page_mut(0, |_| panic!("closure bug")).unwrap();
        }));
        assert!(caught.is_err());
        // With a one-frame budget, every further access must evict the
        // frame the panicking closure touched — if the pin leaked, the
        // CLOCK sweep would spin forever here.
        store.with_page_mut(1, |buf| buf[0] = 2).unwrap();
        store.with_page_mut(2, |buf| buf[0] = 3).unwrap();
        assert_eq!(store.with_page(1, |buf| buf[0]).unwrap(), 2);
        crate::purge_dir(&dir);
    }

    #[test]
    fn flush_pages_persists_without_eviction() {
        let (dir, store) = store(8);
        store.with_page_mut(2, |buf| buf[5] = 42).unwrap();
        store.flush_pages().unwrap();
        assert!(store.stats().page_writes >= 1);
        crate::purge_dir(&dir);
    }
}
