//! `eq_store`: the out-of-core storage layer — paged on-disk tables
//! behind the [`eq_db::RowStore`] trait, a write-ahead log, and
//! atomic checkpoints.
//!
//! The paper's prototype keeps every relation and its entanglement
//! state in one process image; ROADMAP frontier 4 (production-scale
//! durability, the EMBANKS disk-resident-index direction) needs two
//! things this crate provides:
//!
//! * **Paged tables** ([`PagedTable`]): rows spill to fixed-size
//!   slotted pages served by a pinning, budgeted page cache
//!   ([`PageStore`], CLOCK eviction) while the per-column hash index
//!   stays memory-resident. A `Database` drives the backend through
//!   [`eq_db::RowStore`], so the evaluator's candidate cursors work
//!   unchanged; cache counters surface through
//!   [`eq_db::StoreIoStats`] into `BatchReport::io`.
//! * **Durability primitives** ([`WriteAheadLog`], [`checkpoint`]):
//!   length-prefixed checksummed log records with torn-tail-tolerant
//!   replay, and temp-file+rename checkpoint images that truncate the
//!   log. `eq_core::durable` composes them into the crash-recoverable
//!   coordinator.
//!
//! This crate is the workspace's **I/O choke point**: the `eq_check`
//! rule `io-choke-point` forbids `std::fs` / `std::io::Write` in every
//! other crate's sources (except `eq_bench`'s JSON writer), so all
//! file traffic is auditable here. Scratch placement goes through
//! [`scratch_dir`] / [`purge_dir`] for the same reason.

#![forbid(unsafe_code)]

mod cache;
mod error;
mod table;

pub mod checkpoint;
pub mod wal;

pub use cache::{PageCacheConfig, PageStore};
pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use error::StoreError;
pub use table::PagedTable;
pub use wal::WriteAheadLog;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Creates (and returns) a fresh scratch directory under the system
/// temp dir, unique per process and call — the placement helper for
/// page files, WALs, and checkpoints in benches, workloads, and tests,
/// so no other crate needs `std::fs` for setup.
pub fn scratch_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eq_store-{label}-{pid}-{n}",
        pid = std::process::id()
    ));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Removes a scratch directory and everything in it. Best-effort:
/// cleanup failure (already gone, say) is not an error worth failing a
/// bench run over.
pub fn purge_dir(path: &Path) {
    let _ = std::fs::remove_dir_all(path);
}
