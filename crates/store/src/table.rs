//! The paged table backend: disk-resident records behind a page cache,
//! memory-resident per-column index — the EMBANKS split for this
//! paper's lineage (keep the index structure hot, spill the records).
//!
//! Row encoding is fixed-width: `arity × 9` bytes per slot, each cell a
//! tag byte (`0` = integer, `1` = string) followed by 8 little-endian
//! payload bytes. Strings are dictionary-encoded against a
//! memory-resident per-table dictionary of interned symbols, so the
//! page files never depend on the process-global interner's id
//! assignment order... they don't need to: page files are **ephemeral
//! spill** for the current process (durability is the WAL + checkpoint
//! pair, which persist strings by text).

use crate::cache::{PageCacheConfig, PageStore};
use crate::error::StoreError;
use eq_db::{RowStore, StoreIoStats, TableSchema, Tuple};
use eq_ir::{FastMap, Symbol, Value};
use std::fmt;
use std::path::Path;

/// Bytes per encoded cell: 1 tag + 8 payload.
const CELL_BYTES: usize = 9;

/// A relation whose rows live in fixed-size slotted pages on disk,
/// served through a budgeted [`PageStore`]. Implements [`RowStore`], so
/// a `Database` drives it exactly like the in-memory table.
///
/// Memory-resident state: the per-column hash indexes (value → row
/// ids), the liveness bitmap, and the string dictionary. Disk-resident
/// state: the row payloads.
pub struct PagedTable {
    schema: TableSchema,
    store: PageStore,
    rows: u32,
    live: Vec<bool>,
    tombstones: usize,
    /// `indexes[col][value]` = row ids having `value` in column `col`.
    indexes: Vec<FastMap<Value, Vec<u32>>>,
    /// Dictionary: local string id → symbol (and its inverse).
    symbols: Vec<Symbol>,
    symbol_ids: FastMap<Symbol, u64>,
    rows_per_page: usize,
    arity: usize,
}

impl PagedTable {
    /// Creates an empty paged table whose page file lives under `dir`
    /// (created if needed) as `<sanitized-relation>-<hash>.pages`,
    /// truncating any previous file for the same relation.
    pub fn create(
        dir: &Path,
        schema: TableSchema,
        config: PageCacheConfig,
    ) -> Result<PagedTable, StoreError> {
        let arity = schema.arity();
        let row_bytes = arity * CELL_BYTES;
        if row_bytes > config.page_bytes {
            return Err(StoreError::Corrupt("page too small for one row"));
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(page_file_name(schema.name.as_str()));
        let store = PageStore::create(&path, config)?;
        let rows_per_page = if arity == 0 {
            1
        } else {
            config.page_bytes / row_bytes
        };
        Ok(PagedTable {
            schema,
            store,
            rows: 0,
            live: Vec::new(),
            tombstones: 0,
            indexes: (0..arity).map(|_| FastMap::default()).collect(),
            symbols: Vec::new(),
            symbol_ids: FastMap::default(),
            rows_per_page,
            arity,
        })
    }

    fn slot(&self, id: u32) -> (u64, usize) {
        let page = (id as usize / self.rows_per_page) as u64;
        let offset = (id as usize % self.rows_per_page) * self.arity * CELL_BYTES;
        (page, offset)
    }

    fn local_symbol(&mut self, s: Symbol) -> u64 {
        if let Some(&id) = self.symbol_ids.get(&s) {
            return id;
        }
        let id = self.symbols.len() as u64;
        self.symbols.push(s);
        self.symbol_ids.insert(s, id);
        id
    }
}

/// Page-file names come from relation names: anything that is not a
/// plain identifier character becomes `_`, and an FNV-1a hash of the
/// raw name is appended so relations that sanitize to the same string
/// (`a.b` vs `a_b`) never share — and truncate — one backing file.
fn page_file_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!(
        "{}-{:08x}.pages",
        sanitized,
        crate::wal::fnv1a(name.as_bytes())
    )
}

fn le8(bytes: &[u8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[..8]);
    out
}

impl RowStore for PagedTable {
    fn schema(&self) -> &TableSchema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.rows as usize - self.tombstones
    }

    fn row_id_bound(&self) -> u32 {
        self.rows
    }

    fn is_live(&self, id: u32) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.arity);
        let id = self.rows;
        if self.arity > 0 {
            let mut encoded = vec![0u8; self.arity * CELL_BYTES];
            for (i, value) in row.iter().enumerate() {
                let cell = &mut encoded[i * CELL_BYTES..(i + 1) * CELL_BYTES];
                match value {
                    Value::Int(x) => {
                        cell[0] = 0;
                        cell[1..].copy_from_slice(&x.to_le_bytes());
                    }
                    Value::Str(s) => {
                        let local = self.local_symbol(*s);
                        cell[0] = 1;
                        cell[1..].copy_from_slice(&local.to_le_bytes());
                    }
                }
            }
            let (page, offset) = self.slot(id);
            self.store
                .with_page_mut(page, |buf| {
                    buf[offset..offset + encoded.len()].copy_from_slice(&encoded)
                })
                // Spill I/O failure mid-insert leaves no consistent
                // fallback; surface it loudly rather than serving a
                // silently truncated relation.
                .expect("paged table spill write failed");
        }
        for (col, value) in row.iter().enumerate() {
            self.indexes[col].entry(*value).or_default().push(id);
        }
        self.live.push(true);
        self.rows += 1;
    }

    fn read_row(&self, id: u32, out: &mut Tuple) -> bool {
        if !self.is_live(id) {
            return false;
        }
        out.clear();
        if self.arity == 0 {
            return true;
        }
        let (page, offset) = self.slot(id);
        let decoded = self.store.with_page(page, |buf| {
            for i in 0..self.arity {
                let cell = &buf[offset + i * CELL_BYTES..offset + (i + 1) * CELL_BYTES];
                let payload = le8(&cell[1..]);
                match cell[0] {
                    0 => out.push(Value::Int(i64::from_le_bytes(payload))),
                    _ => {
                        let local = u64::from_le_bytes(payload) as usize;
                        let Some(&symbol) = self.symbols.get(local) else {
                            return false;
                        };
                        out.push(Value::Str(symbol));
                    }
                }
            }
            true
        });
        matches!(decoded, Ok(true))
    }

    fn probe_into(&self, col: usize, value: Value, out: &mut Vec<u32>) {
        out.clear();
        if let Some(ids) = self.indexes[col].get(&value) {
            out.extend_from_slice(ids);
        }
    }

    fn probe_len(&self, col: usize, value: Value) -> usize {
        self.indexes[col].get(&value).map_or(0, Vec::len)
    }

    fn delete(&mut self, row: &[Value]) -> bool {
        if row.len() != self.arity || row.is_empty() {
            return false;
        }
        let mut ids = Vec::new();
        self.probe_into(0, row[0], &mut ids);
        let mut buf = Tuple::new();
        let Some(id) = ids
            .into_iter()
            .find(|&id| self.read_row(id, &mut buf) && buf == row)
        else {
            return false;
        };
        for (col, value) in row.iter().enumerate() {
            if let Some(list) = self.indexes[col].get_mut(value) {
                list.retain(|&x| x != id);
            }
        }
        self.live[id as usize] = false;
        self.tombstones += 1;
        true
    }

    fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    fn io_stats(&self) -> StoreIoStats {
        self.store.stats()
    }
}

impl fmt::Debug for PagedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PagedTable({:?}, {} rows, {:?})",
            self.schema, self.rows, self.store
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_paged(budget_pages: usize) -> (std::path::PathBuf, PagedTable) {
        let dir = crate::scratch_dir("paged-test");
        let table = PagedTable::create(
            &dir,
            TableSchema::new("T", &["a", "b"]),
            PageCacheConfig {
                page_bytes: 64, // 3 rows of arity 2 per page
                budget_bytes: 64 * budget_pages,
            },
        )
        .unwrap();
        (dir, table)
    }

    #[test]
    fn rows_survive_out_of_core_traffic() {
        let (dir, mut t) = small_paged(2);
        for i in 0..100i64 {
            t.push(vec![Value::int(i), Value::str(&format!("s{}", i % 5))]);
        }
        assert_eq!(t.len(), 100);
        let mut buf = Tuple::new();
        for i in 0..100u32 {
            assert!(t.read_row(i, &mut buf), "row {i}");
            assert_eq!(buf[0], Value::int(i as i64));
            assert_eq!(buf[1], Value::str(&format!("s{}", i % 5)));
        }
        let stats = t.io_stats();
        assert!(stats.evictions > 0, "traffic should overflow the budget");
        assert!(stats.page_reads > 0);
        assert!(stats.resident_bytes_peak <= 2 * 64);
        crate::purge_dir(&dir);
    }

    #[test]
    fn probe_and_delete_match_table_semantics() {
        let (dir, mut t) = small_paged(4);
        t.push(vec![Value::int(1), Value::str("x")]);
        t.push(vec![Value::int(2), Value::str("x")]);
        t.push(vec![Value::int(1), Value::str("y")]);
        let mut ids = Vec::new();
        t.probe_into(1, Value::str("x"), &mut ids);
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(t.probe_len(0, Value::int(1)), 2);
        assert!(t.contains(&[Value::int(1), Value::str("y")]));

        assert!(t.delete(&[Value::int(1), Value::str("x")]));
        assert!(!t.delete(&[Value::int(1), Value::str("x")]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.tombstone_count(), 1);
        assert!(!t.is_live(0));
        let mut buf = Tuple::new();
        assert!(!t.read_row(0, &mut buf));
        t.probe_into(0, Value::int(1), &mut ids);
        assert_eq!(ids, vec![2]);
        // Ids stay stable: a fresh push gets the next id, not id 0.
        t.push(vec![Value::int(9), Value::str("z")]);
        assert_eq!(t.row_id_bound(), 4);
        crate::purge_dir(&dir);
    }

    #[test]
    fn attaches_to_a_database() {
        use eq_db::Database;
        let dir = crate::scratch_dir("paged-attach");
        let mut t = PagedTable::create(
            &dir,
            TableSchema::new("Friends", &["a", "b"]),
            PageCacheConfig::default(),
        )
        .unwrap();
        t.push(vec![Value::str("ann"), Value::str("bob")]);
        let mut db = Database::new();
        db.attach_table(Box::new(t)).unwrap();
        assert!(db.contains("Friends", &[Value::str("ann"), Value::str("bob")]));
        db.insert("Friends", vec![Value::str("bob"), Value::str("cy")])
            .unwrap();
        assert_eq!(db.scan("Friends").unwrap().len(), 2);
        // Duplicate attach is rejected like create_table.
        let dup = PagedTable::create(
            &dir.join("dup"),
            TableSchema::new("Friends", &["a", "b"]),
            PageCacheConfig::default(),
        )
        .unwrap();
        assert!(db.attach_table(Box::new(dup)).is_err());
        crate::purge_dir(&dir);
    }

    #[test]
    fn name_collisions_after_sanitizing_get_distinct_page_files() {
        let dir = crate::scratch_dir("paged-collide");
        // Both names sanitize to `a_b`; the hash suffix must keep the
        // backing files apart (create truncates, so sharing one file
        // would wipe the first table's spilled rows). A one-frame
        // budget forces every row through the file.
        let config = PageCacheConfig {
            page_bytes: 64,
            budget_bytes: 64,
        };
        let mut dotted = PagedTable::create(&dir, TableSchema::new("a.b", &["x"]), config).unwrap();
        for i in 0..20i64 {
            dotted.push(vec![Value::int(i)]);
        }
        let mut under = PagedTable::create(&dir, TableSchema::new("a_b", &["x"]), config).unwrap();
        for i in 0..20i64 {
            under.push(vec![Value::int(-i)]);
        }
        let mut buf = Tuple::new();
        for i in 0..20u32 {
            assert!(dotted.read_row(i, &mut buf), "row {i} lost to truncation");
            assert_eq!(buf[0], Value::int(i as i64));
            assert!(under.read_row(i, &mut buf));
            assert_eq!(buf[0], Value::int(-(i as i64)));
        }
        crate::purge_dir(&dir);
    }

    #[test]
    fn rejects_rows_wider_than_a_page() {
        let dir = crate::scratch_dir("paged-wide");
        let wide = TableSchema::new("W", &["a", "b", "c", "d"]);
        let err = PagedTable::create(
            &dir,
            wide,
            PageCacheConfig {
                page_bytes: 16,
                budget_bytes: 64,
            },
        );
        assert!(err.is_err());
        crate::purge_dir(&dir);
    }
}
