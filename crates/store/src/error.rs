//! Error type for the storage layer.

use std::fmt;
use std::io;

/// Errors raised by the paged store, WAL, and checkpoint codecs.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A persisted structure failed validation (bad magic, checksum
    /// mismatch, impossible geometry). The message names the structure.
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store structure: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
