//! The write-ahead log: an append-only file of length-prefixed,
//! checksummed records.
//!
//! Record layout: `[u32 payload_len LE][u32 fnv1a(payload) LE][payload]`.
//! Replay walks records from the front and stops at the first record
//! that is short or fails its checksum — a torn tail from a crash
//! mid-append — then truncates the file back to the last intact record
//! so the next append starts clean. Everything before a torn tail is
//! trusted (checksums passed), which is exactly the prefix the writer
//! had acknowledged.
//!
//! # Durability model
//!
//! [`WriteAheadLog::append`] is write-through to the OS but does
//! **not** fsync: an acknowledged record survives a **process kill**
//! (the tested crash model), not necessarily an OS crash or power
//! loss. Callers that need machine-crash durability call
//! [`WriteAheadLog::sync_data`] at their acknowledgment points and pay
//! the fsync per batch; checkpoints are always fsync'd
//! (`crate::checkpoint`).

use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// 32-bit FNV-1a over a byte slice — the record checksum.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// An open write-ahead log.
pub struct WriteAheadLog {
    file: File,
    len: u64,
}

impl WriteAheadLog {
    /// Opens the log (creating it if absent), replays every intact
    /// record, truncates any torn tail, and returns the log positioned
    /// for appending plus the replayed payloads in append order.
    pub fn open(path: &Path) -> Result<(WriteAheadLog, Vec<Vec<u8>>), StoreError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= 8 {
            let len = u32::from_le_bytes([
                bytes[offset],
                bytes[offset + 1],
                bytes[offset + 2],
                bytes[offset + 3],
            ]) as usize;
            let sum = u32::from_le_bytes([
                bytes[offset + 4],
                bytes[offset + 5],
                bytes[offset + 6],
                bytes[offset + 7],
            ]);
            if bytes.len() - offset - 8 < len {
                break; // torn tail: record body never finished
            }
            let payload = &bytes[offset + 8..offset + 8 + len];
            if fnv1a(payload) != sum {
                break; // torn or corrupted tail
            }
            records.push(payload.to_vec());
            offset += 8 + len;
        }
        if (offset as u64) < bytes.len() as u64 {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((
            WriteAheadLog {
                file,
                len: offset as u64,
            },
            records,
        ))
    }

    /// Appends one record. The record is on the OS side of the write
    /// when this returns — process-kill durable, not power-loss
    /// durable (see the module docs; [`WriteAheadLog::sync_data`] is
    /// the opt-in for the latter).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a(payload).to_le_bytes());
        record.extend_from_slice(payload);
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        Ok(())
    }

    /// Flushes every appended record to stable storage (`fdatasync`).
    /// Opt-in: appends alone survive a process kill; call this at an
    /// acknowledgment point when records must also survive an OS crash
    /// or power loss.
    pub fn sync_data(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Empties the log — called right after a checkpoint supersedes
    /// every record in it.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }

    /// Bytes of intact records currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let dir = crate::scratch_dir("wal-test");
        let path = dir.join("log.wal");
        {
            let (mut wal, replayed) = WriteAheadLog::open(&path).unwrap();
            assert!(replayed.is_empty());
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap();
            wal.append(b"gamma-record").unwrap();
            wal.sync_data().unwrap();
        }
        let (_, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![b"alpha".to_vec(), vec![], b"gamma-record".to_vec()]
        );
        crate::purge_dir(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = crate::scratch_dir("wal-torn");
        let path = dir.join("log.wal");
        let intact_len;
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            wal.append(b"keep-me").unwrap();
            intact_len = wal.len_bytes();
            wal.append(b"torn-record").unwrap();
        }
        // Chop mid-way through the second record's payload.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 4).unwrap();
        drop(f);

        let (wal, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed, vec![b"keep-me".to_vec()]);
        assert_eq!(wal.len_bytes(), intact_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
        crate::purge_dir(&dir);
    }

    #[test]
    fn truncate_resets_for_post_checkpoint_appends() {
        let dir = crate::scratch_dir("wal-trunc");
        let path = dir.join("log.wal");
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            wal.append(b"old").unwrap();
            wal.truncate().unwrap();
            wal.append(b"new").unwrap();
        }
        let (_, replayed) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(replayed, vec![b"new".to_vec()]);
        crate::purge_dir(&dir);
    }
}
