//! Checkpoints: a whole-state image written atomically (temp file +
//! rename), superseding every WAL record written before it.
//!
//! File layout: `[8-byte magic][u32 fnv1a(payload) LE][u64 payload_len
//! LE][payload]`. The payload codec belongs to the caller (`eq_core`'s
//! durable coordinator encodes tables + pending entanglements + the
//! outcome log); this module only guarantees the image on disk is
//! either a complete previous checkpoint or a complete new one.

use crate::error::StoreError;
use crate::wal::fnv1a;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EQCHKP01";

/// Writes a checkpoint atomically: the payload goes to `<path>.tmp`
/// and is renamed over `path` only once fully written.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("ckpt-tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&fnv1a(payload).to_le_bytes())?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(payload)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // fsync the directory so the rename itself survives power loss —
    // without this the image is complete but may not be *reachable*
    // after a machine crash.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

/// Reads a checkpoint. `Ok(None)` when no checkpoint exists yet;
/// [`StoreError::Corrupt`] when a file is present but fails
/// validation (rename-atomicity makes that an outside-interference
/// signal, not a crash artifact).
pub fn read_checkpoint(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < 20 || &bytes[..8] != MAGIC {
        return Err(StoreError::Corrupt("checkpoint header"));
    }
    let sum = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]) as usize;
    if bytes.len() - 20 != len {
        return Err(StoreError::Corrupt("checkpoint length"));
    }
    let payload = &bytes[20..];
    if fnv1a(payload) != sum {
        return Err(StoreError::Corrupt("checkpoint checksum"));
    }
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_missing() {
        let dir = crate::scratch_dir("ckpt-test");
        let path = dir.join("state.ckpt");
        assert!(read_checkpoint(&path).unwrap().is_none());
        write_checkpoint(&path, b"hello durable world").unwrap();
        assert_eq!(
            read_checkpoint(&path).unwrap().as_deref(),
            Some(b"hello durable world".as_slice())
        );
        // Overwrite supersedes.
        write_checkpoint(&path, b"v2").unwrap();
        assert_eq!(
            read_checkpoint(&path).unwrap().as_deref(),
            Some(b"v2".as_slice())
        );
        crate::purge_dir(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = crate::scratch_dir("ckpt-corrupt");
        let path = dir.join("state.ckpt");
        write_checkpoint(&path, b"payload-bytes").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::Corrupt("checkpoint checksum"))
        ));
        crate::purge_dir(&dir);
    }
}
