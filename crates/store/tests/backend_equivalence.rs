//! Property test: a `Database` whose tables live on the paged on-disk
//! backend is indistinguishable from one on the in-memory backend —
//! the same insert/delete history yields the same rows, and random
//! conjunctive queries (with comparison constraints and limits) come
//! back answer-for-answer equal. The page cache runs under a two-frame
//! budget so most instances actually fault and evict.

use eq_db::{Database, TableSchema, Valuation};
use eq_ir::{Atom, CmpOp, Constraint, Term, Value, Var};
use eq_store::{PageCacheConfig, PagedTable};
use proptest::prelude::*;
use std::path::PathBuf;

const RELS: [(&str, usize); 3] = [("P", 2), ("Q", 2), ("S", 1)];
const NUM_VARS: u32 = 4;
const DOMAIN: i64 = 4;
const NAMES: [&str; 3] = ["ada", "bob", "cyd"];
const PAGE_BYTES: usize = 64;
const BUDGET_BYTES: usize = 128;

#[derive(Clone, Debug)]
struct Instance {
    /// Rows per relation, parallel to `RELS`.
    rows: Vec<Vec<Vec<Value>>>,
    /// `(relation, index)` delete requests; the index picks one of the
    /// relation's generated rows (modulo its length).
    deletes: Vec<(usize, usize)>,
    atoms: Vec<Atom>,
    constraints: Vec<Constraint>,
    /// `5` means unlimited.
    limit: usize,
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..DOMAIN).prop_map(Value::int),
        (0..NAMES.len()).prop_map(|i| Value::str(NAMES[i])),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..NUM_VARS).prop_map(|i| Term::var(Var(i))),
        arb_value().prop_map(Term::Const),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0..RELS.len()).prop_flat_map(|r| {
        proptest::collection::vec(arb_term(), RELS[r].1)
            .prop_map(move |terms| Atom::new(RELS[r].0, terms))
    })
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    const OPS: [CmpOp; 5] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne];
    (arb_term(), 0..OPS.len(), arb_term())
        .prop_map(|(lhs, op, rhs)| Constraint::new(lhs, OPS[op], rhs))
}

fn arb_rows(arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), arity), 0..24)
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        (
            arb_rows(RELS[0].1),
            arb_rows(RELS[1].1),
            arb_rows(RELS[2].1),
        ),
        proptest::collection::vec((0..RELS.len(), 0..24usize), 0..6),
        proptest::collection::vec(arb_atom(), 1..5),
        proptest::collection::vec(arb_constraint(), 0..3),
        0..6usize,
    )
        .prop_map(|(rows, deletes, atoms, constraints, limit)| Instance {
            rows: vec![rows.0, rows.1, rows.2],
            deletes,
            atoms,
            constraints,
            limit,
        })
}

/// Builds the same database twice — in-memory tables and paged tables
/// under a deliberately tiny cache budget — applying an identical
/// insert-then-delete history to both.
fn build_pair(inst: &Instance) -> (Database, Database, PathBuf) {
    let dir = eq_store::scratch_dir("backend-equiv");
    let mut mem = Database::new();
    let mut paged = Database::new();
    for (i, &(name, arity)) in RELS.iter().enumerate() {
        let cols: Vec<String> = (0..arity).map(|c| format!("c{c}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        mem.create_table(name, &col_refs).unwrap();
        let table = PagedTable::create(
            &dir,
            TableSchema::new(name, &col_refs),
            PageCacheConfig {
                page_bytes: PAGE_BYTES,
                budget_bytes: BUDGET_BYTES,
            },
        )
        .unwrap();
        paged.attach_table(Box::new(table)).unwrap();
        for row in &inst.rows[i] {
            mem.insert(name, row.clone()).unwrap();
            paged.insert(name, row.clone()).unwrap();
        }
    }
    for &(r, idx) in &inst.deletes {
        let rows = &inst.rows[r];
        if rows.is_empty() {
            continue;
        }
        let row = &rows[idx % rows.len()];
        let hit_mem = mem.delete(RELS[r].0, row).unwrap();
        let hit_paged = paged.delete(RELS[r].0, row).unwrap();
        assert_eq!(hit_mem, hit_paged, "delete must hit or miss identically");
    }
    (mem, paged, dir)
}

fn normalize(vals: Vec<Valuation>) -> Vec<Vec<(Var, Value)>> {
    let mut out: Vec<Vec<(Var, Value)>> = vals
        .into_iter()
        .map(|m| {
            let mut v: Vec<(Var, Value)> = m.into_iter().collect();
            v.sort_unstable_by_key(|(var, _)| *var);
            v
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn paged_backend_matches_in_memory(inst in arb_instance()) {
        let (mem, paged, dir) = build_pair(&inst);

        // Same visible rows after the same history.
        for &(name, _) in &RELS {
            let mut a = mem.scan(name).unwrap();
            let mut b = paged.scan(name).unwrap();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "scan of {} diverged", name);
        }

        // Same full answer set for the conjunction.
        let full_mem = mem
            .evaluate_filtered(&inst.atoms, &inst.constraints, usize::MAX)
            .unwrap();
        let full_paged = paged
            .evaluate_filtered(&inst.atoms, &inst.constraints, usize::MAX)
            .unwrap();
        let full_norm = normalize(full_mem);
        prop_assert_eq!(&full_norm, &normalize(full_paged));

        // Limited evaluation: identical result count, and every limited
        // answer is a valid full answer on either backend.
        let limit = if inst.limit == 5 { usize::MAX } else { inst.limit };
        let lim_mem = mem
            .evaluate_filtered(&inst.atoms, &inst.constraints, limit)
            .unwrap();
        let lim_paged = paged
            .evaluate_filtered(&inst.atoms, &inst.constraints, limit)
            .unwrap();
        prop_assert_eq!(lim_mem.len(), full_norm.len().min(limit));
        prop_assert_eq!(lim_paged.len(), full_norm.len().min(limit));
        for v in normalize(lim_mem).into_iter().chain(normalize(lim_paged)) {
            prop_assert!(full_norm.contains(&v));
        }

        // The paged run stayed inside its byte budget.
        let io = paged.io_stats();
        prop_assert!(
            io.resident_bytes_peak as usize <= RELS.len() * BUDGET_BYTES,
            "resident peak {} over {} budgets of {}",
            io.resident_bytes_peak,
            RELS.len(),
            BUDGET_BYTES
        );

        eq_store::purge_dir(&dir);
    }
}
