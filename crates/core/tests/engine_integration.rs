//! End-to-end engine integration: a two-way coordination scenario — two
//! queries entangled on the same flight (travel) or the same gift
//! choice (party planning, cf. `examples/party_planning.rs`) — driven
//! through both `Incremental` and `SetAtATime` modes, asserting that
//! the modes agree with each other and with the brute-force oracle of
//! §2.3, and that the sharded parallel flush is indistinguishable from
//! the sequential one.

use eq_core::engine::QueryOutcome;
use eq_core::{bruteforce, CoordinationEngine, EngineConfig, EngineMode};
use eq_db::Database;
use eq_ir::{EntangledQuery, Value};
use eq_sql::parse_ir_query;

fn q(text: &str) -> EntangledQuery {
    parse_ir_query(text).unwrap()
}

/// Gifts(gift, price) — Elaine and George coordinate on one gift for
/// Jerry: Elaine only considers gifts the Bargains table also lists,
/// George anything from the registry.
fn gift_db() -> Database {
    let mut db = Database::new();
    db.create_table("Registry", &["gift", "price"]).unwrap();
    db.create_table("Bargains", &["gift"]).unwrap();
    for (g, p) in [("puzzle", 30), ("fruit", 10), ("label_maker", 25)] {
        db.insert("Registry", vec![Value::str(g), Value::int(p)])
            .unwrap();
    }
    for g in ["fruit", "label_maker"] {
        db.insert("Bargains", vec![Value::str(g)]).unwrap();
    }
    db
}

fn flight_db() -> Database {
    let mut db = Database::new();
    db.create_table("F", &["fno", "dest"]).unwrap();
    db.create_table("A", &["fno", "airline"]).unwrap();
    for (fno, dest) in [(122, "Paris"), (123, "Paris"), (136, "Rome")] {
        db.insert("F", vec![Value::int(fno), Value::str(dest)])
            .unwrap();
    }
    for (fno, al) in [(122, "United"), (123, "United"), (136, "Alitalia")] {
        db.insert("A", vec![Value::int(fno), Value::str(al)])
            .unwrap();
    }
    db
}

/// Drives the pair through an engine in the given mode; returns the
/// terminal outcome of each query (None = still pending).
fn drive(db: Database, mode: EngineMode, queries: &[EntangledQuery]) -> Vec<Option<QueryOutcome>> {
    let mut engine = CoordinationEngine::new(
        db,
        EngineConfig {
            mode,
            ..Default::default()
        },
    );
    let handles: Vec<_> = queries
        .iter()
        .map(|query| engine.submit(query.clone()).unwrap())
        .collect();
    if matches!(mode, EngineMode::SetAtATime { .. }) {
        engine.flush();
    }
    handles
        .into_iter()
        .map(|h| h.outcome.try_recv().ok())
        .collect()
}

fn answered_tuple(outcome: &Option<QueryOutcome>) -> &[Value] {
    match outcome {
        Some(QueryOutcome::Answered(a)) => &a.tuples[0],
        other => panic!("expected an answer, got {other:?}"),
    }
}

#[test]
fn gift_choice_coordinates_in_both_modes_and_matches_bruteforce() {
    // Elaine gives Jerry gift g only if George gives the same g, and
    // she only buys bargains; George reciprocates from the registry.
    let elaine = q("{R(George, g)} R(Elaine, g) <- Registry(g, p), Bargains(g)");
    let george = q("{R(Elaine, h)} R(George, h) <- Registry(h, p2)");
    let queries = [elaine, george];

    let incremental = drive(gift_db(), EngineMode::Incremental, &queries);
    let batched = drive(
        gift_db(),
        EngineMode::SetAtATime { batch_size: 0 },
        &queries,
    );

    // Both coordinated, on the same gift, in both modes.
    for outcomes in [&incremental, &batched] {
        let e = answered_tuple(&outcomes[0]);
        let g = answered_tuple(&outcomes[1]);
        assert_eq!(e[1], g[1], "Elaine and George must pick the same gift");
        assert!(
            e[1] == Value::str("fruit") || e[1] == Value::str("label_maker"),
            "the shared gift must be a bargain, got {:?}",
            e[1]
        );
    }
    assert_eq!(
        answered_tuple(&incremental[0])[1],
        answered_tuple(&batched[0])[1],
        "modes must agree on the chosen gift"
    );

    // The brute-force generic-semantics oracle also finds a total
    // coordinating set.
    let gen = eq_ir::VarGen::new();
    let renamed: Vec<EntangledQuery> = queries.iter().map(|x| x.rename_apart(&gen)).collect();
    let solution = bruteforce::find_coordinating_set(&renamed, &gift_db(), true).unwrap();
    assert!(solution.is_some(), "oracle must coordinate the gift pair");
}

#[test]
fn flight_choice_coordinates_and_oracle_agrees_on_failure_too() {
    // Kramer/Jerry coordinate on a United flight to Paris — succeeds.
    let ok = [
        q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
        q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)"),
    ];
    for mode in [
        EngineMode::Incremental,
        EngineMode::SetAtATime { batch_size: 0 },
    ] {
        let outcomes = drive(flight_db(), mode, &ok);
        let k = answered_tuple(&outcomes[0]);
        let j = answered_tuple(&outcomes[1]);
        assert_eq!(k[1], j[1], "same flight");
        assert!(j[1] == Value::int(122) || j[1] == Value::int(123));
    }
    let gen = eq_ir::VarGen::new();
    let renamed: Vec<EntangledQuery> = ok.iter().map(|x| x.rename_apart(&gen)).collect();
    assert!(
        bruteforce::find_coordinating_set(&renamed, &flight_db(), true)
            .unwrap()
            .is_some()
    );

    // Newman wants Rome on United — no such flight: both fail, and the
    // oracle agrees there is no total coordinating set.
    let bad = [
        q("{R(Newman, x)} R(Kramer, x) <- F(x, Rome), A(x, United)"),
        q("{R(Kramer, y)} R(Newman, y) <- F(y, Rome), A(y, United)"),
    ];
    for mode in [
        EngineMode::Incremental,
        EngineMode::SetAtATime { batch_size: 0 },
    ] {
        let outcomes = drive(flight_db(), mode, &bad);
        for o in &outcomes {
            assert!(
                matches!(o, Some(QueryOutcome::Failed(_))),
                "expected failure, got {o:?}"
            );
        }
    }
    let renamed: Vec<EntangledQuery> = bad.iter().map(|x| x.rename_apart(&gen)).collect();
    assert!(
        bruteforce::find_coordinating_set(&renamed, &flight_db(), true)
            .unwrap()
            .is_none()
    );
}

#[test]
fn sharded_flush_is_indistinguishable_from_sequential() {
    // 30 independent two-way components; flush with 1 worker, 4
    // workers, and one-per-hardware-thread must deliver identical
    // reports and identical per-query outcomes.
    let run = |threads: usize| {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                flush_threads: threads,
                ..Default::default()
            },
        );
        let mut handles = Vec::new();
        for i in 0..30 {
            let (a, b) = (format!("P{i}a"), format!("P{i}b"));
            handles.push(
                engine
                    .submit(q(&format!(
                        "{{R({b}, x{i})}} R({a}, x{i}) <- F(x{i}, Paris)"
                    )))
                    .unwrap(),
            );
            handles.push(
                engine
                    .submit(q(&format!(
                        "{{R({a}, y{i})}} R({b}, y{i}) <- F(y{i}, Paris)"
                    )))
                    .unwrap(),
            );
        }
        let report = engine.flush();
        let outcomes: Vec<Option<QueryOutcome>> = handles
            .into_iter()
            .map(|h| h.outcome.try_recv().ok())
            .collect();
        (report, outcomes)
    };
    let (seq_report, seq_outcomes) = run(1);
    assert_eq!(seq_report.answered, 60);
    for threads in [4, 0] {
        let (par_report, par_outcomes) = run(threads);
        assert_eq!(seq_report, par_report, "threads={threads}");
        assert_eq!(seq_outcomes, par_outcomes, "threads={threads}");
    }
}
