//! Engine edge cases beyond the happy paths covered in `engine.rs`'s
//! unit tests: empty flushes, status transitions, re-submission,
//! multi-edge matching, and interaction of staleness with batching.

use eq_core::engine::{FailReason, NoSolutionPolicy, QueryOutcome};
use eq_core::{CoordinationEngine, EngineConfig, EngineMode, QueryStatus};
use eq_db::Database;
use eq_ir::{EntangledQuery, Value};
use eq_sql::parse_ir_query;
use std::time::Duration;

fn q(text: &str) -> EntangledQuery {
    parse_ir_query(text).unwrap()
}

fn db() -> Database {
    let mut db = Database::new();
    db.create_table("F", &["fno", "dest"]).unwrap();
    db.insert("F", vec![Value::int(122), Value::str("Paris")])
        .unwrap();
    db.insert("F", vec![Value::int(136), Value::str("Rome")])
        .unwrap();
    db
}

#[test]
fn empty_flush_reports_zeroes() {
    let mut engine = CoordinationEngine::new(
        db(),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            ..Default::default()
        },
    );
    let report = engine.flush();
    assert_eq!(report.answered, 0);
    assert_eq!(report.failed, 0);
    assert_eq!(report.pending, 0);
    assert_eq!(report.components, 0);
}

#[test]
fn parallel_flush_on_empty_pool_is_fine() {
    let mut engine = CoordinationEngine::new(
        db(),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            flush_threads: 8,
            ..Default::default()
        },
    );
    let report = engine.flush();
    assert_eq!(report.components, 0);
}

#[test]
fn status_transitions_pending_to_answered() {
    let mut engine = CoordinationEngine::new(db(), EngineConfig::default());
    let h1 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
        .unwrap();
    assert_eq!(engine.status(h1.id), Some(&QueryStatus::Pending));
    let h2 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
        .unwrap();
    assert_eq!(engine.status(h1.id), Some(&QueryStatus::Answered));
    assert_eq!(engine.status(h2.id), Some(&QueryStatus::Answered));
    // Unknown ids report nothing.
    assert_eq!(engine.status(eq_ir::QueryId(9999)), None);
}

#[test]
fn same_query_text_can_be_resubmitted_after_failure() {
    let mut engine = CoordinationEngine::new(db(), EngineConfig::default());
    // Athens has no flights: the pair fails with NoSolution.
    let h1 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
        .unwrap();
    let _h2 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
        .unwrap();
    assert!(matches!(
        h1.outcome.try_recv().unwrap(),
        QueryOutcome::Failed(_)
    ));
    // A flight appears; resubmission coordinates.
    engine
        .db()
        .write()
        .insert("F", vec![Value::int(200), Value::str("Athens")])
        .unwrap();
    let h3 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
        .unwrap();
    let h4 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
        .unwrap();
    assert!(matches!(
        h3.outcome.try_recv().unwrap(),
        QueryOutcome::Answered(_)
    ));
    assert!(matches!(
        h4.outcome.try_recv().unwrap(),
        QueryOutcome::Answered(_)
    ));
}

#[test]
fn multi_edge_pair_coordinates() {
    // Two queries connected by *two* head/postcondition pairs each way:
    // both travellers mirror two answer relations.
    let mut engine = CoordinationEngine::new(db(), EngineConfig::default());
    let h1 = engine
        .submit(q(
            "{R(Jerry, x) & S(Jerry, x)} R(Kramer, x) & S(Kramer, x) <- F(x, Paris)",
        ))
        .unwrap();
    let h2 = engine
        .submit(q(
            "{R(Kramer, y) & S(Kramer, y)} R(Jerry, y) & S(Jerry, y) <- F(y, Paris)",
        ))
        .unwrap();
    let (QueryOutcome::Answered(a1), QueryOutcome::Answered(a2)) = (
        h1.outcome.try_recv().unwrap(),
        h2.outcome.try_recv().unwrap(),
    ) else {
        panic!("expected both answered");
    };
    // Each answer carries two head tuples (R and S), on the same flight.
    assert_eq!(a1.tuples.len(), 2);
    assert_eq!(a2.tuples.len(), 2);
    assert_eq!(a1.tuples[0][1], a2.tuples[0][1]);
    assert_eq!(a1.tuples[1][1], a1.tuples[0][1]);
}

#[test]
fn staleness_zero_expires_everything_on_next_submit() {
    let mut engine = CoordinationEngine::new(
        db(),
        EngineConfig {
            staleness: Some(Duration::from_millis(0)),
            ..Default::default()
        },
    );
    let h1 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
        .unwrap();
    // The next submission sweeps the (instantly stale) first query, so
    // the pair never forms.
    let h2 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
        .unwrap();
    assert_eq!(
        h1.outcome.try_recv().unwrap(),
        QueryOutcome::Failed(FailReason::Stale)
    );
    // The second query is alone now (it will expire on the next sweep).
    assert!(h2.outcome.try_recv().is_err());
    assert_eq!(engine.pending_count(), 1);
}

#[test]
fn keep_pending_policy_in_incremental_mode() {
    let mut engine = CoordinationEngine::new(
        db(),
        EngineConfig {
            on_no_solution: NoSolutionPolicy::KeepPending,
            ..Default::default()
        },
    );
    let h1 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
        .unwrap();
    let h2 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
        .unwrap();
    // Component closed but no DB solution: both remain pending.
    assert!(h1.outcome.try_recv().is_err());
    assert!(h2.outcome.try_recv().is_err());
    assert_eq!(engine.pending_count(), 2);
    // Database gains the flight; a flush retries the still-pending
    // component.
    engine
        .db()
        .write()
        .insert("F", vec![Value::int(300), Value::str("Athens")])
        .unwrap();
    let report = engine.flush();
    assert_eq!(report.answered, 2);
}

#[test]
fn handles_survive_engine_drop() {
    let handle = {
        let mut engine = CoordinationEngine::new(db(), EngineConfig::default());
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap()
        // Engine dropped here with the query still pending.
    };
    // The channel reports disconnection rather than blocking.
    assert!(handle.outcome.try_recv().is_err());
}

#[test]
fn choose_k_queries_accepted_by_engine_with_one_solution() {
    // The engine's core path answers with one coordinated solution even
    // for CHOOSE k queries (multi-answer goes through ext); the query
    // must still round-trip fine.
    let mut engine = CoordinationEngine::new(db(), EngineConfig::default());
    let h1 = engine
        .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris) choose 2"))
        .unwrap();
    let h2 = engine
        .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris) choose 2"))
        .unwrap();
    assert!(matches!(
        h1.outcome.try_recv().unwrap(),
        QueryOutcome::Answered(_)
    ));
    assert!(matches!(
        h2.outcome.try_recv().unwrap(),
        QueryOutcome::Answered(_)
    ));
}
