//! Property-based tests of the coordination pipeline's invariants on
//! randomized query sets:
//!
//! 1. safety enforcement is idempotent and leaves no violations;
//! 2. UCS violations are exactly the cross-SCC edges;
//! 3. matching survivors have every postcondition satisfied by a
//!    surviving head (syntactic soundness of Algorithm 1);
//! 4. a coordination round partitions the input: every query id appears
//!    exactly once across answers and rejections;
//! 5. produced answers are mutually satisfying (every grounded
//!    postcondition appears among the grounded heads).

use eq_core::graph::MatchGraph;
use eq_core::{coordinate, matching, safety, ucs};
use eq_db::Database;
use eq_ir::{Atom, EntangledQuery, QueryId, Term, Value, Var, VarGen};
use proptest::prelude::*;

const USERS: [&str; 4] = ["A", "B", "C", "D"];
const DESTS: [&str; 2] = ["P", "Q"];

/// A random workload atom over the ANSWER relation `R(user, dest)`:
/// constants drawn from small pools, variables allowed in either slot.
fn arb_answer_atom() -> impl Strategy<Value = (Option<usize>, Option<usize>)> {
    // None = variable; Some(i) = constant index.
    (
        proptest::option::of(0..USERS.len()),
        proptest::option::of(0..DESTS.len()),
    )
}

#[derive(Clone, Debug)]
struct RawQuery {
    head: (Option<usize>, Option<usize>),
    pcs: Vec<(Option<usize>, Option<usize>)>,
}

fn arb_query() -> impl Strategy<Value = RawQuery> {
    (
        arb_answer_atom(),
        proptest::collection::vec(arb_answer_atom(), 0..3),
    )
        .prop_map(|(head, pcs)| RawQuery { head, pcs })
}

/// Materializes a raw query, inventing one body atom `T(v...)` binding
/// all variables so range restriction always holds.
fn build(raw: &RawQuery, id: u64) -> EntangledQuery {
    let mut next_var = 0u32;
    let mut vars_used = Vec::new();
    let mut term = |slot: &Option<usize>, pool: &[&str]| -> Term {
        match slot {
            Some(i) => Term::str(pool[*i]),
            None => {
                let v = Var(next_var);
                next_var += 1;
                vars_used.push(v);
                Term::Var(v)
            }
        }
    };
    let head = Atom::new(
        "R",
        vec![term(&raw.head.0, &USERS), term(&raw.head.1, &DESTS)],
    );
    let pcs: Vec<Atom> = raw
        .pcs
        .iter()
        .map(|pc| Atom::new("R", vec![term(&pc.0, &USERS), term(&pc.1, &DESTS)]))
        .collect();
    let body = if vars_used.is_empty() {
        vec![]
    } else {
        vec![Atom::new(
            "T",
            vars_used.iter().map(|&v| Term::Var(v)).collect(),
        )]
    };
    EntangledQuery::new(vec![head], pcs, body).with_id(QueryId(id))
}

/// Database with a `T` table of every arity 1..=6 would be needed;
/// instead `T` rows are generated over the union pool with small arity
/// coverage. The evaluator checks arity, so we create one table per
/// arity: T is referenced with the query's variable count.
fn build_db(max_arity: usize) -> Database {
    let mut db = Database::new();
    // One relation per arity is cleaner for the catalog; but queries all
    // call it "T", so size T at the *maximum* arity and pad bodies? No —
    // instead create T with every arity used is impossible under one
    // name. We therefore bound variables per query to 4 and give T
    // arity-specific names in `normalize`.
    let _ = max_arity;
    let pool: Vec<Value> = USERS
        .iter()
        .chain(DESTS.iter())
        .map(|s| Value::str(s))
        .collect();
    for arity in 1..=4usize {
        let cols: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        db.create_table(&format!("T{arity}"), &col_refs).unwrap();
        // Insert the full cross product for arity ≤ 2, a diagonal slice
        // above that (keeps the DB small but satisfiable).
        match arity {
            1 => {
                for v in &pool {
                    db.insert("T1", vec![*v]).unwrap();
                }
            }
            2 => {
                for a in &pool {
                    for b in &pool {
                        db.insert("T2", vec![*a, *b]).unwrap();
                    }
                }
            }
            n => {
                for a in &pool {
                    for b in &pool {
                        let mut row = vec![*a, *b];
                        row.extend(std::iter::repeat_n(*a, n - 2));
                        db.insert(&format!("T{n}"), row).unwrap();
                    }
                }
            }
        }
    }
    db
}

/// Renames `T` bodies to the arity-specific table names.
fn normalize(mut q: EntangledQuery) -> Option<EntangledQuery> {
    for atom in &mut q.body {
        let arity = atom.arity();
        if arity > 4 {
            return None; // too many variables; skip this case
        }
        atom.relation = eq_ir::Symbol::new(&format!("T{arity}"));
    }
    Some(q)
}

fn materialize(raws: &[RawQuery]) -> Vec<EntangledQuery> {
    raws.iter()
        .enumerate()
        .filter_map(|(i, r)| normalize(build(r, i as u64)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn safety_enforcement_is_idempotent_and_complete(
        raws in proptest::collection::vec(arb_query(), 1..8)
    ) {
        let queries = materialize(&raws);
        let gen = VarGen::new();
        let renamed: Vec<EntangledQuery> =
            queries.iter().map(|q| q.rename_apart(&gen)).collect();
        let graph = MatchGraph::build(renamed);
        let mut alive = vec![true; graph.len()];
        let removed1 = safety::enforce(&graph, &mut alive);
        // After enforcement: no live query has an ambiguous pc.
        for slot in 0..graph.len() as u32 {
            if !alive[slot as usize] {
                continue;
            }
            let pc_count = graph.queries()[slot as usize].pc_count();
            let mut per_pc = vec![0usize; pc_count];
            for &eid in graph.in_edges(slot) {
                let e = &graph.edges()[eid as usize];
                if alive[e.from as usize] {
                    per_pc[e.pc_idx as usize] += 1;
                }
            }
            prop_assert!(per_pc.iter().all(|&c| c <= 1));
        }
        // Idempotent.
        let removed2 = safety::enforce(&graph, &mut alive);
        prop_assert!(removed2.is_empty(), "second pass removed {removed2:?}");
        let _ = removed1;
    }

    #[test]
    fn ucs_violations_are_exactly_cross_scc_edges(
        raws in proptest::collection::vec(arb_query(), 1..8)
    ) {
        let queries = materialize(&raws);
        let gen = VarGen::new();
        let renamed: Vec<EntangledQuery> =
            queries.iter().map(|q| q.rename_apart(&gen)).collect();
        let graph = MatchGraph::build(renamed);
        let alive = vec![true; graph.len()];
        let scc = ucs::scc_ids(&graph, &alive);
        let violations = ucs::violations(&graph, &alive);
        let mut expected: Vec<(u32, u32)> = graph
            .edges()
            .iter()
            .filter(|e| scc[e.from as usize] != scc[e.to as usize])
            .map(|e| (e.from, e.to))
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let got: Vec<(u32, u32)> = violations
            .iter()
            .map(|v| (v.from_slot, v.to_slot))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn matching_survivors_are_internally_satisfied(
        raws in proptest::collection::vec(arb_query(), 1..8)
    ) {
        let queries = materialize(&raws);
        let gen = VarGen::new();
        let renamed: Vec<EntangledQuery> =
            queries.iter().map(|q| q.rename_apart(&gen)).collect();
        let graph = MatchGraph::build(renamed);
        let mut alive = vec![true; graph.len()];
        safety::enforce(&graph, &mut alive);
        for component in graph.components_live(&alive) {
            let m = matching::match_component(&graph, &component);
            let surviving: std::collections::HashSet<u32> =
                m.survivors.iter().copied().collect();
            for &s in &m.survivors {
                let pc_count = graph.queries()[s as usize].pc_count();
                let mut satisfied = vec![false; pc_count];
                for &eid in graph.in_edges(s) {
                    let e = &graph.edges()[eid as usize];
                    if surviving.contains(&e.from) {
                        satisfied[e.pc_idx as usize] = true;
                    }
                }
                prop_assert!(
                    satisfied.iter().all(|&x| x),
                    "survivor {s} has an unsatisfied postcondition"
                );
            }
            // Survivors and removed partition the component.
            let mut both: Vec<u32> = m.survivors.iter().chain(&m.removed).copied().collect();
            both.sort_unstable();
            let mut comp = component.clone();
            comp.sort_unstable();
            prop_assert_eq!(both, comp);
        }
    }

    #[test]
    fn coordination_partitions_the_input(
        raws in proptest::collection::vec(arb_query(), 1..8)
    ) {
        let queries = materialize(&raws);
        prop_assume!(!queries.is_empty());
        let db = build_db(4);
        let outcome = coordinate(&queries, &db).unwrap();
        let mut seen: Vec<u64> = outcome
            .answers
            .keys()
            .map(|q| q.0)
            .chain(outcome.rejected.iter().map(|(q, _)| q.0))
            .collect();
        seen.sort_unstable();
        let mut expected: Vec<u64> = queries.iter().map(|q| q.id.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected, "answers/rejections must partition the input");
    }

    #[test]
    fn produced_answers_are_mutually_satisfying(
        raws in proptest::collection::vec(arb_query(), 1..8)
    ) {
        let queries = materialize(&raws);
        prop_assume!(!queries.is_empty());
        let db = build_db(4);
        let outcome = coordinate(&queries, &db).unwrap();
        if outcome.answers.is_empty() {
            return Ok(());
        }
        let heads: std::collections::HashSet<(eq_ir::Symbol, Vec<Value>)> = outcome
            .answers
            .values()
            .flat_map(|a| {
                a.relations
                    .iter()
                    .zip(&a.tuples)
                    .map(|(r, t)| (*r, t.clone()))
            })
            .collect();
        for (qid, answer) in &outcome.answers {
            let query = queries.iter().find(|q| q.id == *qid).unwrap();
            let gs = eq_core::bruteforce::groundings(query, &db).unwrap();
            let ok = gs.iter().any(|g| {
                g.head
                    .iter()
                    .zip(answer.relations.iter().zip(&answer.tuples))
                    .all(|((hr, ht), (ar, at))| hr == ar && ht == at)
                    && g.postconditions
                        .iter()
                        .all(|(r, t)| heads.contains(&(*r, t.clone())))
            });
            prop_assert!(ok, "answer for {qid} is not a coordinating choice");
        }
    }
}
