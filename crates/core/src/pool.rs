//! The one scoped worker-pool primitive every parallel phase in this
//! crate uses: claim indices from a shared atomic cursor, run a
//! read-only job per index, return results keyed by index.
//!
//! Four call sites share it — the cross-component flush shard
//! (`engine::sharded_process`), batched admission probing
//! (`engine::probe_batch`), intra-component work-unit evaluation
//! (`intra::evaluate_plan`), and the parallel matching seed phase
//! (`matching::match_component_threads`) — so claim semantics, the
//! sequential fallback, and panic propagation live in exactly one
//! place.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Runs `f(idx)` for every index in `order` (a caller-chosen claim
/// order, e.g. largest-first) on up to `threads` scoped workers,
/// returning `(idx, result)` pairs. With `threads <= 1` or a single
/// item the calls happen inline on the caller's thread — same
/// semantics, no spawn.
///
/// `stop`, when provided, is checked before each claim: once set (by
/// the caller or from inside `f`), remaining unclaimed indices are
/// skipped and missing from the output. Callers using `stop` must
/// treat absent results as "skipped because the overall answer is
/// already decided".
///
/// Results arrive in claim-completion order; callers needing
/// deterministic output scatter by the returned index.
pub(crate) fn parallel_claim<T, F>(
    order: &[usize],
    threads: usize,
    stop: Option<&AtomicBool>,
    f: F,
) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(order.len().max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(order.len());
        for &idx in order {
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                break;
            }
            out.push((idx, f(idx)));
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let mut merged: Vec<(usize, T)> = Vec::with_capacity(order.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                            break;
                        }
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = order.get(k) else {
                            break;
                        };
                        produced.push((idx, f(idx)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            merged.extend(h.join().expect("pool worker panicked"));
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let order: Vec<usize> = (0..100).rev().collect();
        for threads in [1, 2, 8] {
            let mut out = parallel_claim(&order, threads, None, |i| i * 2);
            out.sort_unstable();
            assert_eq!(out.len(), 100);
            for (k, (idx, v)) in out.iter().enumerate() {
                assert_eq!(*idx, k);
                assert_eq!(*v, k * 2);
            }
        }
    }

    #[test]
    fn stop_flag_skips_remaining_work() {
        let order: Vec<usize> = (0..1000).collect();
        let stop = AtomicBool::new(false);
        let out = parallel_claim(&order, 4, Some(&stop), |i| {
            if i == 3 {
                stop.store(true, Ordering::Relaxed);
            }
            i
        });
        assert!(out.iter().any(|&(idx, _)| idx == 3));
        assert!(out.len() < 1000, "stop must skip the tail");
    }

    #[test]
    fn empty_order_is_fine() {
        assert!(parallel_claim(&[], 4, None, |i| i).is_empty());
    }
}
