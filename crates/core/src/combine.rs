//! Combined-query construction and answer distribution (§4.2).
//!
//! After matching, a component's survivors and global unifier `U` are
//! folded into one ordinary conjunctive query
//!
//! ```text
//! ⋀ᵢ Hᵢ  ⊣  ⋀ᵢ Bᵢ ∧ φ_U
//! ```
//!
//! We apply `φ_U` by substitution rather than emitting equality atoms —
//! every term is resolved to its class constant or class representative —
//! which is exactly the simplification the paper performs on its example
//! (`T(1) ∧ R(x1) ∧ S(x2) ⊣ D1(x1,x2,x3) ∧ D2(x1) ∧ D3(1, x2)`).
//! The combined body is evaluated with `LIMIT choose` against the
//! database; each returned valuation grounds every survivor's head atoms
//! and yields one answer per entangled query.

use crate::graph::MatchView;
use eq_db::{Database, DbError, Tuple, Valuation};
use eq_ir::{Atom, Constraint, QueryId, Symbol, Term, Value};
use eq_unify::Unifier;

/// The combined query for one matched component.
#[derive(Clone, Debug)]
pub struct CombinedQuery {
    /// Conjunction of all survivor bodies, simplified under the global
    /// unifier.
    pub body: Vec<Atom>,
    /// Conjunction of all survivor body constraints, simplified under
    /// the global unifier.
    pub constraints: Vec<Constraint>,
    /// For each survivor: its id and its simplified head atoms.
    pub heads: Vec<(QueryId, Vec<Atom>)>,
    /// The global unifier used for simplification.
    pub global: Unifier,
}

/// The answer to one entangled query: one grounded tuple per head atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The answered query.
    pub query: QueryId,
    /// ANSWER relation of each head atom (parallel to `tuples`).
    pub relations: Vec<Symbol>,
    /// Grounded head tuples (parallel to `relations`).
    pub tuples: Vec<Tuple>,
}

impl CombinedQuery {
    /// Builds the combined query from a matched component's `survivors`
    /// (graph slots) and `global` unifier. Works over any
    /// [`MatchView`] — a batch-built graph or the engine's resident
    /// graph — borrowing the survivor queries in place. Takes the
    /// global unifier by value: every caller owns it once matching
    /// finishes, so assembly moves the table instead of cloning it
    /// (eq_check's `no-unifier-clone` rule watches this file).
    pub fn build<V: MatchView>(graph: &V, survivors: &[u32], global: Unifier) -> Self {
        let (body, constraints, heads) = simplify_survivors(graph, survivors, &global);
        CombinedQuery {
            body,
            constraints,
            heads,
            global,
        }
    }

    /// Evaluates the combined body against `db` with `LIMIT limit` and
    /// distributes each solution into per-query answers.
    ///
    /// Returns one `Vec<QueryAnswer>` per solution found (at most
    /// `limit`); the empty outer vector means the component found no
    /// coordinated solution in the current database.
    pub fn evaluate(&self, db: &Database, limit: usize) -> Result<Vec<Vec<QueryAnswer>>, DbError> {
        let valuations = db.evaluate_filtered(&self.body, &self.constraints, limit)?;
        Ok(valuations.iter().map(|val| self.distribute(val)).collect())
    }

    /// Grounds every survivor's head atoms under one valuation.
    fn distribute(&self, valuation: &Valuation) -> Vec<QueryAnswer> {
        distribute_heads(&self.heads, valuation)
    }
}

/// Grounds a list of per-query simplified head atoms under one valuation
/// of the combined body, yielding one answer per entangled query. Shared
/// by [`CombinedQuery::evaluate`] and the partitioned intra-component
/// path ([`crate::intra::evaluate_plan`]), so the two produce answers
/// through identical distribution code.
pub(crate) fn distribute_heads(
    heads: &[(QueryId, Vec<Atom>)],
    valuation: &Valuation,
) -> Vec<QueryAnswer> {
    heads
        .iter()
        .map(|(qid, atoms)| {
            let mut relations = Vec::with_capacity(atoms.len());
            let mut tuples = Vec::with_capacity(atoms.len());
            for atom in atoms {
                relations.push(atom.relation);
                tuples.push(ground_atom(atom, valuation));
            }
            QueryAnswer {
                query: *qid,
                relations,
                tuples,
            }
        })
        .collect()
}

/// The §4.2 simplification of a matched component's survivors under
/// the global unifier: concatenated body atoms, concatenated
/// constraints, and per-survivor simplified heads (every term resolved
/// to its class constant or representative). The **single** source of
/// the simplification for both [`CombinedQuery::build`] and the
/// partitioned intra-component plan ([`crate::intra::plan_component`])
/// — the intra ≡ sequential answer guarantee requires the two paths to
/// simplify byte-identically, so there is exactly one implementation.
#[allow(clippy::type_complexity)]
pub(crate) fn simplify_survivors<V: MatchView>(
    graph: &V,
    survivors: &[u32],
    global: &Unifier,
) -> (Vec<Atom>, Vec<Constraint>, Vec<(QueryId, Vec<Atom>)>) {
    let simplify = |atom: &Atom| -> Atom {
        Atom {
            relation: atom.relation,
            terms: atom.terms.iter().map(|&t| global.resolve(t)).collect(),
        }
    };
    let mut body = Vec::new();
    let mut constraints = Vec::new();
    let mut heads = Vec::new();
    for &slot in survivors {
        let q = graph.query(slot);
        body.extend(q.body.iter().map(&simplify));
        constraints.extend(
            q.constraints
                .iter()
                .map(|c| c.apply(&|v| Some(global.resolve(Term::Var(v))))),
        );
        heads.push((q.id, q.head.iter().map(&simplify).collect()));
    }
    (body, constraints, heads)
}

/// Grounds a simplified atom under a valuation of the combined query.
///
/// Panics if a variable is unbound — impossible for range-restricted
/// queries, because every (simplified) head variable occurs in the
/// (simplified) combined body evaluated to produce the valuation.
fn ground_atom(atom: &Atom, valuation: &Valuation) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => *valuation
                .get(v)
                .expect("range restriction guarantees head variables are bound"),
        })
        .collect()
}

/// Convenience for tests: the set of grounded head atoms of a list of
/// answers, as `(relation, tuple)` pairs.
pub fn answer_atoms(answers: &[QueryAnswer]) -> Vec<(Symbol, Vec<Value>)> {
    let mut out = Vec::new();
    for a in answers {
        for (rel, tup) in a.relations.iter().zip(&a.tuples) {
            out.push((*rel, tup.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraph;
    use crate::matching::match_component;
    use eq_ir::{EntangledQuery, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn kramer_jerry_end_to_end() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let m = match_component(&g, &[0, 1]);
        let cq = CombinedQuery::build(&g, &m.survivors, m.global.unwrap());
        // Simplified body: F(x,Paris) ∧ F(x,Paris) ∧ A(x,United) over one
        // shared variable.
        assert_eq!(cq.body.len(), 3);
        let db = flight_db();
        let sols = cq.evaluate(&db, 1).unwrap();
        assert_eq!(sols.len(), 1);
        let answers = &sols[0];
        assert_eq!(answers.len(), 2);
        // Paper Figure 1(b): both reserve the same United Paris flight.
        let kramer = &answers[0];
        let jerry = &answers[1];
        assert_eq!(kramer.tuples[0][0], Value::str("Kramer"));
        assert_eq!(jerry.tuples[0][0], Value::str("Jerry"));
        let fno = kramer.tuples[0][1];
        assert_eq!(jerry.tuples[0][1], fno);
        assert!(fno == Value::int(122) || fno == Value::int(123));
    }

    #[test]
    fn mutual_satisfaction_holds() {
        // The defining property of a coordinating set: every grounded
        // postcondition appears among the grounded heads.
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let m = match_component(&g, &[0, 1]);
        let global = m.global.clone().unwrap();
        let cq = CombinedQuery::build(&g, &m.survivors, global.clone());
        let db = flight_db();
        let sols = cq.evaluate(&db, 1).unwrap();
        let atoms = answer_atoms(&sols[0]);

        // Re-derive each survivor's grounded postconditions and check
        // membership.
        let valuations = db.evaluate(&cq.body, 1).unwrap();
        let val = &valuations[0];
        for &slot in &m.survivors {
            for pc in &g.queries()[slot as usize].postconditions {
                let simplified = Atom {
                    relation: pc.relation,
                    terms: pc.terms.iter().map(|&t| global.resolve(t)).collect(),
                };
                let grounded: Vec<Value> = simplified
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => val[v],
                    })
                    .collect();
                assert!(
                    atoms.contains(&(pc.relation, grounded.clone())),
                    "postcondition {grounded:?} not satisfied"
                );
            }
        }
    }

    #[test]
    fn no_solution_when_database_lacks_rows() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)",
        ]);
        let m = match_component(&g, &[0, 1]);
        let cq = CombinedQuery::build(&g, &m.survivors, m.global.unwrap());
        let sols = cq.evaluate(&flight_db(), 1).unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn choose_k_returns_multiple_solutions() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        let m = match_component(&g, &[0, 1]);
        let cq = CombinedQuery::build(&g, &m.survivors, m.global.unwrap());
        let sols = cq.evaluate(&flight_db(), 3).unwrap();
        assert_eq!(sols.len(), 3); // flights 122, 123, 134
                                   // Solutions are distinct flights.
        let fnos: Vec<Value> = sols.iter().map(|s| s[0].tuples[0][1]).collect();
        let mut dedup = fnos.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn ground_queries_check_membership_only() {
        let mut db = Database::new();
        db.create_table("Friends", &["a", "b"]).unwrap();
        db.insert("Friends", vec![Value::str("Jerry"), Value::str("Kramer")])
            .unwrap();
        db.insert("Friends", vec![Value::str("Kramer"), Value::str("Jerry")])
            .unwrap();
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- Friends(Jerry, Kramer)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- Friends(Kramer, Jerry)",
        ]);
        let m = match_component(&g, &[0, 1]);
        let cq = CombinedQuery::build(&g, &m.survivors, m.global.unwrap());
        let sols = cq.evaluate(&db, 1).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0][0].tuples[0],
            vec![Value::str("Jerry"), Value::str("ITH")]
        );
    }

    #[test]
    fn paper_section_42_simplification() {
        // Combined query of the running example simplifies to
        // T(1) ∧ R(x1) ∧ S(x2) ⊣ D1(x1,x2,1) ∧ D2(x1) ∧ D3(1,x2).
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(z1)} S(z2) <- D3(z1, z2)",
        ]);
        let m = match_component(&g, &[0, 1, 2]);
        let cq = CombinedQuery::build(&g, &m.survivors, m.global.unwrap());
        // Head T(x3) simplifies to T(1).
        let t_head = &cq.heads[0].1[0];
        assert_eq!(t_head.terms[0], Term::int(1));
        // D1's third column is the constant 1 after simplification.
        let d1 = cq
            .body
            .iter()
            .find(|a| a.relation == Symbol::new("D1"))
            .unwrap();
        assert_eq!(d1.terms[2], Term::int(1));
        // D3's first column likewise.
        let d3 = cq
            .body
            .iter()
            .find(|a| a.relation == Symbol::new("D3"))
            .unwrap();
        assert_eq!(d3.terms[0], Term::int(1));
        // R's head variable and D2's variable are the same class rep.
        let r_head = &cq.heads[1].1[0];
        let d2 = cq
            .body
            .iter()
            .find(|a| a.relation == Symbol::new("D2"))
            .unwrap();
        assert_eq!(r_head.terms[0], d2.terms[0]);
    }
}
