//! The atom index of §4.1.4.
//!
//! To find which head atoms a postcondition can unify with (and vice
//! versa) without scanning all resident atoms, the paper indexes atoms
//! under `(Relation, Position, Value)` keys, with variables replaced by a
//! distinguished wildcard `Δ`. A lookup for an atom `R(v1..vn)`
//! intersects, over its *constant* positions `i`, the posting lists
//! `L(R, i, vi) ∪ L(R, i, Δ)`; an atom with no constants falls back to
//! the per-relation list.
//!
//! The index over-approximates: candidates are guaranteed to contain all
//! truly unifiable atoms, but repeated-variable patterns can slip
//! through (`R(z,z)` vs `R(2,3)`), so callers re-check with
//! [`eq_unify::mgu_atoms`]. The paper makes the same observation and
//! notes the index gives no complexity guarantee but is "immensely
//! useful" in practice.

use eq_ir::{Atom, FastMap, Symbol, Term, Value};

/// Reference to one atom: which query (by caller-chosen slot) and which
/// atom position within that query's head or postcondition list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomRef {
    /// Caller-defined query slot (index into the graph's query vector).
    pub query: u32,
    /// Index of the atom within the query's head or postcondition list.
    pub atom: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum KeyValue {
    Wildcard,
    Exact(Value),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    relation: Symbol,
    position: u32,
    value: KeyValue,
}

/// An index over a set of atoms supporting unifiability-candidate lookup
/// and removal (queries retire from the engine when answered or stale).
#[derive(Default)]
pub struct AtomIndex {
    postings: FastMap<Key, Vec<AtomRef>>,
    by_relation: FastMap<Symbol, Vec<AtomRef>>,
    /// Kept so that removal can locate all of an atom's postings.
    atoms: FastMap<AtomRef, Atom>,
}

impl AtomIndex {
    /// An empty index.
    pub fn new() -> Self {
        AtomIndex::default()
    }

    /// Number of atoms currently indexed.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms are indexed.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Inserts an atom under `r`.
    pub fn insert(&mut self, r: AtomRef, atom: &Atom) {
        for (pos, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => KeyValue::Exact(*c),
                Term::Var(_) => KeyValue::Wildcard,
            };
            self.postings
                .entry(Key {
                    relation: atom.relation,
                    position: pos as u32,
                    value,
                })
                .or_default()
                .push(r);
        }
        self.by_relation.entry(atom.relation).or_default().push(r);
        self.atoms.insert(r, atom.clone());
    }

    /// Removes an atom by reference. No-op if absent.
    pub fn remove(&mut self, r: AtomRef) {
        let Some(atom) = self.atoms.remove(&r) else {
            return;
        };
        for (pos, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => KeyValue::Exact(*c),
                Term::Var(_) => KeyValue::Wildcard,
            };
            if let Some(list) = self.postings.get_mut(&Key {
                relation: atom.relation,
                position: pos as u32,
                value,
            }) {
                list.retain(|&x| x != r);
            }
        }
        if let Some(list) = self.by_relation.get_mut(&atom.relation) {
            list.retain(|&x| x != r);
        }
    }

    /// The stored atom for a reference, if present.
    pub fn get(&self, r: AtomRef) -> Option<&Atom> {
        self.atoms.get(&r)
    }

    /// Candidate atoms that may unify with `probe`:
    /// `A ∩ ⋂_{constant positions i} (L(R,i,vi) ∪ L(R,i,Δ))`.
    ///
    /// The driving posting list is the most selective constant position
    /// (smallest `L(R,i,vi) ∪ L(R,i,Δ)`); the remaining positions are
    /// enforced by filtering the candidates positionally, which costs
    /// `O(|smallest list| · arity)` instead of materializing every
    /// posting list — the difference between linear and quadratic total
    /// cost on hub-heavy workloads (every query sharing one destination
    /// constant).
    ///
    /// Candidates are superset-correct; callers must confirm with a real
    /// MGU check. Results are deduplicated and in insertion order.
    pub fn candidates(&self, probe: &Atom) -> Vec<AtomRef> {
        let best = probe
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i as u32, c)))
            .min_by_key(|&(pos, val)| self.union_len(probe.relation, pos, val));

        let Some((pos, val)) = best else {
            // All-variable probe: every atom of the relation (with equal
            // arity) is a candidate.
            return self
                .by_relation
                .get(&probe.relation)
                .map(|refs| {
                    refs.iter()
                        .filter(|&&r| self.atoms[&r].arity() == probe.arity())
                        .copied()
                        .collect()
                })
                .unwrap_or_default();
        };

        let mut acc = self.lookup_union(probe.relation, pos, val);
        acc.retain(|&r| {
            let atom = &self.atoms[&r];
            atom.arity() == probe.arity() && atom.positionally_compatible(probe)
        });
        acc
    }

    fn union_len(&self, relation: Symbol, position: u32, value: Value) -> usize {
        let exact = self
            .postings
            .get(&Key {
                relation,
                position,
                value: KeyValue::Exact(value),
            })
            .map_or(0, Vec::len);
        let wild = self
            .postings
            .get(&Key {
                relation,
                position,
                value: KeyValue::Wildcard,
            })
            .map_or(0, Vec::len);
        exact + wild
    }

    /// `L(R, pos, v) ∪ L(R, pos, Δ)`, deduplicated (an atom appears in
    /// only one of the two lists for a given position, so concatenation
    /// suffices).
    fn lookup_union(&self, relation: Symbol, position: u32, value: Value) -> Vec<AtomRef> {
        let mut out = Vec::new();
        if let Some(exact) = self.postings.get(&Key {
            relation,
            position,
            value: KeyValue::Exact(value),
        }) {
            out.extend_from_slice(exact);
        }
        if let Some(wild) = self.postings.get(&Key {
            relation,
            position,
            value: KeyValue::Wildcard,
        }) {
            out.extend_from_slice(wild);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::{atom, FastSet, Var};

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    fn r(q: u32, a: u32) -> AtomRef {
        AtomRef { query: q, atom: a }
    }

    #[test]
    fn paper_example_lookup() {
        // Index Reserve(Kramer, x) and Reserve(Jerry, y); probing with
        // Reserve(Jerry, z) must return only Jerry's atom.
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("Reserve", [Term::str("Kramer"), v(0)]));
        idx.insert(r(1, 0), &atom!("Reserve", [Term::str("Jerry"), v(1)]));
        let probe = atom!("Reserve", [Term::str("Jerry"), v(2)]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0)]);
    }

    #[test]
    fn wildcard_probe_returns_relation() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("b"), v(1)]));
        idx.insert(r(2, 0), &atom!("S", [Term::str("a"), v(2)]));
        let probe = atom!("R", [v(3), v(4)]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0), r(1, 0)]);
    }

    #[test]
    fn indexed_wildcards_match_constant_probe() {
        // Head R(x, ITH) must be a candidate for probe R(Jerry, ITH).
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [v(0), Term::str("ITH")]));
        let probe = atom!("R", [Term::str("Jerry"), Term::str("ITH")]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
    }

    #[test]
    fn multi_constant_intersection() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), Term::str("x")]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), Term::str("y")]));
        idx.insert(r(2, 0), &atom!("R", [v(0), Term::str("y")]));
        // Probe R(a, y): candidates are atoms compatible in both columns.
        let probe = atom!("R", [Term::str("a"), Term::str("y")]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0), r(2, 0)]);
    }

    #[test]
    fn arity_filtered() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a")]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), v(0)]));
        let probe = atom!("R", [Term::str("a")]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
        let wild_probe = atom!("R", [v(1)]);
        assert_eq!(idx.candidates(&wild_probe), vec![r(0, 0)]);
    }

    #[test]
    fn over_approximation_documented() {
        // R(z, z) indexed; probe R(2, 3) — index returns it as a
        // candidate even though true unification fails.
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [v(0), v(0)]));
        let probe = atom!("R", [Term::int(2), Term::int(3)]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
        assert!(eq_unify::mgu_atoms(idx.get(r(0, 0)).unwrap(), &probe).is_none());
    }

    #[test]
    fn removal() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), v(1)]));
        assert_eq!(idx.len(), 2);
        idx.remove(r(0, 0));
        assert_eq!(idx.len(), 1);
        let probe = atom!("R", [Term::str("a"), v(2)]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0)]);
        // Removing again is a no-op.
        idx.remove(r(0, 0));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn no_false_negatives_vs_pairwise() {
        // Exhaustive cross-check on a small universe: every truly
        // unifiable pair must appear in the candidate list.
        use eq_unify::mgu_atoms;
        let consts = ["a", "b"];
        let mut atoms = Vec::new();
        let mut next_var = 0u32;
        for t1 in 0..3 {
            for t2 in 0..3 {
                let mut mk = |sel: usize| -> Term {
                    match sel {
                        0 => Term::str(consts[0]),
                        1 => Term::str(consts[1]),
                        _ => {
                            let t = Term::var(Var(next_var));
                            next_var += 1;
                            t
                        }
                    }
                };
                atoms.push(Atom::new("R", vec![mk(t1), mk(t2)]));
            }
        }
        let mut idx = AtomIndex::new();
        for (i, a) in atoms.iter().enumerate() {
            idx.insert(r(i as u32, 0), a);
        }
        for probe in &atoms {
            let cands: FastSet<AtomRef> = idx.candidates(probe).into_iter().collect();
            for (i, a) in atoms.iter().enumerate() {
                if mgu_atoms(a, probe).is_some() {
                    assert!(
                        cands.contains(&r(i as u32, 0)),
                        "index missed unifiable pair {a} / {probe}"
                    );
                }
            }
        }
    }
}
