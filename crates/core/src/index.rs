//! The atom index of §4.1.4.
//!
//! To find which head atoms a postcondition can unify with (and vice
//! versa) without scanning all resident atoms, the paper indexes atoms
//! under `(Relation, Position, Value)` keys, with variables replaced by a
//! distinguished wildcard `Δ`. A lookup for an atom `R(v1..vn)`
//! intersects, over its *constant* positions `i`, the posting lists
//! `L(R, i, vi) ∪ L(R, i, Δ)`; an atom with no constants falls back to
//! the per-relation list.
//!
//! The index over-approximates: candidates are guaranteed to contain all
//! truly unifiable atoms, but repeated-variable patterns can slip
//! through (`R(z,z)` vs `R(2,3)`), so callers re-check with
//! [`eq_unify::mgu_atoms`]. The paper makes the same observation and
//! notes the index gives no complexity guarantee but is "immensely
//! useful" in practice.

use eq_ir::{Atom, FastMap, Symbol, Term, Value};

/// Reference to one atom: which query (by caller-chosen slot) and which
/// atom position within that query's head or postcondition list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomRef {
    /// Caller-defined query slot (index into the graph's query vector).
    pub query: u32,
    /// Index of the atom within the query's head or postcondition list.
    pub atom: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum KeyValue {
    Wildcard,
    Exact(Value),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    relation: Symbol,
    position: u32,
    value: KeyValue,
}

/// An index over a set of atoms supporting unifiability-candidate lookup
/// and removal (queries retire from the engine when answered or stale).
#[derive(Default)]
pub struct AtomIndex {
    postings: FastMap<Key, Vec<AtomRef>>,
    by_relation: FastMap<Symbol, Vec<AtomRef>>,
    /// Kept so that removal can locate all of an atom's postings.
    atoms: FastMap<AtomRef, Atom>,
}

impl AtomIndex {
    /// An empty index.
    pub fn new() -> Self {
        AtomIndex::default()
    }

    /// Number of atoms currently indexed.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms are indexed.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Inserts an atom under `r`.
    pub fn insert(&mut self, r: AtomRef, atom: &Atom) {
        for (pos, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => KeyValue::Exact(*c),
                Term::Var(_) => KeyValue::Wildcard,
            };
            self.postings
                .entry(Key {
                    relation: atom.relation,
                    position: pos as u32,
                    value,
                })
                .or_default()
                .push(r);
        }
        self.by_relation.entry(atom.relation).or_default().push(r);
        self.atoms.insert(r, atom.clone());
    }

    /// Removes an atom by reference. No-op if absent.
    pub fn remove(&mut self, r: AtomRef) {
        let Some(atom) = self.atoms.remove(&r) else {
            return;
        };
        for (pos, term) in atom.terms.iter().enumerate() {
            let value = match term {
                Term::Const(c) => KeyValue::Exact(*c),
                Term::Var(_) => KeyValue::Wildcard,
            };
            if let Some(list) = self.postings.get_mut(&Key {
                relation: atom.relation,
                position: pos as u32,
                value,
            }) {
                list.retain(|&x| x != r);
            }
        }
        if let Some(list) = self.by_relation.get_mut(&atom.relation) {
            list.retain(|&x| x != r);
        }
    }

    /// The stored atom for a reference, if present.
    pub fn get(&self, r: AtomRef) -> Option<&Atom> {
        self.atoms.get(&r)
    }

    /// Candidate atoms that may unify with `probe`:
    /// `A ∩ ⋂_{constant positions i} (L(R,i,vi) ∪ L(R,i,Δ))`.
    ///
    /// Allocates a fresh `Vec` per probe; hot paths (engine admission,
    /// retirement) should prefer [`AtomIndex::for_each_candidate`],
    /// which visits the same candidates without materializing them.
    ///
    /// Candidates are superset-correct; callers must confirm with a real
    /// MGU check. Results are deduplicated and in insertion order.
    pub fn candidates(&self, probe: &Atom) -> Vec<AtomRef> {
        let mut out = Vec::new();
        self.for_each_candidate(probe, |r, _| out.push(r));
        out
    }

    /// Visits every candidate that may unify with `probe`, passing the
    /// reference and the stored atom. This is the allocation-free form
    /// of [`AtomIndex::candidates`]:
    ///
    /// The driving posting list is the most selective constant position
    /// (smallest `L(R,i,vi) ∪ L(R,i,Δ)`); the remaining positions are
    /// enforced by filtering the candidates positionally, which costs
    /// `O(|smallest list| · arity)` instead of materializing every
    /// posting list — the difference between linear and quadratic total
    /// cost on hub-heavy workloads (every query sharing one destination
    /// constant).
    ///
    /// Candidates are superset-correct; callers must confirm with a real
    /// MGU check. Visit order is deterministic (insertion order within
    /// the driving list) and free of duplicates — an atom appears in
    /// exactly one of the exact/wildcard lists for a given position.
    pub fn for_each_candidate(&self, probe: &Atom, mut f: impl FnMut(AtomRef, &Atom)) {
        let best = probe
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i as u32, c)))
            .min_by_key(|&(pos, val)| self.union_len(probe.relation, pos, val));

        let Some((pos, val)) = best else {
            // All-variable probe: every atom of the relation (with equal
            // arity) is a candidate.
            if let Some(refs) = self.by_relation.get(&probe.relation) {
                for &r in refs {
                    let atom = &self.atoms[&r];
                    if atom.arity() == probe.arity() {
                        f(r, atom);
                    }
                }
            }
            return;
        };

        let mut visit = |list: Option<&Vec<AtomRef>>| {
            if let Some(list) = list {
                for &r in list {
                    let atom = &self.atoms[&r];
                    if atom.arity() == probe.arity() && atom.positionally_compatible(probe) {
                        f(r, atom);
                    }
                }
            }
        };
        visit(self.postings.get(&Key {
            relation: probe.relation,
            position: pos,
            value: KeyValue::Exact(val),
        }));
        visit(self.postings.get(&Key {
            relation: probe.relation,
            position: pos,
            value: KeyValue::Wildcard,
        }));
    }

    fn union_len(&self, relation: Symbol, position: u32, value: Value) -> usize {
        let exact = self
            .postings
            .get(&Key {
                relation,
                position,
                value: KeyValue::Exact(value),
            })
            .map_or(0, Vec::len);
        let wild = self
            .postings
            .get(&Key {
                relation,
                position,
                value: KeyValue::Wildcard,
            })
            .map_or(0, Vec::len);
        exact + wild
    }
}

/// An [`AtomIndex`] sharded by `(relation, arity)`.
///
/// Atoms of one relation/arity always land in one shard, so a probe
/// touches exactly one shard and probes for *different* relations touch
/// disjoint state — the structural prerequisite for parallel admission
/// probing (several submissions' atoms can be probed concurrently with
/// one immutable borrow per shard, no lock striping needed). The engine
/// keeps its resident head and postcondition indexes in this form.
pub struct ShardedAtomIndex {
    shards: Vec<AtomIndex>,
}

/// Default shard count for the engine's resident indexes.
pub const DEFAULT_INDEX_SHARDS: usize = 8;

impl Default for ShardedAtomIndex {
    fn default() -> Self {
        ShardedAtomIndex::new(DEFAULT_INDEX_SHARDS)
    }
}

impl ShardedAtomIndex {
    /// An empty index with `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardedAtomIndex {
            shards: (0..shard_count.max(1)).map(|_| AtomIndex::new()).collect(),
        }
    }

    fn shard_id(&self, relation: Symbol, arity: usize) -> usize {
        // Cheap deterministic mix of the interned relation id and arity;
        // relations are few, so simple multiplicative hashing spreads
        // them well enough.
        let h = (relation.index() as usize)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(arity);
        h % self.shards.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards (for parallel probing: each shard is an
    /// independent [`AtomIndex`]).
    pub fn shards(&self) -> &[AtomIndex] {
        &self.shards
    }

    /// The shard that atoms shaped like `probe` live in.
    pub fn shard_for(&self, probe: &Atom) -> &AtomIndex {
        &self.shards[self.shard_id(probe.relation, probe.arity())]
    }

    /// Total number of atoms indexed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(AtomIndex::len).sum()
    }

    /// True if no atoms are indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(AtomIndex::is_empty)
    }

    /// Inserts an atom under `r`.
    pub fn insert(&mut self, r: AtomRef, atom: &Atom) {
        let id = self.shard_id(atom.relation, atom.arity());
        self.shards[id].insert(r, atom);
    }

    /// Removes an atom by reference; `atom` routes to the owning shard.
    /// No-op if absent.
    pub fn remove(&mut self, r: AtomRef, atom: &Atom) {
        let id = self.shard_id(atom.relation, atom.arity());
        self.shards[id].remove(r);
    }

    /// The stored atom for a reference, if present (scans shards; meant
    /// for tests and invariant checks, not hot paths).
    pub fn get(&self, r: AtomRef) -> Option<&Atom> {
        self.shards.iter().find_map(|s| s.get(r))
    }

    /// Visits every candidate that may unify with `probe` (see
    /// [`AtomIndex::for_each_candidate`]); only `probe`'s shard is
    /// touched.
    pub fn for_each_candidate(&self, probe: &Atom, f: impl FnMut(AtomRef, &Atom)) {
        self.shard_for(probe).for_each_candidate(probe, f);
    }

    /// Materialized candidate list (see [`AtomIndex::candidates`]).
    pub fn candidates(&self, probe: &Atom) -> Vec<AtomRef> {
        self.shard_for(probe).candidates(probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::{atom, FastSet, Var};

    fn v(i: u32) -> Term {
        Term::var(Var(i))
    }

    fn r(q: u32, a: u32) -> AtomRef {
        AtomRef { query: q, atom: a }
    }

    #[test]
    fn paper_example_lookup() {
        // Index Reserve(Kramer, x) and Reserve(Jerry, y); probing with
        // Reserve(Jerry, z) must return only Jerry's atom.
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("Reserve", [Term::str("Kramer"), v(0)]));
        idx.insert(r(1, 0), &atom!("Reserve", [Term::str("Jerry"), v(1)]));
        let probe = atom!("Reserve", [Term::str("Jerry"), v(2)]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0)]);
    }

    #[test]
    fn wildcard_probe_returns_relation() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("b"), v(1)]));
        idx.insert(r(2, 0), &atom!("S", [Term::str("a"), v(2)]));
        let probe = atom!("R", [v(3), v(4)]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0), r(1, 0)]);
    }

    #[test]
    fn indexed_wildcards_match_constant_probe() {
        // Head R(x, ITH) must be a candidate for probe R(Jerry, ITH).
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [v(0), Term::str("ITH")]));
        let probe = atom!("R", [Term::str("Jerry"), Term::str("ITH")]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
    }

    #[test]
    fn multi_constant_intersection() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), Term::str("x")]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), Term::str("y")]));
        idx.insert(r(2, 0), &atom!("R", [v(0), Term::str("y")]));
        // Probe R(a, y): candidates are atoms compatible in both columns.
        let probe = atom!("R", [Term::str("a"), Term::str("y")]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0), r(2, 0)]);
    }

    #[test]
    fn arity_filtered() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a")]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), v(0)]));
        let probe = atom!("R", [Term::str("a")]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
        let wild_probe = atom!("R", [v(1)]);
        assert_eq!(idx.candidates(&wild_probe), vec![r(0, 0)]);
    }

    #[test]
    fn over_approximation_documented() {
        // R(z, z) indexed; probe R(2, 3) — index returns it as a
        // candidate even though true unification fails.
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [v(0), v(0)]));
        let probe = atom!("R", [Term::int(2), Term::int(3)]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
        assert!(eq_unify::mgu_atoms(idx.get(r(0, 0)).unwrap(), &probe).is_none());
    }

    #[test]
    fn removal() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("R", [Term::str("a"), v(1)]));
        assert_eq!(idx.len(), 2);
        idx.remove(r(0, 0));
        assert_eq!(idx.len(), 1);
        let probe = atom!("R", [Term::str("a"), v(2)]);
        assert_eq!(idx.candidates(&probe), vec![r(1, 0)]);
        // Removing again is a no-op.
        idx.remove(r(0, 0));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn visitor_matches_materialized_candidates() {
        let mut idx = AtomIndex::new();
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("R", [v(1), Term::str("b")]));
        idx.insert(r(2, 0), &atom!("R", [Term::str("a"), Term::str("b")]));
        for probe in [
            atom!("R", [Term::str("a"), v(2)]),
            atom!("R", [v(3), v(4)]),
            atom!("R", [Term::str("a"), Term::str("b")]),
        ] {
            let mut visited = Vec::new();
            idx.for_each_candidate(&probe, |r, atom| {
                assert_eq!(idx.get(r), Some(atom));
                visited.push(r);
            });
            assert_eq!(visited, idx.candidates(&probe));
        }
    }

    #[test]
    fn sharded_index_routes_by_relation_and_arity() {
        let mut idx = ShardedAtomIndex::new(4);
        idx.insert(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        idx.insert(r(1, 0), &atom!("S", [Term::str("a")]));
        idx.insert(r(2, 0), &atom!("R", [Term::str("a")]));
        assert_eq!(idx.len(), 3);
        let probe = atom!("R", [Term::str("a"), v(1)]);
        assert_eq!(idx.candidates(&probe), vec![r(0, 0)]);
        // Removal routes through the atom's shard.
        idx.remove(r(0, 0), &atom!("R", [Term::str("a"), v(0)]));
        assert!(idx.candidates(&probe).is_empty());
        assert_eq!(idx.len(), 2);
        assert!(idx.get(r(1, 0)).is_some());
        assert!(!idx.is_empty());
    }

    #[test]
    fn sharded_index_agrees_with_flat_index() {
        let mut flat = AtomIndex::new();
        let mut sharded = ShardedAtomIndex::new(3);
        let atoms = [
            atom!("R", [Term::str("a"), v(0)]),
            atom!("R", [v(1), Term::str("b")]),
            atom!("S", [Term::str("a"), Term::str("b")]),
            atom!("S", [v(2)]),
            atom!("T", [v(3), v(4)]),
        ];
        for (i, a) in atoms.iter().enumerate() {
            flat.insert(r(i as u32, 0), a);
            sharded.insert(r(i as u32, 0), a);
        }
        for probe in &atoms {
            assert_eq!(flat.candidates(probe), sharded.candidates(probe));
        }
    }

    #[test]
    fn no_false_negatives_vs_pairwise() {
        // Exhaustive cross-check on a small universe: every truly
        // unifiable pair must appear in the candidate list.
        use eq_unify::mgu_atoms;
        let consts = ["a", "b"];
        let mut atoms = Vec::new();
        let mut next_var = 0u32;
        for t1 in 0..3 {
            for t2 in 0..3 {
                let mut mk = |sel: usize| -> Term {
                    match sel {
                        0 => Term::str(consts[0]),
                        1 => Term::str(consts[1]),
                        _ => {
                            let t = Term::var(Var(next_var));
                            next_var += 1;
                            t
                        }
                    }
                };
                atoms.push(Atom::new("R", vec![mk(t1), mk(t2)]));
            }
        }
        let mut idx = AtomIndex::new();
        for (i, a) in atoms.iter().enumerate() {
            idx.insert(r(i as u32, 0), a);
        }
        for probe in &atoms {
            let cands: FastSet<AtomRef> = idx.candidates(probe).into_iter().collect();
            for (i, a) in atoms.iter().enumerate() {
                if mgu_atoms(a, probe).is_some() {
                    assert!(
                        cands.contains(&r(i as u32, 0)),
                        "index missed unifiable pair {a} / {probe}"
                    );
                }
            }
        }
    }
}
