//! Parallel evaluation *inside* one matched component.
//!
//! Per-component parallelism (§4.1.2, `EngineConfig::flush_threads`)
//! goes idle the moment a workload entangles everything into one giant
//! component: the paper's coordination semantics force all queries of a
//! match-graph component to be answered together, so one combined query
//! serializes the whole flush. This module splits that combined query's
//! evaluation search space into **work units** that are independent by
//! construction and can be dispatched on the same worker pool, with a
//! deterministic merge that reproduces the sequential answer choice.
//!
//! # Work-unit extraction
//!
//! [`plan_component`] walks the component's survivors over
//! [`MatchView`] (the engine's resident graph or a batch-built
//! [`crate::MatchGraph`] — same code path), simplifies every body atom
//! and constraint under the component's global unifier exactly as
//! [`crate::CombinedQuery::build`] does, and then partitions the
//! simplified conjunction by **variable connectivity**: two atoms land
//! in the same [`WorkUnit`] iff they are linked by a chain of shared
//! variables (constraints link the units of their variables too). This
//! is the search-space decomposition the combined query admits after
//! §4.2 simplification — entangled queries share *answers* through
//! their heads and postconditions, but their bodies touch disjoint
//! variables unless the global unifier actually merged them, so a giant
//! ring of 10,000 pairwise-entangled queries yields thousands of small
//! independent joins instead of one 30,000-atom join. Fully ground
//! atoms and constraints (no variables at all after simplification)
//! become per-plan membership checks.
//!
//! # Deterministic merge
//!
//! Because the units are variable-disjoint, a valuation of the whole
//! combined body is exactly one valuation per unit, glued together.
//! [`evaluate_plan`] evaluates each unit with `LIMIT 1` and merges the
//! per-unit valuations by unit index. The merged result equals the
//! *sequential* evaluator's first solution because the evaluator's
//! greedy join order breaks ties structurally (see
//! `choose_atom` in `eq_db`): an atom's ordering key depends only on
//! its own unit's bindings, so the backtracking search over the whole
//! body explores each unit's assignments in exactly the order the
//! unit-local search does, and its first full solution is the
//! composition of the per-unit firsts. The engine property-tests this
//! equivalence (intra-parallel ≡ sequential, answer for answer) in
//! both engine modes.
//!
//! Components below [`crate::EngineConfig::intra_component_threshold`]
//! never reach this module — they evaluate through the plain
//! [`crate::CombinedQuery`] path, which this module's result is
//! guaranteed (and tested) to agree with.

use crate::combine::{distribute_heads, QueryAnswer};
use crate::graph::MatchView;
use crate::pool;
use eq_db::{Database, DbError, Valuation};
use eq_ir::{Atom, Constraint, FastMap, QueryId, Var};
use eq_unify::Unifier;
use std::sync::atomic::{AtomicBool, Ordering};

/// One independently evaluable piece of a combined query: a maximal
/// variable-connected sub-conjunction of the simplified body, plus the
/// constraints over its variables.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Simplified body atoms of this unit (each shares a variable chain
    /// with every other atom of the unit, and none with any other
    /// unit).
    pub atoms: Vec<Atom>,
    /// Simplified constraints whose variables belong to this unit.
    pub constraints: Vec<Constraint>,
}

/// The partitioned evaluation plan for one matched component: work
/// units, plus the variable-free residue that needs no search.
#[derive(Clone, Debug)]
pub struct ComponentPlan {
    /// Variable-connected work units, in order of first appearance in
    /// the combined body (survivor order, then body order).
    pub units: Vec<WorkUnit>,
    /// Fully ground body atoms: membership checks, no bindings.
    pub ground_atoms: Vec<Atom>,
    /// Fully ground constraints: checked once against the empty
    /// valuation.
    pub ground_constraints: Vec<Constraint>,
    /// Per-survivor simplified heads, exactly as
    /// [`crate::CombinedQuery::build`] produces them.
    pub heads: Vec<(QueryId, Vec<Atom>)>,
}

/// Union-find over query variables, used to group atoms into
/// variable-connected work units.
#[derive(Default)]
struct VarUnion {
    parent: FastMap<Var, Var>,
}

impl VarUnion {
    /// Iterative find with full path compression — giant components
    /// can chain tens of thousands of variables, so no recursion.
    fn find(&mut self, v: Var) -> Var {
        let mut root = v;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        self.parent.entry(v).or_insert(v);
        let mut cur = v;
        while cur != root {
            let p = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Builds the partitioned plan for a matched component's survivors and
/// global unifier, over any [`MatchView`]. The flat concatenation of
/// `ground_atoms` and every unit's `atoms` is a permutation of the
/// combined query's body; likewise for constraints; `heads` is
/// identical to the combined query's.
pub fn plan_component<V: MatchView>(
    graph: &V,
    survivors: &[u32],
    global: &Unifier,
) -> ComponentPlan {
    // One shared simplification with the sequential path — the
    // answer-equivalence guarantee requires byte-identical inputs.
    let (atoms, constraints, heads) = crate::combine::simplify_survivors(graph, survivors, global);

    // Variable-connectivity union-find: atoms glue their own variables
    // together; constraints glue their variables' units together.
    let mut uf = VarUnion::default();
    for atom in &atoms {
        let mut vars = atom.vars();
        if let Some(first) = vars.next() {
            for v in vars {
                uf.union(first, v);
            }
        }
    }
    for c in &constraints {
        let mut vars = c.vars();
        if let Some(first) = vars.next() {
            for v in vars {
                uf.union(first, v);
            }
        }
    }

    // Group atoms by their variables' root, units ordered by first
    // appearance (deterministic: body order).
    let mut unit_of_root: FastMap<Var, usize> = FastMap::default();
    let mut units: Vec<WorkUnit> = Vec::new();
    let mut ground_atoms = Vec::new();
    for atom in atoms {
        let first_var = atom.vars().next();
        match first_var {
            None => ground_atoms.push(atom),
            Some(v) => {
                let root = uf.find(v);
                let idx = *unit_of_root.entry(root).or_insert_with(|| {
                    units.push(WorkUnit {
                        atoms: Vec::new(),
                        constraints: Vec::new(),
                    });
                    units.len() - 1
                });
                units[idx].atoms.push(atom);
            }
        }
    }
    let mut ground_constraints = Vec::new();
    for c in constraints {
        let first_var = c.vars().next();
        match first_var {
            None => ground_constraints.push(c),
            Some(v) => {
                let root = uf.find(v);
                match unit_of_root.get(&root) {
                    Some(&idx) => units[idx].constraints.push(c),
                    // A constraint over variables no body atom binds can
                    // never become decidable; the sequential evaluator
                    // passes it provisionally forever, so checking it
                    // against the empty valuation (undecidable ⇒ pass)
                    // is equivalent.
                    None => ground_constraints.push(c),
                }
            }
        }
    }

    ComponentPlan {
        units,
        ground_atoms,
        ground_constraints,
        heads,
    }
}

/// Outcome of one work unit's `LIMIT 1` evaluation.
enum UnitResult {
    /// First valuation of the unit's sub-conjunction.
    Sat(Valuation),
    /// The sub-conjunction has no solution: the whole component has
    /// none.
    Unsat,
    /// Not evaluated because another unit already proved `Unsat` (early
    /// exit); only possible when the overall answer is `None`.
    Skipped,
}

/// Evaluates a plan against `db`, dispatching work units on up to
/// `threads` scoped workers (largest unit first — unit sizes are
/// heavy-tailed when the global unifier merged some variables).
///
/// Returns the component's first coordinated solution — one
/// [`QueryAnswer`] per survivor, in survivor order — or `None` when any
/// unit, ground atom, or ground constraint is unsatisfiable. The result
/// is answer-for-answer identical to
/// `CombinedQuery::evaluate(db, 1)` on the same survivors, for every
/// `threads` value (see the module docs for why the merge preserves the
/// sequential answer choice).
pub fn evaluate_plan(
    plan: &ComponentPlan,
    db: &Database,
    threads: usize,
) -> Result<Option<Vec<QueryAnswer>>, DbError> {
    // Whole-conjunction validation first, exactly like the one-shot
    // evaluator: an unknown relation anywhere in the body is an error
    // even if some other unit is unsatisfiable.
    db.check_atoms(&plan.ground_atoms)?;
    for unit in &plan.units {
        db.check_atoms(&unit.atoms)?;
    }

    let empty = Valuation::default();
    for c in &plan.ground_constraints {
        if !c.check(&|v| empty.get(&v).copied()) {
            return Ok(None);
        }
    }
    for atom in &plan.ground_atoms {
        let row: Vec<_> = atom
            .terms
            .iter()
            .map(|t| t.as_const().expect("ground atom"))
            .collect();
        let present = db.table(atom.relation).is_some_and(|t| t.contains(&row));
        if !present {
            return Ok(None);
        }
    }
    if plan.units.is_empty() {
        return Ok(Some(distribute_heads(&plan.heads, &empty)));
    }

    // Units largest-first on the shared worker pool; the stop flag
    // bails out of remaining claims as soon as any unit proves
    // unsatisfiable — once one unit is `Unsat` the component's answer
    // is `None` regardless of the rest.
    let mut order: Vec<usize> = (0..plan.units.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(plan.units[i].atoms.len()));
    let failed = AtomicBool::new(false);
    let produced = pool::parallel_claim(&order, threads, Some(&failed), |idx| {
        let r = evaluate_unit(&plan.units[idx], db);
        if matches!(r, UnitResult::Unsat) {
            failed.store(true, Ordering::Relaxed);
        }
        r
    });
    let mut results: Vec<UnitResult> = Vec::with_capacity(plan.units.len());
    results.resize_with(plan.units.len(), || UnitResult::Skipped);
    for (idx, r) in produced {
        results[idx] = r;
    }

    let mut merged = Valuation::default();
    for r in &results {
        match r {
            UnitResult::Sat(val) => {
                // Units are variable-disjoint: plain union.
                for (&v, &value) in val.iter() {
                    merged.insert(v, value);
                }
            }
            UnitResult::Unsat | UnitResult::Skipped => return Ok(None),
        }
    }
    Ok(Some(distribute_heads(&plan.heads, &merged)))
}

fn evaluate_unit(unit: &WorkUnit, db: &Database) -> UnitResult {
    match db.evaluate_filtered(&unit.atoms, &unit.constraints, 1) {
        Ok(vals) => match vals.into_iter().next() {
            Some(v) => UnitResult::Sat(v),
            None => UnitResult::Unsat,
        },
        // Unreachable after the up-front validation (the search itself
        // cannot fail); treat like an unsatisfiable unit defensively.
        Err(_) => UnitResult::Unsat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraph;
    use crate::matching::match_component;
    use crate::CombinedQuery;
    use eq_ir::{EntangledQuery, Value, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [(122, "United"), (123, "United"), (134, "Lufthansa")] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    fn plan_for(g: &MatchGraph, members: &[u32]) -> (ComponentPlan, CombinedQuery) {
        let m = match_component(g, members);
        let global = m.global.expect("answerable");
        let plan = plan_component(g, &m.survivors, &global);
        let cq = CombinedQuery::build(g, &m.survivors, &global);
        (plan, cq)
    }

    #[test]
    fn entangled_pair_with_shared_variable_is_one_unit() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let (plan, _) = plan_for(&g, &[0, 1]);
        // The global unifier merges x and y: all three atoms share one
        // variable class, so the body is one unit.
        assert_eq!(plan.units.len(), 1);
        assert_eq!(plan.units[0].atoms.len(), 3);
        assert!(plan.ground_atoms.is_empty());
    }

    #[test]
    fn disjoint_bodies_split_into_units() {
        // Two ground-entangled queries whose bodies use private
        // variables: two independent units.
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(x, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(y, Rome)",
        ]);
        let (plan, _) = plan_for(&g, &[0, 1]);
        assert_eq!(plan.units.len(), 2);
        assert_eq!(plan.units[0].atoms.len(), 1);
    }

    #[test]
    fn ground_atoms_become_membership_checks() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(122, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(136, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        assert!(plan.units.is_empty());
        assert_eq!(plan.ground_atoms.len(), 2);
        let db = flight_db();
        let par = evaluate_plan(&plan, &db, 4).unwrap();
        let seq = cq.evaluate(&db, 1).unwrap().into_iter().next();
        assert_eq!(par, seq);
        assert!(par.is_some());
    }

    #[test]
    fn missing_ground_atom_means_no_solution() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(999, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(136, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        assert_eq!(evaluate_plan(&plan, &db, 1).unwrap(), None);
        assert!(cq.evaluate(&db, 1).unwrap().is_empty());
    }

    #[test]
    fn partitioned_answers_match_sequential_for_all_thread_counts() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
            // Note: separate component would not share a global; keep
            // this pair entangled through a second ring.
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        let seq = cq.evaluate(&db, 1).unwrap().into_iter().next();
        for threads in [1, 2, 4, 8] {
            assert_eq!(evaluate_plan(&plan, &db, threads).unwrap(), seq);
        }
    }

    #[test]
    fn unknown_relation_is_an_error_not_a_miss() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- Nope(x)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(y, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        assert!(evaluate_plan(&plan, &db, 2).is_err());
        assert!(cq.evaluate(&db, 1).is_err());
    }

    #[test]
    fn plan_covers_exactly_the_combined_body() {
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(z1)} S(z2) <- D3(z1, z2)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1, 2]);
        let mut plan_atoms: Vec<Atom> = plan.ground_atoms.clone();
        for u in &plan.units {
            plan_atoms.extend(u.atoms.iter().cloned());
        }
        let mut body = cq.body.clone();
        plan_atoms.sort();
        body.sort();
        assert_eq!(plan_atoms, body);
        assert_eq!(plan.heads, cq.heads);
    }
}
