//! Parallel evaluation *inside* one matched component.
//!
//! Per-component parallelism (§4.1.2, `EngineConfig::flush_threads`)
//! goes idle the moment a workload entangles everything into one giant
//! component: the paper's coordination semantics force all queries of a
//! match-graph component to be answered together, so one combined query
//! serializes the whole flush. This module splits that combined query's
//! evaluation search space into **work units** that are independent by
//! construction and can be dispatched on the same worker pool, with a
//! deterministic merge that reproduces the sequential answer choice.
//!
//! # Work-unit extraction
//!
//! [`plan_component`] walks the component's survivors over
//! [`MatchView`] (the engine's resident graph or a batch-built
//! [`crate::MatchGraph`] — same code path), simplifies every body atom
//! and constraint under the component's global unifier exactly as
//! [`crate::CombinedQuery::build`] does, and then partitions the
//! simplified conjunction by **variable connectivity**: two atoms land
//! in the same [`WorkUnit`] iff they are linked by a chain of shared
//! variables (constraints link the units of their variables too). This
//! is the search-space decomposition the combined query admits after
//! §4.2 simplification — entangled queries share *answers* through
//! their heads and postconditions, but their bodies touch disjoint
//! variables unless the global unifier actually merged them, so a giant
//! ring of 10,000 pairwise-entangled queries yields thousands of small
//! independent joins instead of one 30,000-atom join. Fully ground
//! atoms and constraints (no variables at all after simplification)
//! become per-plan membership checks.
//!
//! # Deterministic merge
//!
//! Because the units are variable-disjoint, a valuation of the whole
//! combined body is exactly one valuation per unit, glued together.
//! [`evaluate_plan`] evaluates each unit with `LIMIT 1` and merges the
//! per-unit valuations by unit index. The merged result equals the
//! *sequential* evaluator's first solution because the evaluator's
//! greedy join order breaks ties structurally (see
//! `choose_atom` in `eq_db`): an atom's ordering key depends only on
//! its own unit's bindings, so the backtracking search over the whole
//! body explores each unit's assignments in exactly the order the
//! unit-local search does, and its first full solution is the
//! composition of the per-unit firsts. The engine property-tests this
//! equivalence (intra-parallel ≡ sequential, answer for answer) in
//! both engine modes.
//!
//! # Shared-variable splitting: biconnected regions
//!
//! Variable-connectivity partitioning collapses the moment the global
//! unifier chains variables *across* bodies: a ring of queries whose
//! postconditions name their neighbours' body variables yields **one**
//! work unit spanning the whole component, and the flush serializes
//! again. For such units, [`split_unit`] decomposes the variable graph
//! (variables as vertices, one clique per atom/constraint over its
//! variables) into **biconnected regions**: the blocks of the graph,
//! glued at articulation variables. Because two blocks share at most
//! one vertex, the block-cut structure is a tree, and the articulation
//! variables are exactly the join keys between regions.
//!
//! Region evaluation is Yannakakis over that tree, run as a
//! **streaming articulation projection** (the default): bottom-up,
//! children first, each region *streams* its local solutions through
//! `eq_db`'s visitor enumeration and retains only a witness set of
//! parent-articulation values bound by some locally-extensible
//! solution — memory proportional to the articulation-value domain,
//! never to the region's solution count; the root region streams until
//! its first extensible solution. Top-down, the one chosen joint
//! answer is re-enumerated region by region with the parent
//! articulation variable *pinned* to the chosen value as an equality
//! constraint pair, stopping at the first extensible solution — which
//! is provably the representative the materialized semi-join would
//! keep, because constraints never influence the evaluator's join
//! order. The result is **exact** — a solution is produced iff the
//! unit has one — and **deterministic** (independent of thread count;
//! the tree walk is sequential within a unit, units run in parallel),
//! but it is the tree-join's first solution, not necessarily the one
//! the sequential whole-unit backtracking search would find first;
//! when a unit's solution is unique the two coincide. The older
//! **materialized** mode ([`SplitOptions::streaming`]` = false`) —
//! enumerate up to [`SplitOptions::region_cap`] solutions per region
//! in parallel, semi-join the sets, fall back to whole-unit evaluation
//! on cap overflow — is kept as the property-test oracle; streaming
//! needs no cap and no fallback. Splitting itself is gated by a
//! work/overhead crossover ([`SplitOptions::crossover`]): small units
//! evaluate faster whole than through per-region dispatch.
//!
//! Components below [`crate::EngineConfig::intra_component_threshold`]
//! never reach this module — they evaluate through the plain
//! [`crate::CombinedQuery`] path, which this module's result is
//! guaranteed (and tested) to agree with.

use crate::combine::{distribute_heads, QueryAnswer};
use crate::graph::MatchView;
use crate::pool;
use eq_db::{Database, DbError, Valuation};
use eq_ir::{Atom, CmpOp, Constraint, FastMap, FastSet, QueryId, Term, Value, Var};
use eq_unify::Unifier;
use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

/// Knobs for shared-variable work-unit splitting (see the module docs'
/// "biconnected regions" section). Derived from
/// [`crate::EngineConfig::intra_split_min_atoms`],
/// [`crate::EngineConfig::intra_region_cap`],
/// [`crate::EngineConfig::intra_split_crossover`], and
/// [`crate::EngineConfig::intra_split_streaming`] by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitOptions {
    /// Units with at least this many atoms are analyzed for
    /// biconnected-region splitting; smaller units always evaluate
    /// whole. `usize::MAX` disables splitting entirely.
    pub min_atoms: usize,
    /// Per-region solution-enumeration cap for the **materialized**
    /// semi-join phase (`streaming: false`). A region that would exceed
    /// it aborts the split and the unit falls back to whole-unit
    /// evaluation (completeness is never at stake; the cap bounds
    /// memory). The streaming path never materializes and ignores it.
    pub region_cap: usize,
    /// Work/overhead crossover for the split decision: a unit that
    /// decomposes into `r` regions actually splits only when
    /// `atoms² ≥ crossover × r`. Region dispatch has a fixed per-region
    /// cost (plan walk, per-region join setup, witness bookkeeping)
    /// that whole-unit evaluation does not pay, so small units — where
    /// the combined join's quadratic atom-selection scan is still cheap
    /// — evaluate faster whole (measured crossover ≈ n=600..1200 chain
    /// queries; see the README scaling guide). `0` always splits.
    pub crossover: usize,
    /// Evaluate split units by **streaming articulation projection**
    /// (bottom-up witness maps + top-down pinned re-enumeration; memory
    /// bounded by articulation-domain width) instead of materializing
    /// each region's solutions for the semi-join. The materialized path
    /// is kept as the property-test oracle the streaming path is
    /// checked against, answer for answer.
    pub streaming: bool,
}

impl Default for SplitOptions {
    fn default() -> Self {
        SplitOptions {
            min_atoms: 16,
            region_cap: 4096,
            crossover: 4096,
            streaming: true,
        }
    }
}

impl SplitOptions {
    /// Splitting disabled: every unit evaluates whole.
    pub fn disabled() -> Self {
        SplitOptions {
            min_atoms: usize::MAX,
            ..Default::default()
        }
    }
}

/// One independently evaluable piece of a combined query: a maximal
/// variable-connected sub-conjunction of the simplified body, plus the
/// constraints over its variables.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Simplified body atoms of this unit (each shares a variable chain
    /// with every other atom of the unit, and none with any other
    /// unit).
    pub atoms: Vec<Atom>,
    /// Simplified constraints whose variables belong to this unit.
    pub constraints: Vec<Constraint>,
    /// Biconnected-region decomposition, present when the unit met
    /// [`SplitOptions::min_atoms`] and actually decomposes (≥ 2
    /// regions). `atoms`/`constraints` stay authoritative — the region
    /// path falls back to them on enumeration overflow.
    pub regions: Option<RegionPlan>,
}

/// The biconnected-region decomposition of one shared-variable work
/// unit: regions tiled over the unit's atoms, arranged in a block-cut
/// tree whose edges are articulation variables.
#[derive(Clone, Debug)]
pub struct RegionPlan {
    /// Regions in deterministic order (by first atom of the region in
    /// the unit's body order). Region 0 is the tree root.
    pub regions: Vec<Region>,
    /// The [`SplitOptions::region_cap`] in force when the plan was
    /// built; in materialized mode, a region whose enumeration reaches
    /// it aborts the split at evaluation time. Ignored when streaming.
    pub region_cap: usize,
    /// Evaluate by streaming articulation projection (the default)
    /// instead of the materialized semi-join; see
    /// [`SplitOptions::streaming`].
    pub streaming: bool,
}

/// One biconnected region: a sub-conjunction that overlaps the rest of
/// its unit in exactly one variable per tree edge.
#[derive(Clone, Debug)]
pub struct Region {
    /// The region's atoms, in unit body order.
    pub atoms: Vec<Atom>,
    /// Constraints whose variables live in this region.
    pub constraints: Vec<Constraint>,
    /// The articulation variable shared with the parent region (`None`
    /// for the root).
    pub parent_var: Option<Var>,
    /// Child regions in the block-cut tree.
    pub children: Vec<usize>,
}

/// The partitioned evaluation plan for one matched component: work
/// units, plus the variable-free residue that needs no search.
#[derive(Clone, Debug)]
pub struct ComponentPlan {
    /// Variable-connected work units, in order of first appearance in
    /// the combined body (survivor order, then body order).
    pub units: Vec<WorkUnit>,
    /// Fully ground body atoms: membership checks, no bindings.
    pub ground_atoms: Vec<Atom>,
    /// Fully ground constraints: checked once against the empty
    /// valuation.
    pub ground_constraints: Vec<Constraint>,
    /// Per-survivor simplified heads, exactly as
    /// [`crate::CombinedQuery::build`] produces them.
    pub heads: Vec<(QueryId, Vec<Atom>)>,
}

/// Union-find over query variables, used to group atoms into
/// variable-connected work units.
#[derive(Default)]
struct VarUnion {
    parent: FastMap<Var, Var>,
}

impl VarUnion {
    /// Iterative find with full path compression — giant components
    /// can chain tens of thousands of variables, so no recursion.
    fn find(&mut self, v: Var) -> Var {
        let mut root = v;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        self.parent.entry(v).or_insert(v);
        let mut cur = v;
        while cur != root {
            let p = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Builds the partitioned plan for a matched component's survivors and
/// global unifier, over any [`MatchView`]. The flat concatenation of
/// `ground_atoms` and every unit's `atoms` is a permutation of the
/// combined query's body; likewise for constraints; `heads` is
/// identical to the combined query's. Units meeting
/// [`SplitOptions::min_atoms`] additionally carry their
/// biconnected-region decomposition ([`split_unit`]) when one exists.
pub fn plan_component<V: MatchView>(
    graph: &V,
    survivors: &[u32],
    global: &Unifier,
    split: &SplitOptions,
) -> ComponentPlan {
    // One shared simplification with the sequential path — the
    // answer-equivalence guarantee requires byte-identical inputs.
    let (atoms, constraints, heads) = crate::combine::simplify_survivors(graph, survivors, global);

    // Variable-connectivity union-find: atoms glue their own variables
    // together; constraints glue their variables' units together.
    let mut uf = VarUnion::default();
    for atom in &atoms {
        let mut vars = atom.vars();
        if let Some(first) = vars.next() {
            for v in vars {
                uf.union(first, v);
            }
        }
    }
    for c in &constraints {
        let mut vars = c.vars();
        if let Some(first) = vars.next() {
            for v in vars {
                uf.union(first, v);
            }
        }
    }

    // Group atoms by their variables' root, units ordered by first
    // appearance (deterministic: body order).
    let mut unit_of_root: FastMap<Var, usize> = FastMap::default();
    let mut units: Vec<WorkUnit> = Vec::new();
    let mut ground_atoms = Vec::new();
    for atom in atoms {
        let first_var = atom.vars().next();
        match first_var {
            None => ground_atoms.push(atom),
            Some(v) => {
                let root = uf.find(v);
                let idx = *unit_of_root.entry(root).or_insert_with(|| {
                    units.push(WorkUnit {
                        atoms: Vec::new(),
                        constraints: Vec::new(),
                        regions: None,
                    });
                    units.len() - 1
                });
                units[idx].atoms.push(atom);
            }
        }
    }
    let mut ground_constraints = Vec::new();
    for c in constraints {
        let first_var = c.vars().next();
        match first_var {
            None => ground_constraints.push(c),
            Some(v) => {
                let root = uf.find(v);
                match unit_of_root.get(&root) {
                    Some(&idx) => units[idx].constraints.push(c),
                    // A constraint over variables no body atom binds can
                    // never become decidable; the sequential evaluator
                    // passes it provisionally forever, so checking it
                    // against the empty valuation (undecidable ⇒ pass)
                    // is equivalent.
                    None => ground_constraints.push(c),
                }
            }
        }
    }

    for unit in &mut units {
        if unit.atoms.len() >= split.min_atoms {
            unit.regions = split_unit(unit, split.region_cap).and_then(|mut rp| {
                // Work/overhead crossover gate: per-region dispatch has
                // a fixed cost that whole-unit evaluation doesn't pay,
                // so small units evaluate faster whole. The unit's
                // whole-evaluation cost scales with atoms² (the greedy
                // atom-selection scan alone is quadratic); the split's
                // overhead scales with the region count.
                let a = unit.atoms.len();
                if a.saturating_mul(a) >= split.crossover.saturating_mul(rp.regions.len()) {
                    rp.streaming = split.streaming;
                    Some(rp)
                } else {
                    None
                }
            });
        }
    }

    ComponentPlan {
        units,
        ground_atoms,
        ground_constraints,
        heads,
    }
}

/// Decomposes one variable-connected work unit into biconnected
/// regions of its variable graph (vertices = the unit's variables, one
/// clique per atom/constraint over its distinct variables). Returns
/// `None` when the unit does not decompose — fewer than two blocks
/// (e.g. a cycle of shared variables, which is 2-connected) — or when a
/// block holds no atom at all (its only edges came from a
/// multi-variable *constraint* bridging two atom clusters; such a
/// constraint spans regions and no region could enforce it, so the
/// unit evaluates whole).
///
/// Guarantees, relied on by [`evaluate_plan`]'s semi-join merge:
///
/// * every **multi-variable** atom/constraint lands in exactly one
///   region (a clique is biconnected, so all of its variables share
///   one block); **single-variable** atoms and constraints are
///   *replicated* into every region containing their variable — a
///   conjunct constrains its variable identically wherever it is
///   checked, so replication is sound, and it keeps each region
///   anchored by its most selective atoms;
/// * two regions overlap in at most one variable (blocks share at most
///   one vertex — the articulation variable), and [`Region::parent_var`]
///   edges form the block-cut tree, so every variable's regions are a
///   connected subtree (the running-intersection property that makes
///   the tree semi-join exact);
/// * region order, the tree, and all contents are deterministic
///   functions of the unit (no hash-iteration order leaks in);
/// * every tree-edge articulation variable is **atom-anchored** in both
///   endpoint regions (bound by every region-local solution, so the
///   merge can always key on it) — units violating this refuse to
///   split;
/// * `region_cap` is at least 1, so an empty region enumeration means
///   a genuinely unsatisfiable region, never a zero-budget truncation
///   (materialized mode; the streaming path has no cap).
pub fn split_unit(unit: &WorkUnit, region_cap: usize) -> Option<RegionPlan> {
    // A zero cap would make every region look empty (= unsatisfiable)
    // instead of truncated; clamp so "no solutions" keeps meaning
    // exactly that and cap overflow still falls back to whole-unit
    // evaluation.
    let region_cap = region_cap.max(1);
    // Variables in first-occurrence order (atoms, then constraints).
    let mut var_id: FastMap<Var, usize> = FastMap::default();
    let mut vars: Vec<Var> = Vec::new();
    let intern = |v: Var, var_id: &mut FastMap<Var, usize>, vars: &mut Vec<Var>| -> usize {
        *var_id.entry(v).or_insert_with(|| {
            vars.push(v);
            vars.len() - 1
        })
    };
    // Distinct-variable lists per atom / constraint, in order.
    let mut atom_vars: Vec<Vec<usize>> = Vec::with_capacity(unit.atoms.len());
    for atom in &unit.atoms {
        let mut vs: Vec<usize> = Vec::new();
        for v in atom.vars() {
            let id = intern(v, &mut var_id, &mut vars);
            if !vs.contains(&id) {
                vs.push(id);
            }
        }
        atom_vars.push(vs);
    }
    let mut constraint_vars: Vec<Vec<usize>> = Vec::with_capacity(unit.constraints.len());
    for c in &unit.constraints {
        let mut vs: Vec<usize> = Vec::new();
        for v in c.vars() {
            let id = intern(v, &mut var_id, &mut vars);
            if !vs.contains(&id) {
                vs.push(id);
            }
        }
        constraint_vars.push(vs);
    }
    let n = vars.len();
    if n < 2 {
        return None;
    }

    // Edges: one clique per multi-variable atom/constraint, dedupped.
    let mut edge_of: FastMap<(usize, usize), usize> = FastMap::default();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbor, edge id)
    {
        let mut add_clique = |vs: &[usize]| {
            for (i, &a) in vs.iter().enumerate() {
                for &b in &vs[i + 1..] {
                    let key = (a.min(b), a.max(b));
                    if edge_of.contains_key(&key) {
                        continue;
                    }
                    let e = edges.len();
                    edge_of.insert(key, e);
                    edges.push(key);
                    adj[a].push((b, e));
                    adj[b].push((a, e));
                }
            }
        };
        for vs in &atom_vars {
            add_clique(vs);
        }
        for vs in &constraint_vars {
            add_clique(vs);
        }
    }
    if edges.is_empty() {
        return None;
    }

    // Iterative Hopcroft–Tarjan: biconnected components as edge sets.
    const UNSEEN: usize = usize::MAX;
    let mut disc = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut parent_edge = vec![UNSEEN; n];
    let mut timer = 0usize;
    let mut edge_stack: Vec<usize> = Vec::new();
    let mut edge_block = vec![UNSEEN; edges.len()];
    let mut block_count = 0usize;
    disc[0] = timer;
    low[0] = timer;
    timer += 1;
    let mut dfs: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some(frame) = dfs.last_mut() {
        let v = frame.0;
        if frame.1 < adj[v].len() {
            let (w, e) = adj[v][frame.1];
            frame.1 += 1;
            if e == parent_edge[v] {
                continue;
            }
            if disc[w] == UNSEEN {
                edge_stack.push(e);
                parent_edge[w] = e;
                disc[w] = timer;
                low[w] = timer;
                timer += 1;
                dfs.push((w, 0));
            } else if disc[w] < disc[v] {
                // Back edge to an ancestor; the reverse direction of an
                // already-traversed edge (disc[w] > disc[v]) is skipped.
                edge_stack.push(e);
                low[v] = low[v].min(disc[w]);
            }
        } else {
            dfs.pop();
            if let Some(up) = dfs.last() {
                let u = up.0;
                low[u] = low[u].min(low[v]);
                if low[v] >= disc[u] {
                    // u closes a block: pop edges down to the tree edge
                    // into v. The tree edge is on the stack by the DFS
                    // invariant; an empty pop would mean the traversal
                    // state is corrupt, so refuse the split (sound: the
                    // unit just evaluates whole).
                    let block = block_count;
                    block_count += 1;
                    loop {
                        let e = edge_stack.pop()?;
                        edge_block[e] = block;
                        if e == parent_edge[v] {
                            break;
                        }
                    }
                }
            }
        }
    }
    debug_assert!(edge_stack.is_empty(), "unit variable graph is connected");
    if block_count < 2 {
        return None;
    }

    // Order blocks deterministically by their first atom in body order,
    // and map every atom/constraint to its block: multi-variable ones
    // to the block of their first variable pair, single-variable ones
    // (and the rare constraint over an articulation variable alone) to
    // the lowest-ordered block containing the variable. The clique edge
    // exists by construction; a miss means the edge bookkeeping is
    // inconsistent, so `None` — callers refuse the split, which is
    // always sound.
    let raw_block = |vs: &[usize]| -> Option<usize> {
        let key = (vs[0].min(vs[1]), vs[0].max(vs[1]));
        let e = edge_of.get(&key)?;
        edge_block.get(*e).copied()
    };
    let mut order_key = vec![usize::MAX; block_count];
    for (ai, vs) in atom_vars.iter().enumerate() {
        if vs.len() >= 2 {
            let b = raw_block(vs)?;
            order_key[b] = order_key[b].min(ai);
        }
    }
    // A block with no atom clique exists iff a multi-variable
    // *constraint* is the only bridge between two atom clusters. That
    // constraint would span regions — no single region could enforce
    // it — so the unit must evaluate whole.
    if order_key.contains(&usize::MAX) {
        return None;
    }
    let mut by_order: Vec<usize> = (0..block_count).collect();
    by_order.sort_by_key(|&b| order_key[b]);
    let mut new_id = vec![0usize; block_count];
    for (rank, &b) in by_order.iter().enumerate() {
        new_id[b] = rank;
    }

    // Region vertex sets (from block edges) and the per-variable block
    // lists that define articulation variables.
    let mut region_vars: Vec<Vec<usize>> = vec![Vec::new(); block_count];
    let mut var_regions: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (e, &(a, b)) in edges.iter().enumerate() {
        let r = new_id[edge_block[e]];
        for vid in [a, b] {
            if !var_regions[vid].contains(&r) {
                var_regions[vid].push(r);
                region_vars[r].push(vid);
            }
        }
    }
    for regions in &mut var_regions {
        regions.sort_unstable();
    }

    let mut regions: Vec<Region> = (0..block_count)
        .map(|_| Region {
            atoms: Vec::new(),
            constraints: Vec::new(),
            parent_var: None,
            children: Vec::new(),
        })
        .collect();
    // Multi-variable atoms/constraints go to their (unique) block.
    // Single-variable ones are **replicated into every region
    // containing the variable**: a conjunct constrains its variable
    // identically wherever it is checked, so replication is sound, and
    // it keeps every region anchored — a region whose only selective
    // atom sat across the articulation boundary would otherwise
    // enumerate an unfiltered cross product and blow the cap.
    for (ai, vs) in atom_vars.iter().enumerate() {
        if vs.len() >= 2 {
            let r = new_id[raw_block(vs)?];
            regions[r].atoms.push(unit.atoms[ai].clone());
        } else {
            for &r in &var_regions[vs[0]] {
                regions[r].atoms.push(unit.atoms[ai].clone());
            }
        }
    }
    for (ci, vs) in constraint_vars.iter().enumerate() {
        if vs.len() >= 2 {
            let r = new_id[raw_block(vs)?];
            regions[r].constraints.push(unit.constraints[ci]);
        } else {
            for &r in &var_regions[vs[0]] {
                regions[r].constraints.push(unit.constraints[ci]);
            }
        }
    }

    // Block-cut tree, rooted at region 0: BFS where expansion goes
    // through articulation variables, so every tree edge carries
    // exactly the variable its endpoints share.
    let mut visited = vec![false; block_count];
    visited[0] = true;
    let mut queue = VecDeque::from([0usize]);
    let mut reached = 1usize;
    while let Some(r) = queue.pop_front() {
        let mut shared: Vec<usize> = region_vars[r]
            .iter()
            .copied()
            .filter(|&v| var_regions[v].len() > 1)
            .collect();
        shared.sort_unstable();
        for v in shared {
            for &r2 in &var_regions[v] {
                if !visited[r2] {
                    visited[r2] = true;
                    reached += 1;
                    regions[r2].parent_var = Some(vars[v]);
                    regions[r].children.push(r2);
                    queue.push_back(r2);
                }
            }
        }
    }
    debug_assert_eq!(reached, block_count, "block-cut tree spans the unit");
    if reached != block_count {
        // Disconnected block-cut tree (the unit's variable graph is
        // connected, so this is defensive): refuse the split.
        return None;
    }

    // Anchoring validity: every tree-edge articulation variable must be
    // bound by an *atom* of both endpoint regions — the merge keys on
    // the articulation value of each region-local solution, and a
    // variable a region sees only through a replicated constraint never
    // binds. (Possible when a variable's only atoms sit across the
    // boundary and a single-variable constraint carried it into this
    // region's variable set.) Such units evaluate whole.
    for region in &regions {
        let mut anchors: Vec<Var> = Vec::new();
        if let Some(pv) = region.parent_var {
            anchors.push(pv);
        }
        for &c in &region.children {
            if let Some(pv) = regions[c].parent_var {
                anchors.push(pv);
            }
        }
        for v in anchors {
            if !region.atoms.iter().any(|a| a.vars().any(|av| av == v)) {
                return None;
            }
        }
    }

    Some(RegionPlan {
        regions,
        region_cap,
        streaming: true,
    })
}

/// Outcome of one work unit's `LIMIT 1` evaluation.
enum UnitResult {
    /// First valuation of the unit's sub-conjunction.
    Sat(Valuation),
    /// The sub-conjunction has no solution: the whole component has
    /// none.
    Unsat,
    /// Not evaluated because another unit already proved `Unsat` (early
    /// exit); only possible when the overall answer is `None`.
    Skipped,
}

/// One claimable piece of a plan's parallel phase: a whole (unsplit)
/// unit, one biconnected region of a materialized-mode split unit, or
/// one entire streaming-mode split unit (the streaming tree walk is
/// sequential within a unit — that's what makes it deterministic — so
/// the unit is the parallelism grain).
#[derive(Clone, Copy)]
enum WorkItem<'a> {
    Unit(usize),
    Region(usize, usize, &'a RegionPlan),
    SplitUnit(usize, &'a RegionPlan),
}

/// Result of one [`WorkItem`].
enum ItemResult {
    Unit(UnitResult),
    /// A region's enumerated solutions (up to the plan's cap; a full
    /// cap'-worth means possibly truncated and triggers the whole-unit
    /// fallback). Materialized mode only.
    Region(Vec<Valuation>),
    /// A streaming split unit's outcome plus its counters: solutions
    /// streamed through the witness pass, and the peak witness-map
    /// size (entries in any single region's articulation-value map).
    Split(UnitResult, u64, u64),
}

/// Evaluation counters for one plan, surfaced through
/// `BatchReport::{intra_region_streamed, intra_witness_peak}`: how many
/// region-local solutions the streaming articulation-projection pass
/// consumed (bottom-up witness scan + top-down pinned re-enumeration),
/// and the peak entry count of any single region's witness map — the
/// retained state, bounded by the articulation-value domain, **not** by
/// the region's solution count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Region-local solutions consumed by streaming split units.
    pub region_streamed: u64,
    /// Peak per-region witness-map entry count across streaming split
    /// units.
    pub witness_peak: u64,
}

/// Evaluates a plan against `db`; see [`evaluate_plan_with_stats`] for
/// the full contract. This wrapper discards the plan counters.
pub fn evaluate_plan(
    plan: &ComponentPlan,
    db: &Database,
    threads: usize,
) -> Result<Option<Vec<QueryAnswer>>, DbError> {
    evaluate_plan_with_stats(plan, db, threads).map(|(answers, _)| answers)
}

/// Evaluates a plan against `db`, dispatching work items — whole
/// units, streaming split units, or the biconnected regions of
/// materialized-mode split units — on up to `threads` scoped workers
/// (largest item first; sizes are heavy-tailed when the global unifier
/// merged some variables).
///
/// Returns the component's first coordinated solution — one
/// [`QueryAnswer`] per survivor, in survivor order — or `None` when any
/// unit, region, ground atom, or ground constraint is unsatisfiable,
/// plus the plan's [`PlanStats`].
/// For plans without split units the result is answer-for-answer
/// identical to `CombinedQuery::evaluate(db, 1)` on the same survivors,
/// for every `threads` value (see the module docs for why the merge
/// preserves the sequential answer choice). Split units return the
/// block-cut tree join's first solution instead — still a solution iff
/// the sequential path finds one, still deterministic in the plan and
/// database for every `threads` value, but not necessarily the same
/// valuation unless the unit's solution is unique. Streaming and
/// materialized modes agree answer-for-answer (property-tested): the
/// pinned re-enumeration picks exactly the representative the
/// materialized semi-join would have kept.
pub fn evaluate_plan_with_stats(
    plan: &ComponentPlan,
    db: &Database,
    threads: usize,
) -> Result<(Option<Vec<QueryAnswer>>, PlanStats), DbError> {
    // Whole-conjunction validation first, exactly like the one-shot
    // evaluator: an unknown relation anywhere in the body is an error
    // even if some other unit is unsatisfiable.
    db.check_atoms(&plan.ground_atoms)?;
    for unit in &plan.units {
        db.check_atoms(&unit.atoms)?;
    }

    let mut stats = PlanStats::default();
    let empty = Valuation::default();
    for c in &plan.ground_constraints {
        if !c.check(&|v| empty.get(&v).copied()) {
            return Ok((None, stats));
        }
    }
    for atom in &plan.ground_atoms {
        let mut row: Vec<Value> = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            let Some(c) = t.as_const() else {
                // Defensive: the planner routes only variable-free atoms
                // here. A variable in a "ground" atom can never match a
                // membership check, so the component has no solution.
                return Ok((None, stats));
            };
            row.push(c);
        }
        let present = db.table(atom.relation).is_some_and(|t| t.contains(&row));
        if !present {
            return Ok((None, stats));
        }
    }
    if plan.units.is_empty() {
        return Ok((Some(distribute_heads(&plan.heads, &empty)), stats));
    }

    // Build the claimable work items: whole units; one item per
    // biconnected region for materialized-mode split units; one item
    // per whole split unit in streaming mode (its internal tree walk is
    // sequential — determinism — but distinct units still run in
    // parallel). Items run largest-first on the shared worker pool; the
    // stop flag bails out of remaining claims as soon as any unit or
    // region proves unsatisfiable — a region with zero local solutions
    // makes its whole unit (hence the component) unsatisfiable.
    let mut items: Vec<WorkItem> = Vec::new();
    for (u, unit) in plan.units.iter().enumerate() {
        match &unit.regions {
            Some(rp) if rp.streaming => items.push(WorkItem::SplitUnit(u, rp)),
            Some(rp) => items.extend((0..rp.regions.len()).map(|r| WorkItem::Region(u, r, rp))),
            None => items.push(WorkItem::Unit(u)),
        }
    }
    let item_size = |item: &WorkItem| match *item {
        WorkItem::Unit(u) | WorkItem::SplitUnit(u, _) => plan.units[u].atoms.len(),
        WorkItem::Region(_, r, rp) => rp.regions[r].atoms.len(),
    };
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(item_size(&items[i])));
    let failed = AtomicBool::new(false);
    let produced = pool::parallel_claim(&order, threads, Some(&failed), |idx| match items[idx] {
        WorkItem::Unit(u) => {
            let r = evaluate_unit(&plan.units[u], db);
            if matches!(r, UnitResult::Unsat) {
                failed.store(true, Ordering::Relaxed);
            }
            ItemResult::Unit(r)
        }
        WorkItem::SplitUnit(_, rp) => {
            let (r, streamed, peak) = stream_unit(rp, db);
            if matches!(r, UnitResult::Unsat) {
                failed.store(true, Ordering::Relaxed);
            }
            ItemResult::Split(r, streamed, peak)
        }
        WorkItem::Region(_, r, rp) => {
            let region = &rp.regions[r];
            let sols = db
                .evaluate_filtered(&region.atoms, &region.constraints, rp.region_cap)
                // Unreachable after the up-front whole-unit validation;
                // treat like an unsatisfiable region defensively.
                .unwrap_or_default();
            if sols.is_empty() {
                failed.store(true, Ordering::Relaxed);
            }
            ItemResult::Region(sols)
        }
    });
    let mut unit_results: Vec<UnitResult> = Vec::with_capacity(plan.units.len());
    unit_results.resize_with(plan.units.len(), || UnitResult::Skipped);
    let mut region_sols: FastMap<(usize, usize), Vec<Valuation>> = FastMap::default();
    for (idx, result) in produced {
        match (items[idx], result) {
            (WorkItem::Unit(u), ItemResult::Unit(res)) => unit_results[u] = res,
            (WorkItem::SplitUnit(u, _), ItemResult::Split(res, streamed, peak)) => {
                unit_results[u] = res;
                stats.region_streamed += streamed;
                stats.witness_peak = stats.witness_peak.max(peak);
            }
            (WorkItem::Region(u, r, _), ItemResult::Region(sols)) => {
                region_sols.insert((u, r), sols);
            }
            // Item kinds are fixed per index; a mismatch cannot happen,
            // and ignoring one degrades to Skipped (= no solution).
            _ => {}
        }
    }

    // Sequential merge pass: materialized split units go through the
    // tree semi-join (falling back to whole-unit evaluation when a
    // region hit the enumeration cap); streaming units already carry
    // their result. An Unsat or Skipped anything means the component
    // has no solution this round.
    for (u, unit) in plan.units.iter().enumerate() {
        let Some(rp) = &unit.regions else { continue };
        if rp.streaming {
            continue;
        }
        let mut sols: Vec<Vec<Valuation>> = Vec::with_capacity(rp.regions.len());
        let mut missing = false;
        let mut truncated = false;
        for r in 0..rp.regions.len() {
            match region_sols.remove(&(u, r)) {
                Some(s) => {
                    truncated |= s.len() >= rp.region_cap;
                    sols.push(s);
                }
                None => {
                    // Skipped via the stop flag: something else already
                    // proved the component unsatisfiable.
                    missing = true;
                    break;
                }
            }
        }
        unit_results[u] = if missing {
            UnitResult::Skipped
        } else if sols.iter().any(|s| s.is_empty()) {
            UnitResult::Unsat
        } else if truncated {
            // A region may have overflowed the cap: the semi-join could
            // miss keys, so evaluate the unit whole (complete, and the
            // same deterministic path the unsplit plan takes).
            evaluate_unit(unit, db)
        } else {
            match semijoin_merge(rp, &sols) {
                Some(val) => UnitResult::Sat(val),
                None => UnitResult::Unsat,
            }
        };
    }

    let mut merged = Valuation::default();
    for r in &unit_results {
        match r {
            UnitResult::Sat(val) => {
                // Units are variable-disjoint: plain union.
                for (&v, &value) in val.iter() {
                    merged.insert(v, value);
                }
            }
            UnitResult::Unsat | UnitResult::Skipped => return Ok((None, stats)),
        }
    }
    Ok((Some(distribute_heads(&plan.heads, &merged)), stats))
}

/// Streaming articulation-projection evaluation of one split unit (the
/// default mode; see the module docs). **Bottom-up**, children first:
/// each non-root region streams its local solutions through
/// [`Database::evaluate_visit`] and retains only a **witness set** of
/// parent-articulation values bound by some locally-extensible solution
/// — memory is bounded by the articulation-value domain, never by the
/// region's solution count, and there is no enumeration cap or
/// whole-unit fallback. The root streams until its first extensible
/// solution. **Top-down**, the one chosen joint answer is re-enumerated
/// region by region: the region query re-runs with its parent
/// articulation variable *pinned* to the chosen value via a `Ge`/`Le`
/// constraint pair (the IR has no `Eq` comparator) and stops at its
/// first extensible solution. Constraints never influence the
/// evaluator's join order (`choose_atom` inspects only bindings), so
/// the pinned search enumerates exactly the subsequence of the
/// region's solutions binding that value, in the region's own order —
/// its first extensible hit is precisely the representative the
/// materialized [`semijoin_merge`] keeps, which is why the two modes
/// agree answer for answer (property-tested).
///
/// As a constraint-aware refinement, a child whose witness set kept
/// exactly one value is **pushed down** into the parent's enumeration
/// as the same pinned constraint pair, so the join prunes the moment
/// the articulation variable binds instead of filtering full solutions
/// at the leaf; multi-value witness sets are not expressible as a
/// comparison constraint and filter through the extensibility check.
///
/// Returns the unit outcome plus counters: region-local solutions
/// streamed (bottom-up + top-down) and the peak witness-set size.
fn stream_unit(rp: &RegionPlan, db: &Database) -> (UnitResult, u64, u64) {
    let n = rp.regions.len();
    let mut streamed: u64 = 0;
    let mut peak: u64 = 0;
    // Pre-order from the root; reverse visit order is children-first.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    while let Some(r) = stack.pop() {
        order.push(r);
        stack.extend(&rp.regions[r].children);
    }
    if order.len() != n {
        // Defensive: split_unit guarantees a spanning tree; a malformed
        // one cannot be evaluated, so report no solution.
        return (UnitResult::Unsat, streamed, peak);
    }

    // Locally extensible = every child's articulation value is in that
    // child's (already final) witness set.
    let extensible = |region: &Region, sol: &Valuation, feasible: &[FastSet<Value>]| -> bool {
        region.children.iter().all(|&c| {
            let Some(pv) = rp.regions[c].parent_var else {
                return false;
            };
            sol.get(&pv)
                .is_some_and(|value| feasible[c].contains(value))
        })
    };
    // Singleton push-down (see the doc comment above).
    let push_down = |region: &Region, feasible: &[FastSet<Value>], out: &mut Vec<Constraint>| {
        for &c in &region.children {
            let Some(pv) = rp.regions[c].parent_var else {
                continue;
            };
            if feasible[c].len() == 1 {
                if let Some(&value) = feasible[c].iter().next() {
                    out.push(Constraint::new(
                        Term::var(pv),
                        CmpOp::Ge,
                        Term::Const(value),
                    ));
                    out.push(Constraint::new(
                        Term::var(pv),
                        CmpOp::Le,
                        Term::Const(value),
                    ));
                }
            }
        }
    };

    let mut feasible: Vec<FastSet<Value>> = vec![FastSet::default(); n];
    let mut root_witness: Option<Valuation> = None;
    for &r in order.iter().rev() {
        let region = &rp.regions[r];
        let mut constraints = region.constraints.clone();
        push_down(region, &feasible, &mut constraints);
        match region.parent_var {
            Some(pv) => {
                let mut keys: FastSet<Value> = FastSet::default();
                let res = db.evaluate_visit(&region.atoms, &constraints, |sol| {
                    streamed += 1;
                    if let Some(&key) = sol.get(&pv) {
                        // The extensibility check runs per solution even
                        // for an unseen key (a later extensible solution
                        // may carry a key an earlier inextensible one
                        // did), and is skipped once the key is in — the
                        // exact key set the materialized semi-join keeps.
                        if !keys.contains(&key) && extensible(region, sol, &feasible) {
                            keys.insert(key);
                        }
                    }
                    ControlFlow::Continue(())
                });
                if res.is_err() || keys.is_empty() {
                    // Err is unreachable after the caller's up-front
                    // validation; either way the unit has no solution
                    // to offer.
                    return (UnitResult::Unsat, streamed, peak);
                }
                peak = peak.max(keys.len() as u64);
                feasible[r] = keys;
            }
            None => {
                let mut witness: Option<Valuation> = None;
                let res = db.evaluate_visit(&region.atoms, &constraints, |sol| {
                    streamed += 1;
                    if extensible(region, sol, &feasible) {
                        witness = Some(sol.clone());
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                match (res, witness) {
                    (Ok(_), Some(w)) => root_witness = Some(w),
                    _ => return (UnitResult::Unsat, streamed, peak),
                }
            }
        }
    }

    // Top-down: glue the root witness, then re-enumerate each child
    // region pinned to its chosen articulation value. Every pinned
    // search hits: the key entered the witness set off an extensible
    // solution, and child witness sets are final.
    let Some(root) = root_witness else {
        // Unreachable: region 0 is always the root and was visited.
        return (UnitResult::Unsat, streamed, peak);
    };
    let push_children =
        |region: &Region, sol: &Valuation, walk: &mut Vec<(usize, Value)>| -> bool {
            for &c in &region.children {
                let Some(pv) = rp.regions[c].parent_var else {
                    return false;
                };
                let Some(&key) = sol.get(&pv) else {
                    return false;
                };
                walk.push((c, key));
            }
            true
        };
    let mut merged = Valuation::default();
    for (&v, &value) in root.iter() {
        merged.insert(v, value);
    }
    let mut walk: Vec<(usize, Value)> = Vec::new();
    if !push_children(&rp.regions[0], &root, &mut walk) {
        return (UnitResult::Unsat, streamed, peak);
    }
    while let Some((r, key)) = walk.pop() {
        let region = &rp.regions[r];
        let Some(pv) = region.parent_var else {
            // Defensive: only non-root regions are walked.
            return (UnitResult::Unsat, streamed, peak);
        };
        let mut constraints = region.constraints.clone();
        push_down(region, &feasible, &mut constraints);
        constraints.push(Constraint::new(Term::var(pv), CmpOp::Ge, Term::Const(key)));
        constraints.push(Constraint::new(Term::var(pv), CmpOp::Le, Term::Const(key)));
        let mut chosen: Option<Valuation> = None;
        let res = db.evaluate_visit(&region.atoms, &constraints, |sol| {
            streamed += 1;
            if extensible(region, sol, &feasible) {
                chosen = Some(sol.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        let (Ok(_), Some(sol)) = (res, chosen) else {
            return (UnitResult::Unsat, streamed, peak);
        };
        for (&v, &value) in sol.iter() {
            merged.insert(v, value);
        }
        if !push_children(region, &sol, &mut walk) {
            return (UnitResult::Unsat, streamed, peak);
        }
    }
    (UnitResult::Sat(merged), streamed, peak)
}

/// The exact tree semi-join over a split unit's block-cut tree (see
/// the module docs): bottom-up, keep per value of each region's parent
/// articulation variable the first locally-enumerated solution every
/// child can extend; top-down, glue the chosen representatives.
/// Returns `None` iff the unit has no solution (given un-truncated
/// region enumerations). Materialized mode only — kept as the oracle
/// the streaming path ([`stream_unit`]) is property-tested against.
fn semijoin_merge(rp: &RegionPlan, sols: &[Vec<Valuation>]) -> Option<Valuation> {
    let n = rp.regions.len();
    // Pre-order from the root; processing it in reverse visits children
    // before parents.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    while let Some(r) = stack.pop() {
        order.push(r);
        stack.extend(&rp.regions[r].children);
    }
    debug_assert_eq!(order.len(), n);

    // For non-root regions: parent-variable value → index of the first
    // extensible local solution. For the root: the index itself.
    let mut feasible: Vec<FastMap<Value, usize>> = Vec::with_capacity(n);
    feasible.resize_with(n, FastMap::default);
    let mut root_choice: Option<usize> = None;
    for &r in order.iter().rev() {
        let region = &rp.regions[r];
        let extensible = |sol: &Valuation| {
            region.children.iter().all(|&c| {
                // A walked child always has a parent edge; a missing
                // one means a malformed tree — treat as inextensible.
                let Some(v) = rp.regions[c].parent_var else {
                    return false;
                };
                sol.get(&v)
                    .is_some_and(|value| feasible[c].contains_key(value))
            })
        };
        match region.parent_var {
            Some(pv) => {
                let mut map = FastMap::default();
                for (si, sol) in sols[r].iter().enumerate() {
                    if !extensible(sol) {
                        continue;
                    }
                    // Anchoring (split_unit) guarantees region atoms
                    // bind the articulation variable; skip defensively
                    // otherwise.
                    let Some(&key) = sol.get(&pv) else { continue };
                    map.entry(key).or_insert(si);
                }
                if map.is_empty() {
                    return None; // no child binding survives: unit unsat
                }
                feasible[r] = map;
            }
            None => {
                root_choice = Some(sols[r].iter().position(extensible)?);
            }
        }
    }

    // Top-down reconstruction: every lookup hits by construction (the
    // `?` arms are defensive against a malformed tree and read "no
    // solution" rather than panicking).
    let root_si = root_choice?;
    let mut merged = Valuation::default();
    let mut walk = vec![(0usize, root_si)];
    while let Some((r, si)) = walk.pop() {
        let sol = sols.get(r)?.get(si)?;
        for (&v, &value) in sol.iter() {
            merged.insert(v, value);
        }
        for &c in &rp.regions[r].children {
            let pv = rp.regions[c].parent_var?;
            let key = sol.get(&pv)?;
            let si = *feasible[c].get(key)?;
            walk.push((c, si));
        }
    }
    Some(merged)
}

fn evaluate_unit(unit: &WorkUnit, db: &Database) -> UnitResult {
    match db.evaluate_filtered(&unit.atoms, &unit.constraints, 1) {
        Ok(vals) => match vals.into_iter().next() {
            Some(v) => UnitResult::Sat(v),
            None => UnitResult::Unsat,
        },
        // Unreachable after the up-front validation (the search itself
        // cannot fail); treat like an unsatisfiable unit defensively.
        Err(_) => UnitResult::Unsat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraph;
    use crate::matching::match_component;
    use crate::CombinedQuery;
    use eq_ir::{EntangledQuery, Term, Value, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [(122, "United"), (123, "United"), (134, "Lufthansa")] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    fn plan_for(g: &MatchGraph, members: &[u32]) -> (ComponentPlan, CombinedQuery) {
        let m = match_component(g, members);
        let global = m.global.expect("answerable");
        let plan = plan_component(g, &m.survivors, &global, &SplitOptions::default());
        let cq = CombinedQuery::build(g, &m.survivors, global.clone());
        (plan, cq)
    }

    #[test]
    fn entangled_pair_with_shared_variable_is_one_unit() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let (plan, _) = plan_for(&g, &[0, 1]);
        // The global unifier merges x and y: all three atoms share one
        // variable class, so the body is one unit.
        assert_eq!(plan.units.len(), 1);
        assert_eq!(plan.units[0].atoms.len(), 3);
        assert!(plan.ground_atoms.is_empty());
    }

    #[test]
    fn disjoint_bodies_split_into_units() {
        // Two ground-entangled queries whose bodies use private
        // variables: two independent units.
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(x, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(y, Rome)",
        ]);
        let (plan, _) = plan_for(&g, &[0, 1]);
        assert_eq!(plan.units.len(), 2);
        assert_eq!(plan.units[0].atoms.len(), 1);
    }

    #[test]
    fn ground_atoms_become_membership_checks() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(122, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(136, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        assert!(plan.units.is_empty());
        assert_eq!(plan.ground_atoms.len(), 2);
        let db = flight_db();
        let par = evaluate_plan(&plan, &db, 4).unwrap();
        let seq = cq.evaluate(&db, 1).unwrap().into_iter().next();
        assert_eq!(par, seq);
        assert!(par.is_some());
    }

    #[test]
    fn missing_ground_atom_means_no_solution() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(999, Paris)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(136, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        assert_eq!(evaluate_plan(&plan, &db, 1).unwrap(), None);
        assert!(cq.evaluate(&db, 1).unwrap().is_empty());
    }

    #[test]
    fn partitioned_answers_match_sequential_for_all_thread_counts() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
            // Note: separate component would not share a global; keep
            // this pair entangled through a second ring.
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        let seq = cq.evaluate(&db, 1).unwrap().into_iter().next();
        for threads in [1, 2, 4, 8] {
            assert_eq!(evaluate_plan(&plan, &db, threads).unwrap(), seq);
        }
    }

    #[test]
    fn unknown_relation_is_an_error_not_a_miss() {
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- Nope(x)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(y, Rome)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1]);
        let db = flight_db();
        assert!(evaluate_plan(&plan, &db, 2).is_err());
        assert!(cq.evaluate(&db, 1).is_err());
    }

    fn raw_unit(atoms: Vec<Atom>) -> WorkUnit {
        WorkUnit {
            atoms,
            constraints: vec![],
            regions: None,
        }
    }

    fn e(a: Term, b: Term) -> Atom {
        Atom::new("E", vec![a, b])
    }

    fn vx(i: u32) -> Term {
        Term::var(Var(i))
    }

    #[test]
    fn chain_unit_splits_into_edge_regions() {
        // x0—x1—x2—x3: every interior variable is an articulation
        // point, so each edge atom is its own region.
        let unit = raw_unit(vec![e(vx(0), vx(1)), e(vx(1), vx(2)), e(vx(2), vx(3))]);
        let rp = split_unit(&unit, 64).expect("chain splits");
        assert_eq!(rp.regions.len(), 3);
        // Root is the region of the first atom; children chain off it
        // keyed by the shared articulation variable.
        assert_eq!(rp.regions[0].parent_var, None);
        assert_eq!(rp.regions[1].parent_var, Some(Var(1)));
        assert_eq!(rp.regions[2].parent_var, Some(Var(2)));
        assert_eq!(rp.regions[0].children, vec![1]);
        assert_eq!(rp.regions[1].children, vec![2]);
        // Every atom lands in exactly one region.
        let total: usize = rp.regions.iter().map(|r| r.atoms.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn cycle_unit_does_not_split() {
        // x0—x1—x2—x0 is 2-connected: one block, no articulation vars.
        let unit = raw_unit(vec![e(vx(0), vx(1)), e(vx(1), vx(2)), e(vx(2), vx(0))]);
        assert!(split_unit(&unit, 64).is_none());
    }

    #[test]
    fn single_variable_atoms_replicate_into_every_region_with_their_var() {
        let unit = raw_unit(vec![
            e(vx(0), vx(1)),
            e(vx(1), vx(2)),
            Atom::new("E", vec![vx(1), Term::int(7)]), // only var x1
        ]);
        let rp = split_unit(&unit, 64).expect("splits at x1");
        assert_eq!(rp.regions.len(), 2);
        // x1 is the articulation variable: its single-var atom anchors
        // *both* regions (replication is sound — same conjunct, same
        // variable).
        assert_eq!(rp.regions[0].atoms.len(), 2);
        assert_eq!(rp.regions[1].atoms.len(), 2);
    }

    #[test]
    fn constraint_bridged_clusters_refuse_to_split() {
        use eq_ir::CmpOp;
        // Two atom clusters glued only by the constraint x1 < x2: the
        // bridge block holds no atom, and no single region could
        // enforce the constraint — the unit must evaluate whole.
        let unit = WorkUnit {
            atoms: vec![e(vx(0), vx(1)), e(vx(2), vx(3))],
            constraints: vec![Constraint::new(vx(1), CmpOp::Lt, vx(2))],
            regions: None,
        };
        assert!(split_unit(&unit, 64).is_none());
        // A multi-variable constraint *inside* a cluster is fine: its
        // clique edge coincides with an atom's, so its block is a real
        // region and the split goes through.
        let unit = WorkUnit {
            atoms: vec![e(vx(0), vx(1)), e(vx(1), vx(2))],
            constraints: vec![Constraint::new(vx(0), CmpOp::Lt, vx(1))],
            regions: None,
        };
        let rp = split_unit(&unit, 64).expect("in-cluster constraint splits");
        assert_eq!(rp.regions.len(), 2);
        assert_eq!(rp.regions[0].constraints.len(), 1);
    }

    #[test]
    fn zero_region_cap_is_clamped_not_unsat() {
        // Materialized mode: region_cap 0 must not reclassify every
        // region as unsatisfiable; it clamps to 1, so overflowing
        // regions fall back to whole-unit evaluation and the answer
        // survives.
        let db = split_db();
        let atoms = vec![
            Atom::new("A", vec![vx(0), vx(1)]),
            Atom::new("B", vec![vx(0), vx(2)]),
        ];
        let mut unit = raw_unit(atoms);
        unit.regions = split_unit(&unit, 0);
        let rp = unit.regions.as_mut().expect("still splits");
        rp.streaming = false;
        assert_eq!(rp.region_cap, 1);
        let plan = ComponentPlan {
            units: vec![unit],
            ground_atoms: vec![],
            ground_constraints: vec![],
            heads: vec![(QueryId(0), vec![Atom::new("H", vec![vx(0)])])],
        };
        let answers = evaluate_plan(&plan, &db, 2).unwrap().expect("satisfiable");
        assert_eq!(answers[0].tuples[0], vec![Value::int(2)]);
    }

    fn split_db() -> Database {
        let mut db = Database::new();
        db.create_table("A", &["x", "y"]).unwrap();
        db.create_table("B", &["x", "z"]).unwrap();
        for (x, y) in [(1, 10), (2, 20)] {
            db.insert("A", vec![Value::int(x), Value::int(y)]).unwrap();
        }
        db.insert("B", vec![Value::int(2), Value::int(30)]).unwrap();
        db
    }

    /// A plan whose single unit is pre-split, with one head atom that
    /// exposes the merged valuation as a grounded tuple.
    fn split_plan(
        atoms: Vec<Atom>,
        head_vars: &[u32],
        cap: usize,
        streaming: bool,
    ) -> ComponentPlan {
        let mut unit = raw_unit(atoms);
        unit.regions = split_unit(&unit, cap).map(|mut rp| {
            rp.streaming = streaming;
            rp
        });
        assert!(unit.regions.is_some(), "test unit must split");
        let head = Atom::new("H", head_vars.iter().map(|&i| vx(i)).collect::<Vec<_>>());
        ComponentPlan {
            units: vec![unit],
            ground_atoms: vec![],
            ground_constraints: vec![],
            heads: vec![(QueryId(0), vec![head])],
        }
    }

    #[test]
    fn semijoin_rejects_locally_first_but_globally_infeasible_choices() {
        // Region A(x,y) enumerates x=1 first, but region B(x,z) only
        // admits x=2: the merge must pick A's second solution, not
        // fail or return an inconsistent pair — in both modes.
        let db = split_db();
        for streaming in [true, false] {
            let plan = split_plan(
                vec![
                    Atom::new("A", vec![vx(0), vx(1)]),
                    Atom::new("B", vec![vx(0), vx(2)]),
                ],
                &[0, 1, 2],
                64,
                streaming,
            );
            for threads in [1, 2, 4] {
                let answers = evaluate_plan(&plan, &db, threads)
                    .unwrap()
                    .expect("x=2 is consistent");
                assert_eq!(
                    answers[0].tuples[0],
                    vec![Value::int(2), Value::int(20), Value::int(30)]
                );
            }
        }
    }

    #[test]
    fn split_is_exact_on_unsatisfiable_units() {
        let mut db = split_db();
        // Remove B's only row: the B region enumerates nothing.
        db.delete("B", &[Value::int(2), Value::int(30)]).unwrap();
        for streaming in [true, false] {
            let plan = split_plan(
                vec![
                    Atom::new("A", vec![vx(0), vx(1)]),
                    Atom::new("B", vec![vx(0), vx(2)]),
                ],
                &[0],
                64,
                streaming,
            );
            assert_eq!(evaluate_plan(&plan, &db, 2).unwrap(), None);
        }
    }

    #[test]
    fn region_cap_overflow_falls_back_to_whole_unit_evaluation() {
        // Materialized mode, cap 1 < the A region's 2 solutions: the
        // split aborts and the unit evaluates whole — same first answer
        // as the plain path. (Streaming mode has no cap to overflow.)
        let db = split_db();
        let atoms = vec![
            Atom::new("A", vec![vx(0), vx(1)]),
            Atom::new("B", vec![vx(0), vx(2)]),
        ];
        let plan = split_plan(atoms.clone(), &[0, 1, 2], 1, false);
        let whole = db.evaluate_filtered(&atoms, &[], 1).unwrap();
        let answers = evaluate_plan(&plan, &db, 2).unwrap().expect("satisfiable");
        let expect: Vec<Value> = [Var(0), Var(1), Var(2)]
            .iter()
            .map(|v| whole[0][v])
            .collect();
        assert_eq!(answers[0].tuples[0], expect);
    }

    #[test]
    fn long_shared_chain_split_agrees_with_whole_unit_satisfiability() {
        // E(i, i+1) rows form one path; the 12-atom chain unit splits
        // into 12 regions whose join admits exactly the path valuation.
        let mut db = Database::new();
        db.create_table("E", &["a", "b"]).unwrap();
        for i in 0..13 {
            db.insert("E", vec![Value::int(i), Value::int(i + 1)])
                .unwrap();
        }
        let atoms: Vec<Atom> = (0..12).map(|i| e(vx(i), vx(i + 1))).collect();
        let head_vars: Vec<u32> = (0..13).collect();
        let whole = db.evaluate_filtered(&atoms, &[], 1).unwrap();
        let expect: Vec<Value> = (0..13).map(|i| whole[0][&Var(i)]).collect();
        for streaming in [true, false] {
            let plan = split_plan(atoms.clone(), &head_vars, 64, streaming);
            assert_eq!(
                plan.units[0].regions.as_ref().unwrap().regions.len(),
                12,
                "every interior variable is an articulation point"
            );
            for threads in [1, 3, 8] {
                let answers = evaluate_plan(&plan, &db, threads).unwrap().unwrap();
                assert_eq!(answers[0].tuples[0], expect, "chain solution is unique");
            }
        }
    }

    #[test]
    fn streaming_matches_materialized_answer_for_answer() {
        // Many locally-valid keys per region, several of them globally
        // consistent: both modes must pick the *same* representative
        // (the pinned re-enumeration provably reproduces the
        // materialized semi-join's per-key first choice).
        let mut db = Database::new();
        db.create_table("A", &["x", "y"]).unwrap();
        db.create_table("B", &["x", "z"]).unwrap();
        for x in 0..6 {
            for y in 0..3 {
                db.insert("A", vec![Value::int(x), Value::int(10 * x + y)])
                    .unwrap();
            }
        }
        for x in [2, 4, 5] {
            for z in 0..2 {
                db.insert("B", vec![Value::int(x), Value::int(100 * x + z)])
                    .unwrap();
            }
        }
        let atoms = vec![
            Atom::new("A", vec![vx(0), vx(1)]),
            Atom::new("B", vec![vx(0), vx(2)]),
        ];
        let streaming = split_plan(atoms.clone(), &[0, 1, 2], 4096, true);
        let materialized = split_plan(atoms, &[0, 1, 2], 4096, false);
        for threads in [1, 2, 4] {
            let s = evaluate_plan(&streaming, &db, threads).unwrap();
            let m = evaluate_plan(&materialized, &db, threads).unwrap();
            assert_eq!(s, m, "modes diverged at {threads} threads");
            assert!(s.is_some());
        }
    }

    #[test]
    fn witness_peak_is_bounded_by_articulation_domain_not_solution_count() {
        // Each region holds domain² local solutions (x × private var),
        // but the witness map keys only on the articulation variable:
        // peak stays ≤ the domain size while the streamed count shows
        // the full enumeration volume passing through.
        const DOMAIN: i64 = 8;
        let mut db = Database::new();
        db.create_table("A", &["x", "y"]).unwrap();
        db.create_table("B", &["x", "z"]).unwrap();
        for x in 0..DOMAIN {
            for p in 0..DOMAIN {
                db.insert("A", vec![Value::int(x), Value::int(10 + p)])
                    .unwrap();
                db.insert("B", vec![Value::int(x), Value::int(100 + p)])
                    .unwrap();
            }
        }
        let atoms = vec![
            Atom::new("A", vec![vx(0), vx(1)]),
            Atom::new("B", vec![vx(0), vx(2)]),
        ];
        let plan = split_plan(atoms, &[0, 1, 2], 1 << 20, true);
        let (answers, stats) = evaluate_plan_with_stats(&plan, &db, 2).unwrap();
        assert!(answers.is_some());
        assert!(
            stats.witness_peak > 0 && stats.witness_peak <= DOMAIN as u64,
            "witness peak {} exceeds articulation domain {}",
            stats.witness_peak,
            DOMAIN
        );
        // The child region streamed its full DOMAIN² solution set while
        // retaining at most DOMAIN witness entries.
        assert!(
            stats.region_streamed >= (DOMAIN * DOMAIN) as u64,
            "streamed only {}",
            stats.region_streamed
        );
    }

    #[test]
    fn plan_covers_exactly_the_combined_body() {
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(z1)} S(z2) <- D3(z1, z2)",
        ]);
        let (plan, cq) = plan_for(&g, &[0, 1, 2]);
        let mut plan_atoms: Vec<Atom> = plan.ground_atoms.clone();
        for u in &plan.units {
            plan_atoms.extend(u.atoms.iter().cloned());
        }
        let mut body = cq.body.clone();
        plan_atoms.sort();
        body.sort();
        assert_eq!(plan_atoms, body);
        assert_eq!(plan.heads, cq.heads);
    }
}
