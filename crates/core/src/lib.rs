//! The entangled-query coordination engine — the paper's primary
//! contribution.
//!
//! Pipeline (§4):
//!
//! 1. [`index::AtomIndex`] — the `(Relation, Position, Value/Δ)` index of
//!    §4.1.4 used to discover unifiable head/postcondition pairs without
//!    pairwise scans;
//! 2. [`graph::MatchGraph`] — the unifiability multigraph of §4.1.1,
//!    plus connected-component partitioning (§4.1.2);
//! 3. [`safety`] — the safety condition of §3.1.1 (a postcondition that
//!    unifies with two or more heads makes the set unsafe);
//! 4. [`ucs`] — the unique-coordination-structure condition of §3.1.2
//!    via strongly connected components;
//! 5. [`matching`] — Algorithm 1: unifier propagation with cascading
//!    cleanup (§4.1.3–4.1.4);
//! 6. [`combine`] — combined-query construction and answer distribution
//!    (§4.2);
//! 7. [`resident`] — the persistent match graph that survives across
//!    flushes: slot-keyed edges, incremental component tracking, dirty
//!    sets;
//! 8. [`intra`] — parallel evaluation *inside* one matched component:
//!    the combined query partitioned into variable-disjoint work units
//!    with a deterministic merge
//!    ([`engine::EngineConfig::intra_component_threshold`]);
//! 9. [`engine`] — the D3C engine of §5.1: asynchronous submission,
//!    set-at-a-time and incremental modes over resident match state,
//!    staleness, per-component and intra-component parallelism;
//! 10. [`events`] — bounded per-subscriber event queues with explicit
//!     overflow policies (block / drop-oldest / disconnect), feeding
//!     the service layer's push stream.
//!
//! Steps 3–6 are written against [`graph::MatchView`], so they run over
//! a batch-built [`graph::MatchGraph`] and over the engine's resident
//! state with the same code.
//!
//! [`bruteforce`] implements the generic coordinating-set semantics of
//! §2.3 directly (the NP-hard search of Theorem 2.1); it serves as a
//! correctness oracle for the fast path and as an ablation baseline.
//!
//! The public face of the engine is the [`service`] layer: a clonable
//! [`Coordinator`] handle with [`Session`]-scoped submissions
//! ([`SubmitRequest`] builder, batched parallel admission via
//! [`Session::submit_batch`]), a pushed [`Event`] stream, and the
//! unified [`CoordinationError`] hierarchy ([`error`]). For one-shot,
//! set-at-a-time coordination over a fixed query set, [`coordinate()`]
//! wraps a throwaway `Coordinator` session.

#![forbid(unsafe_code)]

pub mod bruteforce;
pub mod combine;
pub mod coordinate;
mod dispatch;
pub mod durable;
pub mod engine;
pub mod error;
pub mod events;
pub mod ext;
pub mod graph;
pub mod index;
pub mod intra;
pub mod matching;
mod pool;
pub mod resident;
pub mod safety;
pub mod service;
pub mod ucs;

pub use combine::{CombinedQuery, QueryAnswer};
pub use coordinate::{coordinate, coordinate_with_config, CoordinationOutcome, RejectReason};
pub use durable::{DurableCoordinator, DurableError};
pub use engine::{
    BatchReport, CoordinationEngine, EngineConfig, EngineMode, FailReason, NoSolutionPolicy,
    QueryHandle, QueryOutcome, QueryStatus, SubmitError, SubmitOptions,
};
pub use error::{CoordinationError, InvariantViolation};
pub use events::{Events, OverflowPolicy, SubscriberStats};
pub use graph::{Edge, MatchGraph, MatchView};
pub use index::{AtomIndex, AtomRef, ShardedAtomIndex};
pub use intra::{ComponentPlan, WorkUnit};
pub use resident::ResidentGraph;
pub use safety::{SafetyPolicy, SafetyViolation};
pub use service::{Coordinator, Event, LockStats, Session, SubmitRequest, DEFAULT_EVENT_CAPACITY};
pub use ucs::UcsViolation;
