//! One-shot, set-at-a-time coordination over a fixed query set.
//!
//! Since the `Coordinator` service redesign, [`coordinate()`] and
//! [`coordinate_with_config()`] are thin wrappers over a throwaway
//! [`Coordinator`] session: submit the whole set as one batch, flush
//! once, classify the terminal statuses. Queries that stay pending
//! after the single round — no partner, or sidelined by §3.1.1
//! enforcement — are reported as rejected, which is what "one-shot"
//! means.

use crate::combine::QueryAnswer;
use crate::engine::{
    EngineConfig, EngineMode, FailReason, NoSolutionPolicy, QueryOutcome, QueryStatus,
};
use crate::error::CoordinationError;
use crate::matching::MatchStats;
use crate::safety::{self, SafetyPolicy};
use crate::service::{Coordinator, SubmitRequest};
use eq_db::{Database, DbError};
use eq_ir::{EntangledQuery, FastMap, FastSet, QueryId, ValidationError};
use std::fmt;

/// Why a query did not receive an answer in a coordination round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Structurally invalid (empty head, not range-restricted, ...).
    Invalid(ValidationError),
    /// Removed by the safety enforcement of §3.1.1 (its postcondition
    /// unified with more than one head).
    Unsafe,
    /// Its component violated the unique-coordination-structure
    /// condition of §3.1.2.
    NonUcs,
    /// Matching removed it: some postcondition had no satisfier, or its
    /// constraints were inconsistent (CLEANUP).
    Unmatched,
    /// Its component matched but the database had no tuple satisfying
    /// the combined query.
    NoSolution,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Invalid(e) => write!(f, "invalid query: {e}"),
            RejectReason::Unsafe => write!(f, "removed by the safety check"),
            RejectReason::NonUcs => write!(f, "coordination structure not unique"),
            RejectReason::Unmatched => write!(f, "no coordination partner"),
            RejectReason::NoSolution => write!(f, "no coordinated solution in the database"),
        }
    }
}

/// Configuration for one coordination round.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinateConfig {
    /// How to react to safety violations.
    pub safety: SafetyPolicy,
    /// If true, components violating UCS are still evaluated as one
    /// combined query (unsound for completeness — §3.1.2 — but useful
    /// for experiments). Default: reject them.
    pub evaluate_non_ucs: bool,
}

/// Outcome of a coordination round.
#[derive(Debug, Default)]
pub struct CoordinationOutcome {
    /// Answers per query id.
    pub answers: FastMap<QueryId, QueryAnswer>,
    /// Queries that did not get an answer, with reasons. `Unmatched`
    /// entries are the natural "keep pending and retry later" set for a
    /// long-running engine.
    pub rejected: Vec<(QueryId, RejectReason)>,
    /// Aggregated matching statistics across components.
    pub stats: MatchStats,
    /// Number of connected components processed.
    pub component_count: usize,
}

impl CoordinationOutcome {
    /// All answers sorted by query id.
    pub fn all_answers(&self) -> Vec<QueryAnswer> {
        let mut v: Vec<QueryAnswer> = self.answers.values().cloned().collect();
        v.sort_by_key(|a| a.query);
        v
    }

    /// The reject reason for a query, if it was rejected.
    pub fn reason(&self, id: QueryId) -> Option<&RejectReason> {
        self.rejected.iter().find(|(q, _)| *q == id).map(|(_, r)| r)
    }
}

/// Errors aborting a whole round (not per-query rejections).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordinateError {
    /// The workload was unsafe and the policy is
    /// [`SafetyPolicy::RejectAll`].
    UnsafeWorkload(Vec<safety::SafetyViolation>),
    /// A database-layer error. (Kept for API stability: since the
    /// engine-backed rewrite, a combined query referencing an unknown
    /// relation rejects its component's queries with
    /// [`RejectReason::NoSolution`] instead of aborting the round.)
    Db(DbError),
}

impl fmt::Display for CoordinateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinateError::UnsafeWorkload(vs) => {
                write!(f, "workload is unsafe ({} violations)", vs.len())
            }
            CoordinateError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for CoordinateError {}

impl From<DbError> for CoordinateError {
    fn from(e: DbError) -> Self {
        CoordinateError::Db(e)
    }
}

/// Coordinates `queries` against `db` with default configuration
/// (safety violations removed per §3.1.1; non-UCS components rejected).
pub fn coordinate(
    queries: &[EntangledQuery],
    db: &Database,
) -> Result<CoordinationOutcome, CoordinateError> {
    coordinate_with_config(queries, db, CoordinateConfig::default())
}

/// Coordinates `queries` against `db`.
///
/// Queries keep their ids if distinct; otherwise they are assigned
/// sequential ids (slot order). Variables are renamed apart internally,
/// so callers may reuse variable numbers across queries.
///
/// This is a thin wrapper over a one-shot [`Coordinator`] session: the
/// whole set is admitted as one batch, a single set-at-a-time flush
/// runs, and terminal statuses are mapped back to the caller's ids.
/// Queries left pending by the round are rejected — as
/// [`RejectReason::Unsafe`] if §3.1.1 enforcement sidelined them, as
/// [`RejectReason::Unmatched`] otherwise.
pub fn coordinate_with_config(
    queries: &[EntangledQuery],
    db: &Database,
    config: CoordinateConfig,
) -> Result<CoordinationOutcome, CoordinateError> {
    let mut outcome = CoordinationOutcome::default();

    // Assign ids if the caller didn't.
    let ids_distinct = {
        let mut ids: Vec<QueryId> = queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len() == queries.len()
    };
    let caller_ids: Vec<QueryId> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if ids_distinct {
                q.id
            } else {
                QueryId(i as u64)
            }
        })
        .collect();

    // A throwaway service over a snapshot of the database. The
    // admission-time safety check stays off: one-shot semantics enforce
    // §3.1.1 at matching time per the configured policy.
    let coordinator = Coordinator::new(
        db.snapshot(),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: false,
            evaluate_non_ucs: config.evaluate_non_ucs,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads: 1,
            ..EngineConfig::default()
        },
    );
    let mut session = coordinator.session();
    let results = session.submit_batch(
        queries
            .iter()
            .map(|q| SubmitRequest::new(q.clone()))
            .collect(),
    );

    // Engine ids are internal; map them back to the caller's ids.
    let mut to_caller: FastMap<QueryId, QueryId> = FastMap::default();
    let mut handles = Vec::with_capacity(results.len());
    for (i, result) in results.into_iter().enumerate() {
        match result {
            Ok(handle) => {
                to_caller.insert(handle.id, caller_ids[i]);
                handles.push(Some(handle));
            }
            Err(CoordinationError::Invalid(e)) => {
                outcome
                    .rejected
                    .push((caller_ids[i], RejectReason::Invalid(e)));
                handles.push(None);
            }
            Err(_) => {
                // Defensive: with the admission check off the engine
                // refuses nothing else.
                outcome.rejected.push((caller_ids[i], RejectReason::Unsafe));
                handles.push(None);
            }
        }
    }

    // Safety (§3.1.1) per the configured policy, before the round runs.
    let sidelined: FastSet<QueryId> = match config.safety {
        SafetyPolicy::RejectAll => {
            let mut violations = coordinator.safety_violations();
            if !violations.is_empty() {
                for v in &mut violations {
                    if let Some(&caller) = to_caller.get(&v.query) {
                        v.query = caller;
                    }
                }
                return Err(CoordinateError::UnsafeWorkload(violations));
            }
            // A safe pool sidelines nothing; skip the enforcement scan.
            FastSet::default()
        }
        SafetyPolicy::RemoveOffending => coordinator.safety_sidelined().into_iter().collect(),
    };

    let report = coordinator.flush();
    outcome.stats = report.stats;
    outcome.component_count = report.components;

    // Classify terminal statuses back onto caller ids.
    for (i, handle) in handles.iter().enumerate() {
        let Some(handle) = handle else { continue };
        let caller_id = caller_ids[i];
        match coordinator.status(handle.id) {
            Some(QueryStatus::Answered) => {
                if let Ok(QueryOutcome::Answered(mut answer)) = handle.outcome.try_recv() {
                    answer.query = caller_id;
                    outcome.answers.insert(caller_id, answer);
                }
            }
            Some(QueryStatus::Failed(FailReason::Rejected(reason))) => {
                outcome.rejected.push((caller_id, reason));
            }
            Some(QueryStatus::Failed(_)) => {
                // No staleness or cancellation exists in a one-shot
                // round; defensive fallback.
                outcome.rejected.push((caller_id, RejectReason::Unmatched));
            }
            Some(QueryStatus::Pending) | None => {
                let reason = if sidelined.contains(&handle.id) {
                    RejectReason::Unsafe
                } else {
                    RejectReason::Unmatched
                };
                outcome.rejected.push((caller_id, reason));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn introduction_example_end_to_end() {
        let db = flight_db();
        let outcome = coordinate(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)"),
            ],
            &db,
        )
        .unwrap();
        assert_eq!(outcome.answers.len(), 2);
        assert!(outcome.rejected.is_empty());
        let answers = outcome.all_answers();
        let fno = answers[0].tuples[0][1];
        assert_eq!(answers[1].tuples[0][1], fno);
        assert!(fno == Value::int(122) || fno == Value::int(123));
    }

    #[test]
    fn lone_query_is_unmatched() {
        let db = flight_db();
        let outcome = coordinate(&[q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)")], &db).unwrap();
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.reason(QueryId(0)), Some(&RejectReason::Unmatched));
    }

    #[test]
    fn unsafe_set_removes_offender_but_answers_rest() {
        // Figure 3(a): Jerry's ambiguous query is removed; Kramer and
        // Elaine then have no partners and are unmatched.
        let db = flight_db();
        let outcome = coordinate(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Jerry, y)} R(Elaine, y) <- F(y, Rome)"),
                q("{R(f, z)} R(Jerry, z) <- F(z, w), A(z, f)"),
            ],
            &db,
        )
        .unwrap();
        assert_eq!(outcome.reason(QueryId(2)), Some(&RejectReason::Unsafe));
        assert_eq!(outcome.reason(QueryId(0)), Some(&RejectReason::Unmatched));
        assert_eq!(outcome.reason(QueryId(1)), Some(&RejectReason::Unmatched));
    }

    #[test]
    fn reject_all_policy_errors_on_unsafe() {
        let db = flight_db();
        let err = coordinate_with_config(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Jerry, y)} R(Elaine, y) <- F(y, Rome)"),
                q("{R(f, z)} R(Jerry, z) <- F(z, w), A(z, f)"),
            ],
            &db,
            CoordinateConfig {
                safety: SafetyPolicy::RejectAll,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoordinateError::UnsafeWorkload(_)));
    }

    #[test]
    fn non_ucs_component_rejected_by_default() {
        // Figure 3(b): Frank depends on Jerry but not vice versa.
        let db = flight_db();
        let outcome = coordinate(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
                q("{R(Jerry, z)} R(Frank, z) <- F(z, Paris), A(z, United)"),
            ],
            &db,
        )
        .unwrap();
        assert!(outcome.answers.is_empty());
        for i in 0..3 {
            assert_eq!(outcome.reason(QueryId(i)), Some(&RejectReason::NonUcs));
        }
    }

    #[test]
    fn non_ucs_component_evaluated_when_configured() {
        let db = flight_db();
        let outcome = coordinate_with_config(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
                q("{R(Jerry, z)} R(Frank, z) <- F(z, Paris), A(z, United)"),
            ],
            &db,
            CoordinateConfig {
                evaluate_non_ucs: true,
                ..Default::default()
            },
        )
        .unwrap();
        // All three coordinate on a United Paris flight.
        assert_eq!(outcome.answers.len(), 3);
        let answers = outcome.all_answers();
        let fno = answers[0].tuples[0][1];
        assert!(answers.iter().all(|a| a.tuples[0][1] == fno));
    }

    #[test]
    fn no_solution_rejects_component() {
        let db = flight_db();
        // They want Athens; no Athens flights exist.
        let outcome = coordinate(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"),
            ],
            &db,
        )
        .unwrap();
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.reason(QueryId(0)), Some(&RejectReason::NoSolution));
    }

    #[test]
    fn invalid_query_rejected_up_front() {
        let db = flight_db();
        let bad = EntangledQuery::new(vec![], vec![], vec![]);
        let outcome = coordinate(&[bad], &db).unwrap();
        assert!(matches!(
            outcome.reason(QueryId(0)),
            Some(&RejectReason::Invalid(_))
        ));
    }

    #[test]
    fn independent_components_processed_separately() {
        let db = flight_db();
        let outcome = coordinate(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
                q("{R(Frank, z)} R(Newman, z) <- F(z, Rome)"),
                q("{R(Newman, w)} R(Frank, w) <- F(w, Rome)"),
            ],
            &db,
        )
        .unwrap();
        assert_eq!(outcome.component_count, 2);
        assert_eq!(outcome.answers.len(), 4);
        // Pair 1 shares a Paris flight; pair 2 shares the Rome flight.
        assert_eq!(outcome.answers[&QueryId(2)].tuples[0][1], Value::int(136));
        assert_eq!(outcome.answers[&QueryId(3)].tuples[0][1], Value::int(136));
    }

    #[test]
    fn agreement_with_bruteforce_oracle() {
        // On this safe, UCS workload the fast path and the generic
        // semantics must agree about answerability.
        let db = flight_db();
        let queries = vec![
            q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").with_id(QueryId(1)),
            q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)").with_id(QueryId(2)),
        ];
        let fast = coordinate(&queries, &db).unwrap();
        let gen = eq_ir::VarGen::new();
        let renamed: Vec<EntangledQuery> = queries.iter().map(|x| x.rename_apart(&gen)).collect();
        let slow = crate::bruteforce::find_coordinating_set(&renamed, &db, true).unwrap();
        assert_eq!(fast.answers.len() == 2, slow.is_some());
    }
}
