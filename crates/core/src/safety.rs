//! The safety condition of §3.1.1.
//!
//! A set of queries is *unsafe* if it contains a query with a
//! postcondition atom that unifies with two or more head atoms in the set
//! (heads of two different queries, or two head atoms of the same query).
//! Safety guarantees that the way queries can match is unique, which is
//! what makes matching tractable (Theorem 3.1).

use crate::graph::{MatchGraph, MatchView};
use eq_ir::{FastSet, QueryId};

/// A detected safety violation: the postcondition `pc_idx` of `query`
/// unifies with more than one head atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// Slot of the offending query in the graph.
    pub slot: u32,
    /// Its stable query id.
    pub query: QueryId,
    /// Index of the ambiguous postcondition atom.
    pub pc_idx: u32,
    /// The `(slot, head_idx)` pairs of the unifiable heads (≥ 2).
    pub heads: Vec<(u32, u32)>,
}

/// What to do when a workload is unsafe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SafetyPolicy {
    /// Remove offending queries until the remainder is safe (the simple
    /// iteration suggested in §3.1.1; not Church-Rosser but efficient).
    /// Removed queries are reported as rejected.
    #[default]
    RemoveOffending,
    /// Reject the entire input if any violation exists (strict mode —
    /// "the problem would be pointed out to the users involved").
    RejectAll,
}

/// Scans a graph for safety violations: any query slot with two or more
/// in-edges on the same postcondition index.
pub fn violations(graph: &MatchGraph) -> Vec<SafetyViolation> {
    let mut out = Vec::new();
    for slot in 0..graph.len() as u32 {
        let q = &graph.queries()[slot as usize];
        let pc_count = q.pc_count();
        if pc_count == 0 {
            continue;
        }
        let mut per_pc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); pc_count];
        for &eid in graph.in_edges(slot) {
            let e = &graph.edges()[eid as usize];
            per_pc[e.pc_idx as usize].push((e.from, e.head_idx));
        }
        for (pc_idx, heads) in per_pc.into_iter().enumerate() {
            if heads.len() >= 2 {
                out.push(SafetyViolation {
                    slot,
                    query: q.id,
                    pc_idx: pc_idx as u32,
                    heads,
                });
            }
        }
    }
    out
}

/// Member-scoped violation scan over any [`MatchView`]: reports every
/// member whose postcondition has two or more in-edges from member
/// heads. The engine uses this over its resident graph to answer "is
/// the pending pool safe right now?" without building a throwaway
/// [`MatchGraph`].
pub fn violations_members<V: MatchView>(graph: &V, members: &[u32]) -> Vec<SafetyViolation> {
    let member_set: FastSet<u32> = members.iter().copied().collect();
    let mut out = Vec::new();
    for &slot in members {
        let q = graph.query(slot);
        let pc_count = q.pc_count();
        if pc_count == 0 {
            continue;
        }
        let mut per_pc: Vec<Vec<(u32, u32)>> = vec![Vec::new(); pc_count];
        for &eid in graph.in_edges(slot) {
            let e = graph.edge(eid);
            if member_set.contains(&e.from) {
                per_pc[e.pc_idx as usize].push((e.from, e.head_idx));
            }
        }
        for (pc_idx, heads) in per_pc.into_iter().enumerate() {
            if heads.len() >= 2 {
                out.push(SafetyViolation {
                    slot,
                    query: q.id,
                    pc_idx: pc_idx as u32,
                    heads,
                });
            }
        }
    }
    out
}

/// Applies the removal strategy of §3.1.1: repeatedly removes queries
/// having a postcondition that unifies with more than one live head,
/// until the remaining set is safe. Returns the removed slots.
///
/// Removal is implemented on a liveness mask rather than by mutating the
/// graph; downstream phases (matching, UCS) accept the mask. For
/// component-scoped enforcement that does not allocate over the whole
/// slot space, use [`enforce_members`].
pub fn enforce<V: MatchView>(graph: &V, alive: &mut [bool]) -> Vec<u32> {
    let members: Vec<u32> = (0..graph.slot_bound() as u32)
        .filter(|&s| alive[s as usize])
        .collect();
    let removed = enforce_members(graph, &members);
    for &slot in &removed {
        alive[slot as usize] = false;
    }
    removed
}

/// Member-scoped §3.1.1 enforcement: removes queries from `members`
/// whose postconditions unify with more than one live member head,
/// iterating until the remainder is safe. Returns the removed slots.
///
/// Safety is a per-component property (all of a postcondition's
/// satisfying heads are its in-edge sources, which lie in the same
/// unifiability component), so enforcing it component by component is
/// equivalent to a whole-pool pass — and costs O(|component|) instead of
/// O(|pool|).
pub fn enforce_members<V: MatchView>(graph: &V, members: &[u32]) -> Vec<u32> {
    let mut live: FastSet<u32> = members.iter().copied().collect();
    let mut removed = Vec::new();
    loop {
        let mut changed = false;
        for &slot in members {
            if !live.contains(&slot) {
                continue;
            }
            let pc_count = graph.query(slot).pc_count();
            if pc_count == 0 {
                continue;
            }
            let mut per_pc = vec![0usize; pc_count];
            for &eid in graph.in_edges(slot) {
                let e = graph.edge(eid);
                if live.contains(&e.from) {
                    per_pc[e.pc_idx as usize] += 1;
                }
            }
            if per_pc.iter().any(|&c| c >= 2) {
                live.remove(&slot);
                removed.push(slot);
                changed = true;
            }
        }
        if !changed {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::{EntangledQuery, QueryId, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    #[test]
    fn paper_figure_3a_is_unsafe() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Jerry, y)} R(Elaine, y) <- F(y, Athens)",
            "{R(f, z)} R(Jerry, z) <- F(z, w), Friend(Jerry, f)",
        ]);
        let vs = violations(&g);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].slot, 2);
        assert_eq!(vs[0].heads.len(), 2);
    }

    #[test]
    fn kramer_jerry_is_safe() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        assert!(violations(&g).is_empty());
    }

    #[test]
    fn two_heads_of_same_query_count() {
        // q0 contributes two heads both unifiable with q1's single pc.
        let g = build(&[
            "{} R(A, x) & R(B, x) <- T(x)",
            "{R(w, v)} S(v) <- T(v), T(w)",
        ]);
        let vs = violations(&g);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].slot, 1);
        assert_eq!(vs[0].heads, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn member_scoped_violations_agree_with_graph_scan() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Jerry, y)} R(Elaine, y) <- F(y, Athens)",
            "{R(f, z)} R(Jerry, z) <- F(z, w), Friend(Jerry, f)",
        ]);
        let all: Vec<u32> = (0..3).collect();
        assert_eq!(violations_members(&g, &all), violations(&g));
        // Restricted to the unambiguous pair, the set is safe.
        assert!(violations_members(&g, &[0, 1]).is_empty());
    }

    #[test]
    fn enforce_removes_offender_only() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Jerry, y)} R(Elaine, y) <- F(y, Athens)",
            "{R(f, z)} R(Jerry, z) <- F(z, w), Friend(Jerry, f)",
        ]);
        let mut alive = vec![true; 3];
        let removed = enforce(&g, &mut alive);
        assert_eq!(removed, vec![2]);
        assert_eq!(alive, vec![true, true, false]);
    }

    #[test]
    fn enforce_cascades_until_safe() {
        // Two providers of X(_) and one consumer whose single
        // postcondition unifies with both heads: the consumer goes.
        let g = build(&["{} X(a) <- T(a)", "{} X(b) <- T(b)", "{X(v)} Y(v) <- T(v)"]);
        let mut alive = vec![true; 3];
        let removed = enforce(&g, &mut alive);
        assert_eq!(removed, vec![2]);
        assert!(violations(&g).len() == 1);
    }

    #[test]
    fn enforce_is_noop_on_safe_sets() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        let mut alive = vec![true; 2];
        assert!(enforce(&g, &mut alive).is_empty());
        assert_eq!(alive, vec![true, true]);
    }

    #[test]
    fn removal_can_restore_safety_for_others() {
        // q0, q1 both provide R(_, c); q2's pc R(x, c) is ambiguous. q3's
        // pc R(x, d) unifies only q4's head. Removing q2 leaves a safe
        // set; q3 unaffected.
        let g = build(&[
            "{} R(a, C) <- T(a)",
            "{} R(b, C) <- T(b)",
            "{R(x, C)} S(x) <- T(x)",
            "{R(y, D)} S2(y) <- T(y)",
            "{} R(e, D) <- T(e)",
        ]);
        let mut alive = vec![true; 5];
        let removed = enforce(&g, &mut alive);
        assert_eq!(removed, vec![2]);
    }
}
