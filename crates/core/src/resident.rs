//! The resident match graph: one incremental match-state subsystem that
//! survives across flushes.
//!
//! The paper's evaluation loop (§4.1.2) partitions pending queries into
//! unifiability components and evaluates each component. The original
//! engine kept two disjoint copies of that state — an incremental
//! adjacency map maintained at submit/retire time, and a throwaway
//! [`crate::graph::MatchGraph`] rebuilt (cloning every pending query) on
//! every flush. `ResidentGraph` replaces both: a persistent unifiability
//! multigraph keyed by engine *slots*, updated in place as queries are
//! admitted and retired, with
//!
//! * an **edge slab** (ids are reused, MGUs computed once at admission
//!   and kept for matching),
//! * a **component registry** maintained eagerly on edge insertion
//!   (merge, small-into-large) and lazily on removal (a retirement marks
//!   its component *split-pending*; the next [`ResidentGraph::take_dirty`]
//!   resolves the split with a BFS over the surviving adjacency),
//! * a **dirty set** of component ids whose membership changed since
//!   they were last evaluated — flushing iterates dirty components only,
//!   dropping flush cost from O(pending) to O(changed).
//!
//! The graph stores topology only; the queries themselves stay in the
//! engine's slot table, which implements [`crate::graph::MatchView`]
//! over this structure so matching, safety, UCS, and combined-query
//! construction run directly against resident state without cloning.

use crate::graph::Edge;
use eq_ir::{FastMap, FastSet};

const NO_COMP: u32 = u32::MAX;

/// One weakly connected component of the resident graph.
#[derive(Default)]
struct Component {
    members: FastSet<u32>,
    /// True if a member retired since the last split resolution; the
    /// component may have fallen apart and needs a BFS before use.
    split_pending: bool,
}

/// The persistent, slot-addressed unifiability multigraph.
#[derive(Default)]
pub struct ResidentGraph {
    /// Edge slab; `None` entries are free (ids reused via `free_edges`).
    edges: Vec<Option<Edge>>,
    free_edges: Vec<u32>,
    /// Per-slot outgoing edge ids (this slot's heads feeding others).
    out: Vec<Vec<u32>>,
    /// Per-slot incoming edge ids (others' heads feeding this slot).
    inc: Vec<Vec<u32>>,
    /// Per-slot component id (`NO_COMP` when the slot is not resident).
    comp_of: Vec<u32>,
    /// Component slab (ids reused via `free_comps`).
    comps: Vec<Option<Component>>,
    free_comps: Vec<u32>,
    /// Components whose membership changed since last evaluation.
    dirty: FastSet<u32>,
    live_edges: usize,
}

impl ResidentGraph {
    /// An empty resident graph.
    pub fn new() -> Self {
        ResidentGraph::default()
    }

    /// Number of live (resident) edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of live components.
    pub fn component_count(&self) -> usize {
        self.comps.iter().filter(|c| c.is_some()).count()
    }

    /// Number of currently dirty components.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The edge with id `eid`; panics if the id is free.
    pub fn edge(&self, eid: u32) -> &Edge {
        self.edges[eid as usize].as_ref().expect("live edge")
    }

    /// Outgoing edge ids of `slot`.
    pub fn out_edges(&self, slot: u32) -> &[u32] {
        &self.out[slot as usize]
    }

    /// Incoming edge ids of `slot`.
    pub fn in_edges(&self, slot: u32) -> &[u32] {
        &self.inc[slot as usize]
    }

    /// Exclusive upper bound on slot ids seen so far.
    pub fn slot_bound(&self) -> usize {
        self.out.len()
    }

    /// Size of the component containing `slot` (1 for an isolated
    /// resident slot). The count may transiently over-estimate after
    /// retirements until the next [`ResidentGraph::take_dirty`] resolves
    /// pending splits — callers using it as a partition bound only need
    /// an upper bound.
    pub fn component_len(&self, slot: u32) -> usize {
        let c = self.comp_of[slot as usize];
        if c == NO_COMP {
            return 0;
        }
        self.comps[c as usize]
            .as_ref()
            .expect("live comp")
            .members
            .len()
    }

    /// Sorted members of the component containing `slot`.
    pub fn component_members(&self, slot: u32) -> Vec<u32> {
        let c = self.comp_of[slot as usize];
        if c == NO_COMP {
            return Vec::new();
        }
        let mut m: Vec<u32> = self.comps[c as usize]
            .as_ref()
            .expect("live comp")
            .members
            .iter()
            .copied()
            .collect();
        m.sort_unstable();
        m
    }

    /// Admits `slot` with the edges discovered at submission (each edge
    /// must have `slot` as one endpoint and a live resident slot as the
    /// other). Creates a singleton component for the slot, merges it
    /// with every partner's component, and marks the result dirty.
    pub fn link(&mut self, slot: u32, edges: Vec<Edge>) {
        self.ensure_slot(slot);
        debug_assert_eq!(self.comp_of[slot as usize], NO_COMP, "slot already linked");
        let comp = self.alloc_comp();
        self.comps[comp as usize]
            .as_mut()
            .expect("fresh comp")
            .members
            .insert(slot);
        self.comp_of[slot as usize] = comp;

        let mut home = comp;
        for e in edges {
            debug_assert!(e.from == slot || e.to == slot);
            let partner = if e.from == slot { e.to } else { e.from };
            let (from, to) = (e.from, e.to);
            let eid = self.alloc_edge(e);
            self.out[from as usize].push(eid);
            self.inc[to as usize].push(eid);
            let pc = self.comp_of[partner as usize];
            debug_assert_ne!(pc, NO_COMP, "edge to a non-resident slot");
            home = self.merge_comps(home, pc);
        }
        self.dirty.insert(home);
    }

    /// Removes `slot` and every incident edge. The surviving component
    /// is marked dirty and split-pending (edge removal may disconnect
    /// it); empty components are freed.
    pub fn unlink(&mut self, slot: u32) {
        let comp = self.comp_of[slot as usize];
        if comp == NO_COMP {
            return;
        }
        // Drop incident edges from both endpoints' lists.
        let out_ids = std::mem::take(&mut self.out[slot as usize]);
        for eid in out_ids {
            let e = self.edges[eid as usize].take().expect("live edge");
            self.live_edges -= 1;
            self.inc[e.to as usize].retain(|&x| x != eid);
            self.free_edges.push(eid);
        }
        let in_ids = std::mem::take(&mut self.inc[slot as usize]);
        for eid in in_ids {
            let e = self.edges[eid as usize].take().expect("live edge");
            self.live_edges -= 1;
            self.out[e.from as usize].retain(|&x| x != eid);
            self.free_edges.push(eid);
        }

        self.comp_of[slot as usize] = NO_COMP;
        let c = self.comps[comp as usize].as_mut().expect("live comp");
        c.members.remove(&slot);
        if c.members.is_empty() {
            self.comps[comp as usize] = None;
            self.free_comps.push(comp);
            self.dirty.remove(&comp);
        } else {
            c.split_pending = true;
            self.dirty.insert(comp);
        }
    }

    /// Marks the component containing `slot` dirty (e.g. after an
    /// evaluation retired some of its members elsewhere).
    pub fn mark_dirty(&mut self, slot: u32) {
        let c = self.comp_of[slot as usize];
        if c != NO_COMP {
            self.dirty.insert(c);
        }
    }

    /// Marks every live component dirty (used when the database changed:
    /// kept-pending components may now be answerable).
    pub fn mark_all_dirty(&mut self) {
        for (id, c) in self.comps.iter().enumerate() {
            if c.is_some() {
                self.dirty.insert(id as u32);
            }
        }
    }

    /// Marks the component currently containing `slot` clean (used after
    /// evaluating it through a path that bypassed
    /// [`ResidentGraph::take_dirty`], e.g. incremental mode).
    pub fn mark_clean(&mut self, slot: u32) {
        let c = self.comp_of[slot as usize];
        if c != NO_COMP {
            self.dirty.remove(&c);
        }
    }

    /// Takes the dirty components, resolving pending splits: every dirty
    /// component with retired members is re-partitioned with a BFS over
    /// the surviving adjacency, and each resulting piece becomes its own
    /// component. Returns the member lists (sorted within a group;
    /// groups ordered by smallest member), all marked clean — the caller
    /// is about to evaluate them.
    pub fn take_dirty(&mut self) -> Vec<Vec<u32>> {
        let mut dirty: Vec<u32> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        self.dirty.clear();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for comp in dirty {
            let Some(c) = self.comps[comp as usize].as_ref() else {
                continue; // freed since it was marked
            };
            if !c.split_pending {
                let mut members: Vec<u32> = c.members.iter().copied().collect();
                members.sort_unstable();
                groups.push(members);
                continue;
            }
            groups.extend(self.resolve_split(comp));
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// BFS over the live adjacency from `slot`, stopping early once the
    /// piece exceeds `limit`. Returns the sorted members of `slot`'s
    /// true connected piece, or `None` if it is larger than `limit`.
    /// Exact even while the registry component is still split-pending
    /// (the traversal sees only live edges), and bounded: cost is
    /// O(limit · degree), independent of the stale component's size —
    /// the incremental mode's partition-limit decision must not pay for
    /// a giant component it is about to eager-pair around.
    pub fn bounded_component(&self, slot: u32, limit: usize) -> Option<Vec<u32>> {
        if self.comp_of[slot as usize] == NO_COMP {
            return None;
        }
        let mut seen: FastSet<u32> = FastSet::default();
        seen.insert(slot);
        let mut piece = vec![slot];
        let mut i = 0;
        while i < piece.len() {
            let v = piece[i];
            i += 1;
            for &eid in self.out[v as usize].iter().chain(&self.inc[v as usize]) {
                let e = self.edges[eid as usize].as_ref().expect("live edge");
                let w = if e.from == v { e.to } else { e.from };
                if seen.insert(w) {
                    piece.push(w);
                    if piece.len() > limit {
                        return None;
                    }
                }
            }
        }
        piece.sort_unstable();
        Some(piece)
    }

    /// Partitions `members` into connected pieces over the live
    /// adjacency, treating slots in `dead` as absent (edges incident to
    /// them do not connect). Pieces are sorted internally and ordered by
    /// smallest member. This is the one BFS both the split resolution
    /// and the engine's post-safety re-partitioning use, so the two can
    /// never drift apart.
    pub fn connected_pieces(&self, members: &[u32], dead: &FastSet<u32>) -> Vec<Vec<u32>> {
        let mut remaining: FastSet<u32> = members
            .iter()
            .copied()
            .filter(|s| !dead.contains(s))
            .collect();
        let mut pieces: Vec<Vec<u32>> = Vec::new();
        // Deterministic seed order.
        let mut seeds: Vec<u32> = remaining.iter().copied().collect();
        seeds.sort_unstable();
        for seed in seeds {
            if !remaining.remove(&seed) {
                continue;
            }
            let mut piece = vec![seed];
            let mut i = 0;
            while i < piece.len() {
                let v = piece[i];
                i += 1;
                for &eid in self.out[v as usize].iter().chain(&self.inc[v as usize]) {
                    let e = self.edges[eid as usize].as_ref().expect("live edge");
                    let w = if e.from == v { e.to } else { e.from };
                    if remaining.remove(&w) {
                        piece.push(w);
                    }
                }
            }
            piece.sort_unstable();
            pieces.push(piece);
        }
        pieces.sort_by_key(|p| p[0]);
        pieces
    }

    /// Re-partitions a split-pending component into connected pieces.
    /// The original component id is freed; every piece gets a fresh
    /// component. All pieces are returned clean.
    fn resolve_split(&mut self, comp: u32) -> Vec<Vec<u32>> {
        let c = self.comps[comp as usize].take().expect("live comp");
        self.free_comps.push(comp);
        let members: Vec<u32> = c.members.into_iter().collect();
        let pieces = self.connected_pieces(&members, &FastSet::default());
        for piece in &pieces {
            let id = self.alloc_comp();
            let comp = self.comps[id as usize].as_mut().expect("fresh comp");
            for &s in piece {
                comp.members.insert(s);
                self.comp_of[s as usize] = id;
            }
        }
        pieces
    }

    fn ensure_slot(&mut self, slot: u32) {
        let needed = slot as usize + 1;
        if self.out.len() < needed {
            self.out.resize_with(needed, Vec::new);
            self.inc.resize_with(needed, Vec::new);
            self.comp_of.resize(needed, NO_COMP);
        }
    }

    fn alloc_edge(&mut self, e: Edge) -> u32 {
        self.live_edges += 1;
        if let Some(id) = self.free_edges.pop() {
            self.edges[id as usize] = Some(e);
            return id;
        }
        let id = self.edges.len() as u32;
        self.edges.push(Some(e));
        id
    }

    fn alloc_comp(&mut self) -> u32 {
        if let Some(id) = self.free_comps.pop() {
            self.comps[id as usize] = Some(Component::default());
            return id;
        }
        let id = self.comps.len() as u32;
        self.comps.push(Some(Component::default()));
        id
    }

    /// Merges two components (small into large), returning the survivor.
    /// The survivor inherits dirtiness and split-pending state of both.
    fn merge_comps(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            return a;
        }
        let (keep, drop) = {
            let la = self.comps[a as usize]
                .as_ref()
                .expect("live comp")
                .members
                .len();
            let lb = self.comps[b as usize]
                .as_ref()
                .expect("live comp")
                .members
                .len();
            if la >= lb {
                (a, b)
            } else {
                (b, a)
            }
        };
        let dropped = self.comps[drop as usize].take().expect("live comp");
        self.free_comps.push(drop);
        let was_dirty = self.dirty.remove(&drop);
        let kc = self.comps[keep as usize].as_mut().expect("live comp");
        kc.split_pending |= dropped.split_pending;
        for s in dropped.members {
            self.comp_of[s as usize] = keep;
            kc.members.insert(s);
        }
        if was_dirty {
            self.dirty.insert(keep);
        }
        keep
    }

    /// Structural invariant check, for tests and debugging: every edge
    /// id appears in exactly the endpoint lists it should; component
    /// membership and `comp_of` agree; every linked slot is in a live
    /// component; edges connect slots of the same component.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen_edges = 0usize;
        for (eid, e) in self.edges.iter().enumerate() {
            let Some(e) = e else { continue };
            seen_edges += 1;
            if !self.out[e.from as usize].contains(&(eid as u32)) {
                return Err(format!("edge {eid} missing from out[{}]", e.from));
            }
            if !self.inc[e.to as usize].contains(&(eid as u32)) {
                return Err(format!("edge {eid} missing from inc[{}]", e.to));
            }
            let (cf, ct) = (self.comp_of[e.from as usize], self.comp_of[e.to as usize]);
            if cf == NO_COMP || ct == NO_COMP {
                return Err(format!("edge {eid} touches an unlinked slot"));
            }
            if cf != ct {
                return Err(format!(
                    "edge {eid} crosses components {cf} and {ct} (slots {} -> {})",
                    e.from, e.to
                ));
            }
        }
        if seen_edges != self.live_edges {
            return Err(format!(
                "live_edges {} != slab count {seen_edges}",
                self.live_edges
            ));
        }
        for (slot, lists) in self.out.iter().zip(&self.inc).enumerate() {
            for &eid in lists.0.iter().chain(lists.1) {
                if self.edges.get(eid as usize).is_none_or(|e| e.is_none()) {
                    return Err(format!("slot {slot} references freed edge {eid}"));
                }
            }
        }
        for (id, comp) in self.comps.iter().enumerate() {
            let Some(comp) = comp else { continue };
            if comp.members.is_empty() {
                return Err(format!("component {id} is live but empty"));
            }
            for &s in &comp.members {
                if self.comp_of[s as usize] != id as u32 {
                    return Err(format!(
                        "slot {s} in component {id} but comp_of says {}",
                        self.comp_of[s as usize]
                    ));
                }
            }
        }
        for (slot, &c) in self.comp_of.iter().enumerate() {
            if c == NO_COMP {
                if !self.out[slot].is_empty() || !self.inc[slot].is_empty() {
                    return Err(format!("unlinked slot {slot} still has edges"));
                }
                continue;
            }
            let Some(comp) = self.comps[c as usize].as_ref() else {
                return Err(format!("slot {slot} points at freed component {c}"));
            };
            if !comp.members.contains(&(slot as u32)) {
                return Err(format!("slot {slot} not in its component {c}"));
            }
        }
        Ok(())
    }

    /// Map from live slot to sorted component members, for tests.
    pub fn components_snapshot(&self) -> FastMap<u32, Vec<u32>> {
        let mut out = FastMap::default();
        for (slot, &c) in self.comp_of.iter().enumerate() {
            if c != NO_COMP {
                out.insert(slot as u32, self.component_members(slot as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_unify::Unifier;

    fn edge(from: u32, to: u32) -> Edge {
        Edge {
            from,
            head_idx: 0,
            to,
            pc_idx: 0,
            mgu: Unifier::new(),
        }
    }

    #[test]
    fn link_merges_components_and_marks_dirty() {
        let mut g = ResidentGraph::new();
        g.link(0, vec![]);
        g.link(1, vec![]);
        assert_eq!(g.component_count(), 2);
        assert_eq!(g.dirty_count(), 2);
        assert_eq!(g.take_dirty(), vec![vec![0], vec![1]]);
        assert_eq!(g.dirty_count(), 0);

        g.link(2, vec![edge(2, 0), edge(1, 2)]);
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.component_members(0), vec![0, 1, 2]);
        assert_eq!(g.take_dirty(), vec![vec![0, 1, 2]]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn unlink_splits_component_lazily() {
        let mut g = ResidentGraph::new();
        g.link(0, vec![]);
        g.link(1, vec![edge(0, 1)]);
        g.link(2, vec![edge(1, 2)]);
        let _ = g.take_dirty();
        // Removing the middle slot disconnects 0 and 2.
        g.unlink(1);
        g.check_invariants().unwrap();
        let groups = g.take_dirty();
        assert_eq!(groups, vec![vec![0], vec![2]]);
        assert_eq!(g.component_count(), 2);
        assert_ne!(g.comp_of[0], g.comp_of[2]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn unlink_last_member_frees_component() {
        let mut g = ResidentGraph::new();
        g.link(0, vec![]);
        g.unlink(0);
        assert_eq!(g.component_count(), 0);
        assert_eq!(g.dirty_count(), 0);
        assert!(g.take_dirty().is_empty());
        // Slot and component ids are reused.
        g.link(5, vec![]);
        assert_eq!(g.component_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_ids_are_reused() {
        let mut g = ResidentGraph::new();
        g.link(0, vec![]);
        g.link(1, vec![edge(0, 1), edge(1, 0)]);
        assert_eq!(g.edge_count(), 2);
        g.unlink(1);
        assert_eq!(g.edge_count(), 0);
        g.link(2, vec![edge(0, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.edges.len() <= 2, "edge slab grew: {}", g.edges.len());
        g.check_invariants().unwrap();
    }

    #[test]
    fn clean_components_are_not_returned() {
        let mut g = ResidentGraph::new();
        g.link(0, vec![]);
        g.link(1, vec![edge(0, 1)]);
        let _ = g.take_dirty();
        g.link(7, vec![]);
        // Only the new singleton is dirty.
        assert_eq!(g.take_dirty(), vec![vec![7]]);
        g.mark_all_dirty();
        assert_eq!(g.take_dirty(), vec![vec![0, 1], vec![7]]);
    }
}
