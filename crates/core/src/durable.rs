//! The crash-recoverable coordinator: a [`Coordinator`] whose
//! acknowledged submissions and terminal outcomes survive a process
//! kill.
//!
//! # Protocol
//!
//! [`DurableCoordinator`] composes `eq_store`'s durability primitives
//! around the in-memory service:
//!
//! * every `create_table`, successful `load`, admitted submission, and
//!   terminal outcome is appended to a [`WriteAheadLog`] **before** the
//!   operation is acknowledged to the caller (submissions) or made
//!   visible to event subscribers (outcomes) — the
//!   `DurabilitySink` hook runs inside the service
//!   lock at exactly those two points, so WAL order equals
//!   acknowledgment order;
//! * every WAL record carries a monotonically increasing **sequence
//!   number**, and [`DurableCoordinator::checkpoint`] writes an atomic
//!   whole-state image — database contents, pending submissions, the
//!   outcome ledger, the query-id watermark, and the sequence-number
//!   watermark of the records it folds in — then truncates the log, so
//!   the log only ever holds the suffix since the last checkpoint. A
//!   kill between the image rename and the truncation is harmless:
//!   replay skips every record at a sequence number below the image's
//!   watermark, so nothing is applied twice;
//! * [`DurableCoordinator::open`] rebuilds state as *checkpoint +
//!   log replay*: tables are reloaded, still-pending submissions are
//!   re-admitted under their **original** ids, recorded outcomes are
//!   restored to the ledger, and the id watermark moves past every id
//!   ever assigned.
//!
//! The recovery invariant — property-tested against prefix-truncated
//! logs — is *exactly-once accounting*: after a kill and reopen, every
//! query whose submission was acknowledged is either still pending or
//! carries its exact terminal outcome in
//! [`DurableCoordinator::outcome`]; no acknowledged query is lost and
//! none is duplicated.
//!
//! # What is (deliberately) not durable
//!
//! * **Deadlines** — wall-clock instants do not survive a restart; a
//!   recovered query re-enters the pool deadline-free (its staleness
//!   clock restarts).
//! * **Direct database writes** — mutations through
//!   [`Coordinator::db`] bypass the log; durable applications load
//!   data through [`DurableCoordinator::load`] /
//!   [`DurableCoordinator::create_table`].
//! * **Paged-table placement** — recovery materializes tables
//!   in-memory (page files are per-process spill, not a durability
//!   story); an application wanting out-of-core relations re-attaches
//!   paged backends after `open`.

use crate::engine::{
    EngineConfig, FailReason, NoSolutionPolicy, QueryHandle, QueryOutcome, SubmitOptions,
};
use crate::error::CoordinationError;
use crate::service::{Coordinator, DurabilitySink, SubmitRequest};
use eq_db::{Database, Tuple};
use eq_ir::{
    Atom, CmpOp, Constraint, EntangledQuery, FastMap, Polarity, QueryId, Term, ValidationError,
    Value, Var,
};
use eq_store::{read_checkpoint, write_checkpoint, StoreError, WriteAheadLog};
use parking_lot::Mutex;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::combine::QueryAnswer;
use crate::coordinate::RejectReason;

/// WAL file name inside a durable coordinator's directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside a durable coordinator's directory.
pub const CHECKPOINT_FILE: &str = "state.ckpt";

/// Errors from opening, checkpointing, or recovering a
/// [`DurableCoordinator`].
#[derive(Debug)]
pub enum DurableError {
    /// The storage layer failed (I/O, torn checkpoint, undecodable
    /// record).
    Store(StoreError),
    /// Replayed state was refused by the engine (a logged submission
    /// or load no longer admissible — indicates an incompatible state
    /// directory, not a crash artifact).
    Coordination(CoordinationError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "durable store: {e}"),
            DurableError::Coordination(e) => write!(f, "durable replay: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<CoordinationError> for DurableError {
    fn from(e: CoordinationError) -> Self {
        DurableError::Coordination(e)
    }
}

// ---------------------------------------------------------------------
// Byte codec
//
// Fixed little-endian primitives over a plain `Vec<u8>` — no `std::io`
// (that belongs to `eq_store`, per the io-choke-point rule). Strings
// are written by text, never by interner id: symbol ids are assigned
// in process-arrival order and do not survive a restart.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, x: i64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// A decode cursor. Every getter fails with
/// [`StoreError::Corrupt`] on truncation or a bad tag — reachable only
/// if a record passed its checksum yet doesn't parse, i.e. a version
/// skew or outside edit, never a torn write.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Corrupt("record truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(self.u64()? as i64)
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("non-utf8 string"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(StoreError::Corrupt("option tag")),
        }
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt("trailing bytes"))
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(x) => {
            out.push(0);
            put_i64(out, x);
        }
        Value::Str(s) => {
            out.push(1);
            put_str(out, s.as_str());
        }
    }
}

fn get_value(cur: &mut Cur<'_>) -> Result<Value, StoreError> {
    match cur.u8()? {
        0 => Ok(Value::Int(cur.i64()?)),
        1 => Ok(Value::str(&cur.str()?)),
        _ => Err(StoreError::Corrupt("value tag")),
    }
}

fn put_term(out: &mut Vec<u8>, t: Term) {
    match t {
        Term::Const(v) => {
            out.push(0);
            put_value(out, v);
        }
        Term::Var(v) => {
            out.push(1);
            put_u32(out, v.index());
        }
    }
}

fn get_term(cur: &mut Cur<'_>) -> Result<Term, StoreError> {
    match cur.u8()? {
        0 => Ok(Term::Const(get_value(cur)?)),
        1 => Ok(Term::Var(Var(cur.u32()?))),
        _ => Err(StoreError::Corrupt("term tag")),
    }
}

fn put_atom(out: &mut Vec<u8>, a: &Atom) {
    put_str(out, a.relation.as_str());
    put_u32(out, a.terms.len() as u32);
    for &t in &a.terms {
        put_term(out, t);
    }
}

fn get_atom(cur: &mut Cur<'_>) -> Result<Atom, StoreError> {
    let relation = cur.str()?;
    let n = cur.u32()? as usize;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(get_term(cur)?);
    }
    Ok(Atom::new(relation.as_str(), terms))
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Ne => 4,
    }
}

fn get_cmp_op(cur: &mut Cur<'_>) -> Result<CmpOp, StoreError> {
    match cur.u8()? {
        0 => Ok(CmpOp::Lt),
        1 => Ok(CmpOp::Le),
        2 => Ok(CmpOp::Gt),
        3 => Ok(CmpOp::Ge),
        4 => Ok(CmpOp::Ne),
        _ => Err(StoreError::Corrupt("cmp-op tag")),
    }
}

fn put_constraint(out: &mut Vec<u8>, c: &Constraint) {
    put_term(out, c.lhs);
    out.push(cmp_op_tag(c.op));
    put_term(out, c.rhs);
}

fn get_constraint(cur: &mut Cur<'_>) -> Result<Constraint, StoreError> {
    let lhs = get_term(cur)?;
    let op = get_cmp_op(cur)?;
    let rhs = get_term(cur)?;
    Ok(Constraint { lhs, op, rhs })
}

fn put_query(out: &mut Vec<u8>, q: &EntangledQuery) {
    put_u64(out, q.id.0);
    for atoms in [&q.head, &q.postconditions, &q.body] {
        put_u32(out, atoms.len() as u32);
        for a in atoms.iter() {
            put_atom(out, a);
        }
    }
    put_u32(out, q.constraints.len() as u32);
    for c in &q.constraints {
        put_constraint(out, c);
    }
    put_u32(out, q.choose);
}

fn get_query(cur: &mut Cur<'_>) -> Result<EntangledQuery, StoreError> {
    let id = QueryId(cur.u64()?);
    let mut groups: [Vec<Atom>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for group in groups.iter_mut() {
        let n = cur.u32()? as usize;
        for _ in 0..n {
            group.push(get_atom(cur)?);
        }
    }
    let [head, postconditions, body] = groups;
    let n = cur.u32()? as usize;
    let mut constraints = Vec::with_capacity(n);
    for _ in 0..n {
        constraints.push(get_constraint(cur)?);
    }
    let choose = cur.u32()?;
    Ok(EntangledQuery {
        id,
        head,
        postconditions,
        body,
        constraints,
        choose,
    })
}

fn put_policy(out: &mut Vec<u8>, p: Option<NoSolutionPolicy>) {
    out.push(match p {
        None => 0,
        Some(NoSolutionPolicy::Reject) => 1,
        Some(NoSolutionPolicy::KeepPending) => 2,
    });
}

fn get_policy(cur: &mut Cur<'_>) -> Result<Option<NoSolutionPolicy>, StoreError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(NoSolutionPolicy::Reject)),
        2 => Ok(Some(NoSolutionPolicy::KeepPending)),
        _ => Err(StoreError::Corrupt("policy tag")),
    }
}

fn put_validation_error(out: &mut Vec<u8>, e: &ValidationError) {
    match e {
        ValidationError::EmptyHead => out.push(0),
        ValidationError::NotRangeRestricted { var, polarity } => {
            out.push(1);
            put_u32(out, var.index());
            out.push(match polarity {
                Polarity::Head => 0,
                Polarity::Postcondition => 1,
            });
        }
        ValidationError::ChooseZero => out.push(2),
        ValidationError::UnboundConstraintVar { var } => {
            out.push(3);
            put_u32(out, var.index());
        }
    }
}

fn get_validation_error(cur: &mut Cur<'_>) -> Result<ValidationError, StoreError> {
    match cur.u8()? {
        0 => Ok(ValidationError::EmptyHead),
        1 => {
            let var = Var(cur.u32()?);
            let polarity = match cur.u8()? {
                0 => Polarity::Head,
                1 => Polarity::Postcondition,
                _ => return Err(StoreError::Corrupt("polarity tag")),
            };
            Ok(ValidationError::NotRangeRestricted { var, polarity })
        }
        2 => Ok(ValidationError::ChooseZero),
        3 => Ok(ValidationError::UnboundConstraintVar {
            var: Var(cur.u32()?),
        }),
        _ => Err(StoreError::Corrupt("validation-error tag")),
    }
}

fn put_reject_reason(out: &mut Vec<u8>, r: &RejectReason) {
    match r {
        RejectReason::Invalid(e) => {
            out.push(0);
            put_validation_error(out, e);
        }
        RejectReason::Unsafe => out.push(1),
        RejectReason::NonUcs => out.push(2),
        RejectReason::Unmatched => out.push(3),
        RejectReason::NoSolution => out.push(4),
    }
}

fn get_reject_reason(cur: &mut Cur<'_>) -> Result<RejectReason, StoreError> {
    match cur.u8()? {
        0 => Ok(RejectReason::Invalid(get_validation_error(cur)?)),
        1 => Ok(RejectReason::Unsafe),
        2 => Ok(RejectReason::NonUcs),
        3 => Ok(RejectReason::Unmatched),
        4 => Ok(RejectReason::NoSolution),
        _ => Err(StoreError::Corrupt("reject-reason tag")),
    }
}

fn put_tuple(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for &v in row {
        put_value(out, v);
    }
}

fn get_tuple(cur: &mut Cur<'_>) -> Result<Tuple, StoreError> {
    let n = cur.u32()? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(cur)?);
    }
    Ok(row)
}

fn put_outcome(out: &mut Vec<u8>, o: &QueryOutcome) {
    match o {
        QueryOutcome::Answered(answer) => {
            out.push(0);
            put_u64(out, answer.query.0);
            put_u32(out, answer.relations.len() as u32);
            for r in &answer.relations {
                put_str(out, r.as_str());
            }
            put_u32(out, answer.tuples.len() as u32);
            for t in &answer.tuples {
                put_tuple(out, t);
            }
        }
        QueryOutcome::Failed(FailReason::Rejected(reason)) => {
            out.push(1);
            put_reject_reason(out, reason);
        }
        QueryOutcome::Failed(FailReason::Stale) => out.push(2),
        QueryOutcome::Failed(FailReason::Cancelled) => out.push(3),
    }
}

fn get_outcome(cur: &mut Cur<'_>) -> Result<QueryOutcome, StoreError> {
    match cur.u8()? {
        0 => {
            let query = QueryId(cur.u64()?);
            let n = cur.u32()? as usize;
            let mut relations = Vec::with_capacity(n);
            for _ in 0..n {
                relations.push(eq_ir::Symbol::new(&cur.str()?));
            }
            let n = cur.u32()? as usize;
            let mut tuples = Vec::with_capacity(n);
            for _ in 0..n {
                tuples.push(get_tuple(cur)?);
            }
            Ok(QueryOutcome::Answered(QueryAnswer {
                query,
                relations,
                tuples,
            }))
        }
        1 => Ok(QueryOutcome::Failed(FailReason::Rejected(
            get_reject_reason(cur)?,
        ))),
        2 => Ok(QueryOutcome::Failed(FailReason::Stale)),
        3 => Ok(QueryOutcome::Failed(FailReason::Cancelled)),
        _ => Err(StoreError::Corrupt("outcome tag")),
    }
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One durable event. Everything the service acknowledges flows
/// through exactly one of these.
enum WalRecord {
    CreateTable {
        name: String,
        columns: Vec<String>,
    },
    Load {
        table: String,
        rows: Vec<Tuple>,
    },
    Submit {
        id: QueryId,
        query: EntangledQuery,
        tag: Option<String>,
        on_no_solution: Option<NoSolutionPolicy>,
    },
    Outcome {
        id: QueryId,
        outcome: QueryOutcome,
    },
}

/// Encodes one record under its sequence number. The number leads the
/// payload so replay can skip records already folded into a checkpoint
/// (see [`DurableCoordinator::checkpoint`]).
fn encode_record(seqno: u64, rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, seqno);
    match rec {
        WalRecord::CreateTable { name, columns } => {
            out.push(1);
            put_str(&mut out, name);
            put_u32(&mut out, columns.len() as u32);
            for c in columns {
                put_str(&mut out, c);
            }
        }
        WalRecord::Load { table, rows } => {
            out.push(2);
            put_str(&mut out, table);
            put_u32(&mut out, rows.len() as u32);
            for row in rows {
                put_tuple(&mut out, row);
            }
        }
        WalRecord::Submit {
            id,
            query,
            tag,
            on_no_solution,
        } => {
            out.push(3);
            put_u64(&mut out, id.0);
            put_query(&mut out, query);
            put_opt_str(&mut out, tag.as_deref());
            put_policy(&mut out, *on_no_solution);
        }
        WalRecord::Outcome { id, outcome } => {
            out.push(4);
            put_u64(&mut out, id.0);
            put_outcome(&mut out, outcome);
        }
    }
    out
}

fn decode_record(bytes: &[u8]) -> Result<(u64, WalRecord), StoreError> {
    let mut cur = Cur::new(bytes);
    let seqno = cur.u64()?;
    let rec = match cur.u8()? {
        1 => {
            let name = cur.str()?;
            let n = cur.u32()? as usize;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(cur.str()?);
            }
            WalRecord::CreateTable { name, columns }
        }
        2 => {
            let table = cur.str()?;
            let n = cur.u32()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(get_tuple(&mut cur)?);
            }
            WalRecord::Load { table, rows }
        }
        3 => {
            let id = QueryId(cur.u64()?);
            let query = get_query(&mut cur)?;
            let tag = cur.opt_str()?;
            let on_no_solution = get_policy(&mut cur)?;
            WalRecord::Submit {
                id,
                query,
                tag,
                on_no_solution,
            }
        }
        4 => {
            let id = QueryId(cur.u64()?);
            let outcome = get_outcome(&mut cur)?;
            WalRecord::Outcome { id, outcome }
        }
        _ => return Err(StoreError::Corrupt("wal record tag")),
    };
    cur.finish()?;
    Ok((seqno, rec))
}

// ---------------------------------------------------------------------
// Checkpoint image
// ---------------------------------------------------------------------

const CHECKPOINT_VERSION: u32 = 2;

#[derive(Default)]
struct CheckpointImage {
    next_query_id: u64,
    /// WAL records with a sequence number below this are folded into
    /// the image; replay skips them.
    wal_seqno: u64,
    tables: Vec<(String, Vec<String>, Vec<Tuple>)>,
    pending: Vec<(QueryId, SubmitRecord)>,
    outcomes: Vec<(QueryId, QueryOutcome)>,
}

fn encode_checkpoint(
    db: &Database,
    next_query_id: u64,
    wal_seqno: u64,
    pending: &FastMap<QueryId, SubmitRecord>,
    outcomes: &FastMap<QueryId, QueryOutcome>,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, CHECKPOINT_VERSION);
    put_u64(&mut out, next_query_id);
    put_u64(&mut out, wal_seqno);

    let mut names: Vec<_> = db.table_names().collect();
    names.sort_by_key(|s| s.as_str());
    put_u32(&mut out, names.len() as u32);
    for name in names {
        let Some(table) = db.table(name) else {
            continue;
        };
        let schema = table.schema();
        put_str(&mut out, schema.name.as_str());
        put_u32(&mut out, schema.columns.len() as u32);
        for c in &schema.columns {
            put_str(&mut out, c.as_str());
        }
        put_u32(&mut out, table.len() as u32);
        table.for_each_row(&mut |row| put_tuple(&mut out, row));
    }

    let mut ordered: Vec<_> = pending.iter().collect();
    ordered.sort_by_key(|(id, _)| id.0);
    put_u32(&mut out, ordered.len() as u32);
    for (id, rec) in ordered {
        put_u64(&mut out, id.0);
        put_query(&mut out, &rec.query);
        put_opt_str(&mut out, rec.tag.as_deref());
        put_policy(&mut out, rec.on_no_solution);
    }

    let mut ordered: Vec<_> = outcomes.iter().collect();
    ordered.sort_by_key(|(id, _)| id.0);
    put_u32(&mut out, ordered.len() as u32);
    for (id, outcome) in ordered {
        put_u64(&mut out, id.0);
        put_outcome(&mut out, outcome);
    }
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointImage, StoreError> {
    let mut cur = Cur::new(bytes);
    if cur.u32()? != CHECKPOINT_VERSION {
        return Err(StoreError::Corrupt("checkpoint version"));
    }
    let next_query_id = cur.u64()?;
    let wal_seqno = cur.u64()?;

    let n = cur.u32()? as usize;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let name = cur.str()?;
        let cols = cur.u32()? as usize;
        let mut columns = Vec::with_capacity(cols);
        for _ in 0..cols {
            columns.push(cur.str()?);
        }
        let rows_n = cur.u32()? as usize;
        let mut rows = Vec::with_capacity(rows_n);
        for _ in 0..rows_n {
            rows.push(get_tuple(&mut cur)?);
        }
        tables.push((name, columns, rows));
    }

    let n = cur.u32()? as usize;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let id = QueryId(cur.u64()?);
        let query = get_query(&mut cur)?;
        let tag = cur.opt_str()?;
        let on_no_solution = get_policy(&mut cur)?;
        pending.push((
            id,
            SubmitRecord {
                query,
                tag,
                on_no_solution,
            },
        ));
    }

    let n = cur.u32()? as usize;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let id = QueryId(cur.u64()?);
        outcomes.push((id, get_outcome(&mut cur)?));
    }
    cur.finish()?;
    Ok(CheckpointImage {
        next_query_id,
        wal_seqno,
        tables,
        pending,
        outcomes,
    })
}

// ---------------------------------------------------------------------
// The sink and its shared state
// ---------------------------------------------------------------------

/// One acknowledged, not-yet-terminal submission, as the WAL knows it.
#[derive(Clone, Debug)]
struct SubmitRecord {
    query: EntangledQuery,
    tag: Option<String>,
    on_no_solution: Option<NoSolutionPolicy>,
}

/// Shared durable bookkeeping: the open WAL plus the in-memory mirror
/// of what it (together with the last checkpoint) proves — which
/// acknowledged submissions are still pending and which outcomes have
/// been recorded. Innermost lock: always acquired after (never around)
/// the service shard locks.
struct DurableState {
    wal: WriteAheadLog,
    /// Sequence number the next appended record will carry. Appends
    /// run under this lock, so numbers are strictly increasing in
    /// acknowledgment order and never reused — checkpoints record the
    /// watermark of what they fold in.
    next_seqno: u64,
    pending: FastMap<QueryId, SubmitRecord>,
    outcomes: FastMap<QueryId, QueryOutcome>,
}

impl DurableState {
    /// Appends one record. An append failure is unrecoverable by
    /// design: the caller is about to acknowledge the event, and
    /// acknowledging without the log entry would break the recovery
    /// contract — so this panics rather than silently dropping
    /// durability.
    fn append(&mut self, rec: &WalRecord) {
        if let Err(e) = self.wal.append(&encode_record(self.next_seqno, rec)) {
            panic!("write-ahead append failed: {e}");
        }
        self.next_seqno += 1;
    }
}

struct WalSink {
    state: Arc<Mutex<DurableState>>,
}

impl DurabilitySink for WalSink {
    fn record_submit(
        &mut self,
        id: QueryId,
        query: &EntangledQuery,
        tag: Option<&str>,
        on_no_solution: Option<NoSolutionPolicy>,
    ) {
        let mut state = self.state.lock();
        state.append(&WalRecord::Submit {
            id,
            query: query.clone(),
            tag: tag.map(str::to_owned),
            on_no_solution,
        });
        state.pending.insert(
            id,
            SubmitRecord {
                query: query.clone(),
                tag: tag.map(str::to_owned),
                on_no_solution,
            },
        );
    }

    fn record_outcome(&mut self, id: QueryId, outcome: &QueryOutcome) {
        let mut state = self.state.lock();
        state.append(&WalRecord::Outcome {
            id,
            outcome: outcome.clone(),
        });
        state.pending.remove(&id);
        state.outcomes.insert(id, outcome.clone());
    }

    fn record_load(&mut self, table: &str, rows: &[Tuple]) {
        let mut state = self.state.lock();
        state.append(&WalRecord::Load {
            table: table.to_owned(),
            rows: rows.to_vec(),
        });
    }
}

// ---------------------------------------------------------------------
// The durable coordinator
// ---------------------------------------------------------------------

/// A [`Coordinator`] with crash recovery: reopening the same state
/// directory resumes exactly where the acknowledged history left off.
///
/// ```
/// use eq_core::{DurableCoordinator, EngineConfig, EngineMode, QueryOutcome, SubmitRequest};
/// use eq_ir::Value;
/// use eq_sql::parse_ir_query;
///
/// let dir = eq_store::scratch_dir("durable-doc");
/// let config = EngineConfig {
///     mode: EngineMode::SetAtATime { batch_size: 0 },
///     ..Default::default()
/// };
/// let id = {
///     let dc = DurableCoordinator::open(&dir, config.clone()).unwrap();
///     dc.create_table("F", &["fno", "dest"]).unwrap();
///     dc.load("F", vec![vec![Value::int(122), Value::str("Paris")]]).unwrap();
///     let h = dc
///         .submit(SubmitRequest::new(
///             parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap(),
///         ))
///         .unwrap();
///     h.id
/// }; // process "dies" — nothing was flushed or checkpointed
///
/// let dc = DurableCoordinator::open(&dir, config).unwrap();
/// assert_eq!(dc.pending_ids(), vec![id]); // the acknowledged query survived
/// dc.submit(SubmitRequest::new(
///     parse_ir_query("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)").unwrap(),
/// ))
/// .unwrap();
/// assert_eq!(dc.coordinator().flush().answered, 2);
/// assert!(matches!(dc.outcome(id), Some(QueryOutcome::Answered(_))));
/// eq_store::purge_dir(&dir);
/// ```
pub struct DurableCoordinator {
    coordinator: Coordinator,
    state: Arc<Mutex<DurableState>>,
    checkpoint_path: PathBuf,
}

impl DurableCoordinator {
    /// Opens (or creates) the durable coordinator rooted at `dir`:
    /// reads the checkpoint if one exists, replays the WAL tail over
    /// it, re-admits every still-pending acknowledged submission under
    /// its original id, and restores the recorded-outcome ledger and
    /// the query-id watermark.
    pub fn open(dir: &Path, config: EngineConfig) -> Result<DurableCoordinator, DurableError> {
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let image = match read_checkpoint(&checkpoint_path)? {
            Some(payload) => decode_checkpoint(&payload)?,
            None => CheckpointImage::default(),
        };
        let (mut wal, raw) = WriteAheadLog::open(&dir.join(WAL_FILE))?;
        let mut records = Vec::with_capacity(raw.len());
        for bytes in &raw {
            records.push(decode_record(bytes)?);
        }

        // Skip records the checkpoint already folded in. Normally the
        // checkpoint truncates the log, but a kill between the image
        // rename and the truncation leaves the full pre-checkpoint log
        // behind — replaying it would double-apply loads and re-create
        // tables. Sequence numbers are append-ordered, so the stale
        // records are exactly the prefix below the image's watermark.
        let stale = records
            .iter()
            .take_while(|(seqno, _)| *seqno < image.wal_seqno)
            .count();
        if stale > 0 {
            // Finish the interrupted checkpoint's truncation: rewrite
            // the log as just the surviving suffix, restoring the
            // "log = suffix since the last checkpoint" invariant.
            wal.truncate()?;
            for bytes in &raw[stale..] {
                wal.append(bytes)?;
            }
        }
        let mut next_seqno = image.wal_seqno;
        for (seqno, _) in &records[stale..] {
            next_seqno = next_seqno.max(seqno + 1);
        }

        // Checkpoint state, then the log suffix on top of it.
        let mut db = Database::new();
        for (name, columns, rows) in &image.tables {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            db.create_table(name, &cols)
                .map_err(CoordinationError::from)?;
            db.insert_many(name, rows.clone())
                .map_err(CoordinationError::from)?;
        }
        let mut pending: FastMap<QueryId, SubmitRecord> = image.pending.into_iter().collect();
        let mut outcomes: FastMap<QueryId, QueryOutcome> = image.outcomes.into_iter().collect();
        let mut watermark = image.next_query_id;
        for (_, record) in records.into_iter().skip(stale) {
            match record {
                WalRecord::CreateTable { name, columns } => {
                    let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                    db.create_table(&name, &cols)
                        .map_err(CoordinationError::from)?;
                }
                WalRecord::Load { table, rows } => {
                    db.insert_many(&table, rows)
                        .map_err(CoordinationError::from)?;
                }
                WalRecord::Submit {
                    id,
                    query,
                    tag,
                    on_no_solution,
                } => {
                    watermark = watermark.max(id.0 + 1);
                    pending.insert(
                        id,
                        SubmitRecord {
                            query,
                            tag,
                            on_no_solution,
                        },
                    );
                }
                WalRecord::Outcome { id, outcome } => {
                    pending.remove(&id);
                    outcomes.insert(id, outcome);
                }
            }
        }

        let coordinator = Coordinator::new(db, config);
        let state = Arc::new(Mutex::new(DurableState {
            wal,
            next_seqno,
            pending: pending.clone(),
            outcomes,
        }));
        coordinator.install_sink(Box::new(WalSink {
            state: Arc::clone(&state),
        }));

        // Re-admit pending submissions in ascending id order so each
        // reproduces its original id. `recover_submit` bypasses the
        // sink — these records are already in the log; re-recording
        // them would duplicate the history on the next replay.
        let mut replay: Vec<(QueryId, SubmitRecord)> = pending.into_iter().collect();
        replay.sort_by_key(|(id, _)| id.0);
        for (id, rec) in replay {
            let opts = SubmitOptions {
                deadline: None,
                on_no_solution: rec.on_no_solution,
            };
            coordinator.recover_submit(id, rec.query, opts, rec.tag)?;
        }
        coordinator.set_id_watermark(watermark);
        // Outcomes produced by recovery-time coordination (incremental
        // mode) are new history: record and broadcast them now, after
        // every submission record they depend on.
        coordinator.pump_now();

        Ok(DurableCoordinator {
            coordinator,
            state,
            checkpoint_path,
        })
    }

    /// The underlying service handle — subscriptions, flushes, status
    /// queries, cancellation all work as usual and are durably
    /// recorded where applicable (terminal outcomes). Direct database
    /// writes through [`Coordinator::db`] bypass durability; prefer
    /// [`DurableCoordinator::load`].
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Creates a relation, durably.
    pub fn create_table(&self, name: &str, columns: &[&str]) -> Result<(), CoordinationError> {
        self.coordinator.with_exclusive(|| {
            self.coordinator.db().write().create_table(name, columns)?;
            self.state.lock().append(&WalRecord::CreateTable {
                name: name.to_owned(),
                columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            });
            Ok(())
        })
    }

    /// Bulk-loads rows, durably (see [`Coordinator::load`]; the rows
    /// are WAL-logged once the insert succeeds, before it is
    /// acknowledged).
    pub fn load(&self, table: &str, rows: Vec<Tuple>) -> Result<usize, CoordinationError> {
        self.coordinator.load(table, rows)
    }

    /// Submits one query durably: the WAL holds its record before the
    /// handle is returned.
    pub fn submit(
        &self,
        request: impl Into<SubmitRequest>,
    ) -> Result<QueryHandle, CoordinationError> {
        self.coordinator.submit_request(request.into())
    }

    /// Submits a batch durably (see [`crate::Session::submit_batch`]);
    /// each admitted query's record precedes the batch's return.
    pub fn submit_batch(
        &self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        self.coordinator.submit_batch_request(requests)
    }

    /// Runs a coordination round (see [`Coordinator::flush`]); every
    /// terminal outcome it produces is WAL-recorded before its event is
    /// broadcast.
    pub fn flush(&self) -> crate::BatchReport {
        self.coordinator.flush()
    }

    /// Writes an atomic checkpoint of the whole durable state —
    /// database, pending submissions, outcome ledger, id watermark —
    /// and truncates the WAL it supersedes. Runs with every service
    /// shard locked, so the image is a consistent cut: no
    /// acknowledgment can land between the snapshot and the
    /// truncation. The image records
    /// the WAL sequence-number watermark it folds in, so a kill
    /// between the image rename and the truncation is recovered
    /// exactly: replay skips the superseded records and `open`
    /// finishes the truncation.
    pub fn checkpoint(&self) -> Result<(), DurableError> {
        self.coordinator.with_exclusive(|| {
            let next_id = self.coordinator.id_watermark();
            let db = self.coordinator.db();
            let guard = db.read();
            let mut state = self.state.lock();
            let payload = encode_checkpoint(
                &guard,
                next_id,
                state.next_seqno,
                &state.pending,
                &state.outcomes,
            );
            write_checkpoint(&self.checkpoint_path, &payload)?;
            state.wal.truncate()?;
            Ok(())
        })
    }

    /// Ids of acknowledged submissions that have not reached a terminal
    /// outcome, ascending.
    pub fn pending_ids(&self) -> Vec<QueryId> {
        let state = self.state.lock();
        let mut ids: Vec<QueryId> = state.pending.keys().copied().collect();
        ids.sort_by_key(|id| id.0);
        ids
    }

    /// The recorded terminal outcome of an acknowledged query, if it
    /// has one. Survives restarts (subject to checkpoints, which carry
    /// the ledger forward).
    pub fn outcome(&self, id: QueryId) -> Option<QueryOutcome> {
        self.state.lock().outcomes.get(&id).cloned()
    }

    /// Every acknowledged id and whether it is still pending (`None`)
    /// or terminal (`Some(outcome)`), ascending — the exactly-once
    /// accounting view the recovery invariant is stated over.
    pub fn accounting(&self) -> Vec<(QueryId, Option<QueryOutcome>)> {
        let state = self.state.lock();
        let mut all: Vec<(QueryId, Option<QueryOutcome>)> = state
            .pending
            .keys()
            .map(|&id| (id, None))
            .chain(
                state
                    .outcomes
                    .iter()
                    .map(|(&id, outcome)| (id, Some(outcome.clone()))),
            )
            .collect();
        all.sort_by_key(|(id, _)| id.0);
        all
    }

    /// Bytes of intact records currently in the WAL (0 right after a
    /// checkpoint). Kill-and-recover harnesses use this to pick
    /// truncation points.
    pub fn wal_len_bytes(&self) -> u64 {
        self.state.lock().wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineMode, QueryStatus};
    use eq_sql::parse_ir_query;

    fn config() -> EngineConfig {
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            ..Default::default()
        }
    }

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn seed(dc: &DurableCoordinator) {
        dc.create_table("F", &["fno", "dest"]).unwrap();
        dc.load(
            "F",
            vec![
                vec![Value::int(122), Value::str("Paris")],
                vec![Value::int(136), Value::str("Rome")],
            ],
        )
        .unwrap();
    }

    #[test]
    fn reopen_restores_pending_and_outcomes() {
        let dir = eq_store::scratch_dir("durable-reopen");
        let (answered, lonely) = {
            let dc = DurableCoordinator::open(&dir, config()).unwrap();
            seed(&dc);
            let a = dc
                .submit(SubmitRequest::new(q(
                    "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
                )))
                .unwrap();
            let b = dc
                .submit(SubmitRequest::new(q(
                    "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
                )))
                .unwrap();
            let report = dc.flush();
            assert_eq!(report.answered, 2);
            let lonely = dc
                .submit(
                    SubmitRequest::new(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)")).tag("lonely"),
                )
                .unwrap();
            (vec![a.id, b.id], lonely.id)
        };

        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        // Outcomes restored exactly; the unmatched query is pending
        // again under its original id, tag intact.
        for id in answered {
            assert!(
                matches!(dc.outcome(id), Some(QueryOutcome::Answered(_))),
                "{id:?}"
            );
        }
        assert_eq!(dc.pending_ids(), vec![lonely]);
        assert!(matches!(
            dc.coordinator().status(lonely),
            Some(QueryStatus::Pending)
        ));
        // New submissions never reuse an id.
        let fresh = dc
            .submit(SubmitRequest::new(q(
                "{R(Frank, z)} R(Newman, z) <- F(z, Rome)",
            )))
            .unwrap();
        assert!(fresh.id.0 > lonely.0);
        // The pair coordinates after recovery.
        assert_eq!(dc.flush().answered, 2);
        assert!(matches!(
            dc.outcome(lonely),
            Some(QueryOutcome::Answered(_))
        ));
        eq_store::purge_dir(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = eq_store::scratch_dir("durable-ckpt");
        let pending_id = {
            let dc = DurableCoordinator::open(&dir, config()).unwrap();
            seed(&dc);
            let h = dc
                .submit(SubmitRequest::new(q(
                    "{R(Newman, z)} R(Frank, z) <- F(z, Rome)",
                )))
                .unwrap();
            assert!(dc.wal_len_bytes() > 0);
            dc.checkpoint().unwrap();
            assert_eq!(dc.wal_len_bytes(), 0);
            h.id
        };
        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        assert_eq!(dc.pending_ids(), vec![pending_id]);
        assert_eq!(
            dc.coordinator().db().read().scan("F").unwrap().len(),
            2,
            "checkpointed rows restored"
        );
        // Post-checkpoint history keeps accumulating on the fresh WAL.
        dc.load("F", vec![vec![Value::int(200), Value::str("Rome")]])
            .unwrap();
        drop(dc);
        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        assert_eq!(dc.coordinator().db().read().scan("F").unwrap().len(), 3);
        eq_store::purge_dir(&dir);
    }

    #[test]
    fn accounting_is_exactly_once_across_restart() {
        let dir = eq_store::scratch_dir("durable-account");
        let acknowledged = {
            let dc = DurableCoordinator::open(&dir, config()).unwrap();
            seed(&dc);
            let mut ids = Vec::new();
            for i in 0..4 {
                let h = dc
                    .submit(SubmitRequest::new(q(&format!(
                        "{{R(B{i}, ITH)}} R(A{i}, ITH) <- F(x{i}, Paris)"
                    ))))
                    .unwrap();
                ids.push(h.id);
            }
            dc.flush(); // nothing pairs: all four stay pending
            let h = dc
                .submit(SubmitRequest::new(q(
                    "{R(A0, ITH)} R(B0, ITH) <- F(y, Paris)",
                )))
                .unwrap();
            ids.push(h.id);
            dc.flush(); // first pair answers
            ids
        };
        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        let accounting = dc.accounting();
        let ids: Vec<QueryId> = accounting.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, acknowledged, "every acknowledged id, exactly once");
        let terminal = accounting.iter().filter(|(_, o)| o.is_some()).count();
        assert_eq!(terminal, 2, "the answered pair is terminal, rest pending");
        eq_store::purge_dir(&dir);
    }

    #[test]
    fn wal_records_round_trip() {
        let query = q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris), x >= 5");
        let records = [
            WalRecord::CreateTable {
                name: "F".into(),
                columns: vec!["fno".into(), "dest".into()],
            },
            WalRecord::Load {
                table: "F".into(),
                rows: vec![vec![Value::int(-3), Value::str("Paris")]],
            },
            WalRecord::Submit {
                id: QueryId(7),
                query: query.clone(),
                tag: Some("t".into()),
                on_no_solution: Some(NoSolutionPolicy::KeepPending),
            },
            WalRecord::Outcome {
                id: QueryId(7),
                outcome: QueryOutcome::Answered(QueryAnswer {
                    query: QueryId(7),
                    relations: vec![eq_ir::Symbol::new("R")],
                    tuples: vec![vec![Value::str("Jerry"), Value::int(9)]],
                }),
            },
            WalRecord::Outcome {
                id: QueryId(8),
                outcome: QueryOutcome::Failed(FailReason::Rejected(RejectReason::NoSolution)),
            },
        ];
        for (i, rec) in records.iter().enumerate() {
            let seqno = i as u64 * 3 + 1;
            let bytes = encode_record(seqno, rec);
            let (back_seqno, back) = decode_record(&bytes).unwrap();
            assert_eq!(back_seqno, seqno, "sequence number must round-trip");
            assert_eq!(
                encode_record(back_seqno, &back),
                bytes,
                "codec must be stable"
            );
        }
        assert!(decode_record(&[9, 0, 0]).is_err());
    }

    #[test]
    fn kill_between_checkpoint_rename_and_wal_truncate_is_harmless() {
        let dir = eq_store::scratch_dir("durable-ckpt-window");
        let (answered, lonely) = {
            let dc = DurableCoordinator::open(&dir, config()).unwrap();
            seed(&dc);
            let a = dc
                .submit(SubmitRequest::new(q(
                    "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
                )))
                .unwrap();
            let b = dc
                .submit(SubmitRequest::new(q(
                    "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
                )))
                .unwrap();
            assert_eq!(dc.flush().answered, 2);
            let lonely = dc
                .submit(SubmitRequest::new(q(
                    "{R(Newman, z)} R(Frank, z) <- F(z, Rome)",
                )))
                .unwrap();
            // A checkpoint whose process dies right after the image
            // rename: write the image through the real path, but leave
            // the superseded WAL exactly as the kill would.
            dc.coordinator.with_exclusive(|| {
                let next_id = dc.coordinator.id_watermark();
                let db = dc.coordinator.db();
                let guard = db.read();
                let state = dc.state.lock();
                let payload = encode_checkpoint(
                    &guard,
                    next_id,
                    state.next_seqno,
                    &state.pending,
                    &state.outcomes,
                );
                write_checkpoint(&dc.checkpoint_path, &payload).unwrap();
            });
            assert!(dc.wal_len_bytes() > 0, "pre-checkpoint log must remain");
            (vec![a.id, b.id], lonely.id)
        };

        // Reopen must neither fail (CreateTable replay would hit
        // DuplicateRelation) nor double-apply the checkpointed loads.
        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        assert_eq!(
            dc.coordinator().db().read().scan("F").unwrap().len(),
            2,
            "checkpointed rows must not be replayed on top of the image"
        );
        for id in answered {
            assert!(
                matches!(dc.outcome(id), Some(QueryOutcome::Answered(_))),
                "{id:?}"
            );
        }
        assert_eq!(dc.pending_ids(), vec![lonely]);
        assert_eq!(
            dc.wal_len_bytes(),
            0,
            "open finishes the interrupted truncation"
        );
        // History keeps accumulating normally afterwards.
        dc.load("F", vec![vec![Value::int(200), Value::str("Oslo")]])
            .unwrap();
        drop(dc);
        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        assert_eq!(dc.coordinator().db().read().scan("F").unwrap().len(), 3);
        eq_store::purge_dir(&dir);
    }
}
