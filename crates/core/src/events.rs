//! Bounded per-subscriber event queues with explicit overflow policies.
//!
//! The service's event stream used to ride unbounded `std::mpsc`
//! channels: a slow subscriber under a 100k-query sweep would buffer
//! the entire flush's worth of events in memory and stall nothing —
//! silent, unbounded growth. Every subscription is now a **bounded**
//! FIFO queue with an [`OverflowPolicy`] chosen at subscription time:
//!
//! * [`OverflowPolicy::Block`] — the publisher waits for the subscriber
//!   to drain (backpressure; no event is ever lost). The default.
//! * [`OverflowPolicy::DropOldest`] — the queue stays bounded by
//!   evicting its oldest entry; evictions are **counted** (never
//!   silent) and reported in [`SubscriberStats::dropped`].
//! * [`OverflowPolicy::Disconnect`] — overflow disconnects the
//!   subscriber; it drains what was already queued, then the stream
//!   ends and [`SubscriberStats::disconnected`] is set. The publisher
//!   side accounts the disconnect
//!   ([`crate::Coordinator::disconnected_subscribers`]).
//!
//! A dropped receiver (`Events` going out of scope — e.g. a client
//! thread that died mid-flush) wakes any blocked publisher immediately;
//! the publisher observes `Disconnected`, prunes the subscriber, and
//! counts it — event fan-out never panics or hangs on a vanished
//! subscriber.
//!
//! The queue is deliberately simple: one `std::sync::Mutex` + two
//! condvars per subscriber (offline-dependency policy: the vendored
//! `parking_lot` shim has no condvar, and publisher/subscriber pairs
//! are not contended enough to care).
//!
//! Queues carry **`Arc<Event>`**: the publisher materializes each
//! event once and fan-out to any number of subscribers is a pointer
//! bump per queue, and receivers get the same `Arc<Event>` back.
//!
//! Delivery is **out-of-lock**: events are only *staged* (on the
//! coordinator's ordered dispatch queue) while a service shard lock is
//! held; the fan-out into these subscriber queues runs after every
//! shard lock is released (`crate::dispatch`). A `Block` subscriber
//! that never drains therefore stalls only the dispatcher thread
//! currently delivering — never a shard lock, and never another
//! session's submit or flush. The blocking contract on
//! [`crate::Coordinator::subscribe_with`] spells out what a stalled
//! subscriber can and cannot hold up.

use crate::service::Event;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a bounded subscriber queue does when a published event finds it
/// full. See the module docs for the loss-accounting guarantees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the publisher until the subscriber drains (backpressure).
    /// Never loses an event; requires the subscriber to drain from a
    /// different thread than the one flushing.
    #[default]
    Block,
    /// Evict the oldest queued event to make room, counting the
    /// eviction in [`SubscriberStats::dropped`].
    DropOldest,
    /// Disconnect the subscriber: already-queued events remain
    /// drainable, then the stream ends.
    Disconnect,
}

/// Delivery accounting for one subscription, observable from both ends
/// ([`Events::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubscriberStats {
    /// Events the subscriber actually received.
    pub delivered: u64,
    /// Events evicted under [`OverflowPolicy::DropOldest`].
    pub dropped: u64,
    /// True once the subscription ended by overflow
    /// ([`OverflowPolicy::Disconnect`]) or because the receiver was
    /// dropped.
    pub disconnected: bool,
}

struct QueueState {
    queue: VecDeque<Arc<Event>>,
    delivered: u64,
    dropped: u64,
    /// Set by [`OverflowPolicy::Disconnect`] on overflow: publishers
    /// stop, the receiver drains the backlog then sees the end.
    overflowed: bool,
    receiver_gone: bool,
    sender_gone: bool,
}

struct Shared {
    capacity: usize,
    policy: OverflowPolicy,
    state: Mutex<QueueState>,
    /// Signalled when the queue gains an event or the stream ends.
    not_empty: Condvar,
    /// Signalled when the queue loses an event or the receiver goes.
    not_full: Condvar,
}

/// The publisher half of one subscription. Owned by the `Coordinator`;
/// not exposed publicly.
pub(crate) struct EventSender {
    shared: Arc<Shared>,
}

/// Error returned to the publisher when the subscription is over (the
/// receiver was dropped, or the Disconnect policy tripped).
pub(crate) struct Disconnected;

impl EventSender {
    /// Publishes one event under this subscription's policy. `Err`
    /// means the subscription is permanently over and the publisher
    /// should prune it (and account the disconnect).
    pub(crate) fn send(&self, event: Arc<Event>) -> Result<(), Disconnected> {
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        loop {
            if state.receiver_gone || state.overflowed {
                return Err(Disconnected);
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(event);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            match self.shared.policy {
                OverflowPolicy::Block => {
                    state = self
                        .shared
                        .not_full
                        .wait(state)
                        .expect("event queue poisoned");
                }
                OverflowPolicy::DropOldest => {
                    state.queue.pop_front();
                    state.dropped += 1;
                    state.queue.push_back(event);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                OverflowPolicy::Disconnect => {
                    state.overflowed = true;
                    // Wake the receiver so it can observe the end after
                    // draining the backlog.
                    self.shared.not_empty.notify_one();
                    return Err(Disconnected);
                }
            }
        }
    }
}

impl Drop for EventSender {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        state.sender_gone = true;
        self.shared.not_empty.notify_one();
    }
}

/// A subscription to a [`crate::Coordinator`]'s [`Event`] stream,
/// backed by a bounded FIFO queue (see the module docs for capacity and
/// overflow semantics).
///
/// Events published before the subscription was created are not
/// replayed. The stream ends (`None` forever) once the coordinator is
/// dropped, or — under [`OverflowPolicy::Disconnect`] — once the queue
/// overflowed and the backlog is drained.
pub struct Events {
    shared: Arc<Shared>,
}

impl Events {
    /// The next event if one is already queued (non-blocking).
    pub fn try_next(&self) -> Option<Arc<Event>> {
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        Self::pop(&self.shared, &mut state)
    }

    /// Blocks up to `timeout` for the next event. A `timeout` too large
    /// to represent as an `Instant` (e.g. `Duration::MAX`, the natural
    /// "wait forever" idiom) waits without a deadline instead of
    /// panicking on instant overflow.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        let deadline = Instant::now().checked_add(timeout);
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        loop {
            if let Some(e) = Self::pop(&self.shared, &mut state) {
                return Some(e);
            }
            if state.sender_gone || state.overflowed {
                return None; // stream over and backlog drained
            }
            state = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (next, timed_out) = self
                        .shared
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .expect("event queue poisoned");
                    if timed_out.timed_out() && next.queue.is_empty() {
                        return None;
                    }
                    next
                }
                None => self
                    .shared
                    .not_empty
                    .wait(state)
                    .expect("event queue poisoned"),
            };
        }
    }

    /// Drains every queued event (non-blocking).
    pub fn drain(&self) -> Vec<Arc<Event>> {
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        let mut out = Vec::with_capacity(state.queue.len());
        while let Some(e) = Self::pop(&self.shared, &mut state) {
            out.push(e);
        }
        out
    }

    /// Delivery accounting so far: events received, events evicted
    /// under `DropOldest`, and whether the subscription was
    /// disconnected. Nothing is ever lost *silently* — the three
    /// counters always reconcile with what the publisher sent.
    pub fn stats(&self) -> SubscriberStats {
        let state = self.shared.state.lock().expect("event queue poisoned");
        SubscriberStats {
            delivered: state.delivered,
            dropped: state.dropped,
            disconnected: state.overflowed || state.receiver_gone,
        }
    }

    fn pop(shared: &Shared, state: &mut QueueState) -> Option<Arc<Event>> {
        let e = state.queue.pop_front()?;
        state.delivered += 1;
        shared.not_full.notify_one();
        Some(e)
    }
}

impl Drop for Events {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("event queue poisoned");
        state.receiver_gone = true;
        // Wake a publisher blocked on a full queue: it must observe the
        // disconnect instead of waiting forever.
        self.shared.not_full.notify_one();
    }
}

/// Creates one bounded subscription. `capacity` is clamped to at least
/// 1 (a zero-capacity queue could never deliver anything under
/// `DropOldest`/`Disconnect`).
pub(crate) fn bounded(capacity: usize, policy: OverflowPolicy) -> (EventSender, Events) {
    let shared = Arc::new(Shared {
        capacity: capacity.max(1),
        policy,
        state: Mutex::new(QueueState {
            queue: VecDeque::new(),
            delivered: 0,
            dropped: 0,
            overflowed: false,
            receiver_gone: false,
            sender_gone: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        EventSender {
            shared: Arc::clone(&shared),
        },
        Events { shared },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BatchReport;

    fn flushed() -> Arc<Event> {
        Arc::new(Event::Flushed(BatchReport::default()))
    }

    fn mk(capacity: usize, policy: OverflowPolicy) -> (EventSender, Events) {
        bounded(capacity, policy)
    }

    #[test]
    fn fifo_order_and_stats() {
        let (tx, rx) = mk(8, OverflowPolicy::Block);
        for _ in 0..3 {
            tx.send(flushed()).ok().unwrap();
        }
        assert_eq!(rx.drain().len(), 3);
        assert_eq!(rx.stats().delivered, 3);
        assert_eq!(rx.stats().dropped, 0);
        assert!(!rx.stats().disconnected);
    }

    #[test]
    fn drop_oldest_evicts_and_counts() {
        let (tx, rx) = mk(2, OverflowPolicy::DropOldest);
        for _ in 0..5 {
            tx.send(flushed()).ok().unwrap();
        }
        assert_eq!(rx.drain().len(), 2);
        let stats = rx.stats();
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.delivered, 2);
        assert!(!stats.disconnected);
    }

    #[test]
    fn disconnect_policy_ends_stream_after_backlog() {
        let (tx, rx) = mk(2, OverflowPolicy::Disconnect);
        tx.send(flushed()).ok().unwrap();
        tx.send(flushed()).ok().unwrap();
        assert!(tx.send(flushed()).is_err(), "overflow disconnects");
        // Backlog still drains, then the stream is over.
        assert_eq!(rx.drain().len(), 2);
        assert!(rx.try_next().is_none());
        assert!(rx.next_timeout(Duration::from_millis(5)).is_none());
        assert!(rx.stats().disconnected);
    }

    #[test]
    fn block_policy_applies_backpressure_without_loss() {
        let (tx, rx) = mk(2, OverflowPolicy::Block);
        let total = 50u64;
        let producer = std::thread::spawn(move || {
            for _ in 0..total {
                if tx.send(flushed()).is_err() {
                    panic!("receiver vanished");
                }
            }
        });
        let mut received = 0u64;
        while received < total {
            if rx.next_timeout(Duration::from_secs(5)).is_some() {
                received += 1;
            } else {
                panic!("stream stalled at {received}");
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.stats().delivered, total);
        assert_eq!(rx.stats().dropped, 0);
    }

    #[test]
    fn dropped_receiver_wakes_blocked_sender() {
        let (tx, rx) = mk(1, OverflowPolicy::Block);
        tx.send(flushed()).ok().unwrap(); // queue now full
        let t = std::thread::spawn(move || tx.send(flushed()).is_err());
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap(), "sender must observe the disconnect");
    }

    #[test]
    fn huge_timeout_waits_instead_of_panicking() {
        // Duration::MAX is the natural "block until the next event"
        // idiom; it must not overflow Instant arithmetic.
        let (tx, rx) = mk(4, OverflowPolicy::Block);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(flushed()).ok().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        });
        assert!(rx.next_timeout(Duration::MAX).is_some());
        t.join().unwrap();
    }

    #[test]
    fn dropped_sender_ends_stream() {
        let (tx, rx) = mk(4, OverflowPolicy::Block);
        tx.send(flushed()).ok().unwrap();
        drop(tx);
        assert!(rx.next_timeout(Duration::from_millis(50)).is_some());
        assert!(rx.next_timeout(Duration::from_millis(5)).is_none());
    }
}
