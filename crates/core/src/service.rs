//! The `Coordinator` service facade: the paper's D3C middleware as a
//! long-running *service* API (§5.1) rather than a single-owner
//! `&mut` engine.
//!
//! A [`Coordinator`] is a clonable handle around an internally
//! synchronized [`CoordinationEngine`]; clones share one engine, so an
//! application can submit from one place, flush from another, and
//! observe outcomes from a third. On top of the raw engine it adds:
//!
//! * **[`Session`]s** — each session owns the queries submitted through
//!   it and withdraws the still-pending ones when it is closed or
//!   dropped, giving connection-scoped cleanup for free (the paper's
//!   queries live inside client transactions; a dropped connection must
//!   not leak pending residents);
//! * **[`SubmitRequest`]** — a per-query builder (`deadline`,
//!   `staleness`, `on_no_solution`, `tag`) replacing engine-wide
//!   configuration knobs for per-query concerns, plus
//!   [`Session::submit_batch`], whose admission probes run in parallel
//!   across the sharded atom indexes
//!   ([`CoordinationEngine::submit_batch`]);
//! * **[`Event`] subscriptions** — terminal outcomes and flush reports
//!   are *pushed* over **bounded** per-subscriber queues
//!   ([`Coordinator::subscribe`], [`Coordinator::subscribe_with`]) with
//!   an explicit [`OverflowPolicy`] (block / drop-oldest / disconnect —
//!   see [`crate::events`]), so harnesses and REPLs stop polling
//!   `status()` by id and a slow subscriber can no longer buffer an
//!   unbounded flush in memory;
//! * **typed errors** — every operation reports
//!   [`CoordinationError`], the unified hierarchy of
//!   [`crate::error`].
//!
//! One-shot coordination ([`crate::coordinate()`]) is a thin wrapper
//! over a throwaway `Coordinator` session.
//!
//! # Example: a session, a subscriber, a flush
//!
//! ```
//! use eq_core::{Coordinator, EngineConfig, EngineMode, Event, SubmitRequest};
//! use eq_db::Database;
//! use eq_ir::Value;
//! use eq_sql::parse_ir_query;
//!
//! let mut db = Database::new();
//! db.create_table("F", &["fno", "dest"]).unwrap();
//! db.insert("F", vec![Value::int(122), Value::str("Paris")]).unwrap();
//!
//! let coordinator = Coordinator::new(
//!     db,
//!     EngineConfig {
//!         mode: EngineMode::SetAtATime { batch_size: 0 },
//!         ..Default::default()
//!     },
//! );
//! let events = coordinator.subscribe();
//! let mut session = coordinator.session();
//! session
//!     .submit(SubmitRequest::new(
//!         parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap(),
//!     ))
//!     .unwrap();
//! session
//!     .submit(SubmitRequest::new(
//!         parse_ir_query("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)").unwrap(),
//!     ))
//!     .unwrap();
//!
//! let report = coordinator.flush();
//! assert_eq!(report.answered, 2);
//! // Two terminal events, then the flush report — in that order.
//! // Subscribers receive `Arc<Event>`: the service materializes each
//! // event once and fans it out by pointer.
//! let drained = events.drain();
//! assert_eq!(drained.len(), 3);
//! assert!(drained[0].is_terminal() && drained[1].is_terminal());
//! assert!(matches!(*drained[2], Event::Flushed(_)));
//! ```

use crate::combine::QueryAnswer;
use crate::coordinate::RejectReason;
use crate::engine::{
    BatchReport, CoordinationEngine, EngineConfig, FailReason, NoSolutionPolicy, QueryHandle,
    QueryOutcome, QueryStatus, SubmitOptions,
};
use crate::error::CoordinationError;
use crate::events::{self, EventSender};
use crate::safety::SafetyViolation;
use eq_db::{Database, Tuple};
use eq_ir::{EntangledQuery, FastMap, QueryId};
use parking_lot::{Mutex, RwLock};

pub use parking_lot::LockStats;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::events::{Events, OverflowPolicy, SubscriberStats};

/// Queue capacity used by [`Coordinator::subscribe`] (the
/// [`OverflowPolicy::Block`] default): deep enough that a subscriber
/// draining at flush granularity never blocks a moderate flush, small
/// enough to bound memory under a 100k-query sweep.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One query submission, built fluently.
///
/// Replaces the per-query knobs that used to hide in [`EngineConfig`]:
/// a deadline or staleness bound applies to *this* query, a no-solution
/// policy applies to *this* query's component outcomes, and a tag
/// travels to the [`Event`]s the query produces.
///
/// ```
/// use eq_core::{Coordinator, EngineConfig, NoSolutionPolicy, SubmitRequest};
/// use eq_db::Database;
/// use eq_sql::parse_ir_query;
/// use std::time::Duration;
///
/// let mut db = Database::new();
/// db.create_table("F", &["fno", "dest"]).unwrap();
/// let coordinator = Coordinator::new(db, EngineConfig::default());
/// let mut session = coordinator.session();
///
/// let request = SubmitRequest::new(
///     parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap())
///     .staleness(Duration::from_secs(30))
///     .on_no_solution(NoSolutionPolicy::KeepPending)
///     .tag("kramer-paris");
/// let handle = session.submit(request).unwrap();
/// assert_eq!(coordinator.pending_count(), 1);
/// assert!(handle.outcome.try_recv().is_err()); // waiting for Jerry
/// ```
#[derive(Debug)]
pub struct SubmitRequest {
    query: EntangledQuery,
    deadline: Option<Instant>,
    staleness: Option<Duration>,
    on_no_solution: Option<NoSolutionPolicy>,
    tag: Option<String>,
}

impl SubmitRequest {
    /// A request with no per-query overrides.
    pub fn new(query: EntangledQuery) -> Self {
        SubmitRequest {
            query,
            deadline: None,
            staleness: None,
            on_no_solution: None,
            tag: None,
        }
    }

    /// Absolute deadline: fail the query as expired if it is still
    /// pending when `deadline` passes. Takes precedence over
    /// [`SubmitRequest::staleness`] when both are set.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Relative staleness bound: fail the query as expired if it is
    /// still pending `bound` after submission (a per-query version of
    /// [`EngineConfig::staleness`]).
    pub fn staleness(mut self, bound: Duration) -> Self {
        self.staleness = Some(bound);
        self
    }

    /// What to do with this query when its matched component has no
    /// database solution (overrides [`EngineConfig::on_no_solution`]).
    pub fn on_no_solution(mut self, policy: NoSolutionPolicy) -> Self {
        self.on_no_solution = Some(policy);
        self
    }

    /// Opaque application label, echoed on every [`Event`] this query
    /// produces.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    fn to_options(&self, now: Instant) -> SubmitOptions {
        SubmitOptions {
            deadline: self
                .deadline
                .or_else(|| self.staleness.map(|bound| now + bound)),
            on_no_solution: self.on_no_solution,
        }
    }
}

impl From<EntangledQuery> for SubmitRequest {
    fn from(query: EntangledQuery) -> Self {
        SubmitRequest::new(query)
    }
}

/// A coordination event, pushed to every subscriber
/// ([`Coordinator::subscribe`]).
///
/// Query events carry the submission's tag (if any); every submitted
/// query produces **exactly one** terminal event — `Answered`,
/// `Failed`, `Expired`, or `Cancelled` — property-tested against the
/// engine's final [`QueryStatus`] under churn.
#[derive(Clone, Debug)]
pub enum Event {
    /// The query coordinated; the answer is attached.
    Answered {
        /// The answered query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
        /// The coordinated answer.
        answer: QueryAnswer,
    },
    /// The query was rejected during a coordination round.
    Failed {
        /// The rejected query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
        /// Why it was rejected.
        reason: RejectReason,
    },
    /// The query exceeded its deadline or staleness bound.
    Expired {
        /// The expired query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
    },
    /// The query was withdrawn (explicit cancel, or its session
    /// closed).
    Cancelled {
        /// The withdrawn query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
    },
    /// A flush completed; the report summarizes the round.
    Flushed(BatchReport),
}

impl Event {
    /// The query this event concerns (`None` for [`Event::Flushed`]).
    pub fn id(&self) -> Option<QueryId> {
        match self {
            Event::Answered { id, .. }
            | Event::Failed { id, .. }
            | Event::Expired { id, .. }
            | Event::Cancelled { id, .. } => Some(*id),
            Event::Flushed(_) => None,
        }
    }

    /// The submission tag, if the event concerns a tagged query.
    pub fn tag(&self) -> Option<&str> {
        match self {
            Event::Answered { tag, .. }
            | Event::Failed { tag, .. }
            | Event::Expired { tag, .. }
            | Event::Cancelled { tag, .. } => tag.as_deref(),
            Event::Flushed(_) => None,
        }
    }

    /// True for a query's terminal event (everything except
    /// [`Event::Flushed`]).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Event::Flushed(_))
    }
}

/// The durability hook: a write-ahead recorder consulted inside the
/// service lock at the two points that define the crash-recovery
/// contract — after a submission is admitted (before its handle is
/// released to the caller) and when a terminal outcome is drained
/// (before it is broadcast). `eq_core::durable` installs a WAL-backed
/// implementation; the trait stays crate-private so the recording
/// points cannot be bypassed or reordered from outside.
pub(crate) trait DurabilitySink: Send {
    /// An admitted submission: `id` was assigned and the caller is
    /// about to be handed its handle. Deadlines are deliberately not
    /// recorded — wall-clock instants don't survive a restart; a
    /// recovered query re-enters the pool deadline-free.
    fn record_submit(
        &mut self,
        id: QueryId,
        query: &EntangledQuery,
        tag: Option<&str>,
        on_no_solution: Option<NoSolutionPolicy>,
    );
    /// A terminal outcome, drained from the engine's outcome log and
    /// not yet broadcast to subscribers.
    fn record_outcome(&mut self, id: QueryId, outcome: &QueryOutcome);
    /// A successful bulk load into `table`.
    fn record_load(&mut self, table: &str, rows: &[Tuple]);
}

struct Inner {
    engine: CoordinationEngine,
    subscribers: Vec<EventSender>,
    tags: FastMap<QueryId, String>,
    /// Subscriptions that ended from the publisher's side: the receiver
    /// was dropped mid-stream (e.g. a client thread died during an
    /// in-flight flush) or an [`OverflowPolicy::Disconnect`] queue
    /// overflowed. Never silent: observable through
    /// [`Coordinator::disconnected_subscribers`].
    disconnected: u64,
    /// Durability recorder, if this service is crash-recoverable
    /// ([`crate::durable::DurableCoordinator`] installs one). While a
    /// sink is present the engine's outcome log stays on even with zero
    /// event subscribers — the sink is an always-on listener.
    sink: Option<Box<dyn DurabilitySink>>,
}

impl Inner {
    /// Converts the engine's freshly drained terminal outcomes into
    /// events and broadcasts them; subscribers whose receiver hung up
    /// are pruned (and counted), and when the last one goes the
    /// engine's outcome log is switched off (retirements stop paying
    /// for outcome clones nobody will read). Called after every engine
    /// operation, while the service lock is held, so event order equals
    /// retirement order.
    fn pump(&mut self) {
        for (id, outcome) in self.engine.drain_outcome_log() {
            // Durability before visibility: the outcome reaches the
            // write-ahead recorder before any subscriber (or the
            // handle-holder racing the broadcast) can act on it.
            if let Some(sink) = self.sink.as_mut() {
                sink.record_outcome(id, &outcome);
            }
            let tag = self.tags.remove(&id);
            let event = match outcome {
                QueryOutcome::Answered(answer) => Event::Answered { id, tag, answer },
                QueryOutcome::Failed(FailReason::Stale) => Event::Expired { id, tag },
                QueryOutcome::Failed(FailReason::Cancelled) => Event::Cancelled { id, tag },
                QueryOutcome::Failed(FailReason::Rejected(reason)) => {
                    Event::Failed { id, tag, reason }
                }
            };
            self.broadcast(event);
        }
        if self.subscribers.is_empty() && self.sink.is_none() {
            self.engine.set_outcome_log(false);
        }
    }

    /// The single place a [`Event::Flushed`] report enters the stream.
    /// Together with [`Inner::pump`] these are the only functions that
    /// construct events while the service lock is held — `eq_check`'s
    /// `event-choke-point` rule enforces this, so the planned
    /// out-of-lock dispatch refactor (ROADMAP frontier 3) has exactly
    /// two call sites to move.
    fn publish_flushed(&mut self, report: BatchReport) {
        self.broadcast(Event::Flushed(report));
    }

    /// Publishes one event to every subscriber. The event is
    /// materialized **once** behind an `Arc`; per-subscriber delivery is
    /// a pointer bump into the bounded queue, so fan-out cost under the
    /// service lock no longer scales with answer payload size times
    /// subscriber count.
    fn broadcast(&mut self, event: Event) {
        let event = Arc::new(event);
        let mut disconnected = 0u64;
        self.subscribers
            .retain(|s| match s.send(Arc::clone(&event)) {
                Ok(()) => true,
                Err(_) => {
                    disconnected += 1;
                    false
                }
            });
        self.disconnected += disconnected;
    }
}

/// A clonable handle to a running coordination service.
///
/// All clones share one [`CoordinationEngine`] behind a mutex; every
/// method takes the lock for the duration of one engine operation.
/// Flush-internal parallelism (per-component workers, batched admission
/// probing) is unaffected — it happens inside the engine while the lock
/// is held once.
#[derive(Clone)]
pub struct Coordinator {
    inner: Arc<Mutex<Inner>>,
}

impl Coordinator {
    /// Starts a coordination service over `db`.
    pub fn new(db: Database, config: EngineConfig) -> Self {
        Coordinator {
            inner: Arc::new(Mutex::new(Inner {
                engine: CoordinationEngine::new(db, config),
                subscribers: Vec::new(),
                tags: FastMap::default(),
                disconnected: 0,
                sink: None,
            })),
        }
    }

    /// Opens a [`Session`]. Queries submitted through the session are
    /// withdrawn when it is closed or dropped.
    pub fn session(&self) -> Session {
        Session {
            coordinator: self.clone(),
            ids: Vec::new(),
            id_set: eq_ir::FastSet::default(),
            closed: false,
        }
    }

    /// Subscribes to the service's [`Event`] stream, starting now
    /// (outcomes that became terminal before the subscription are not
    /// replayed; the engine's outcome log is only kept while at least
    /// one subscriber is listening). The subscription is a bounded
    /// queue of [`DEFAULT_EVENT_CAPACITY`] events under
    /// [`OverflowPolicy::Block`]: a full queue applies backpressure to
    /// the publisher instead of growing without bound.
    ///
    /// **Blocking contract:** events are published while the service
    /// lock is held, so a full `Block` queue suspends the publishing
    /// operation (flush, cancel, session close) — and with it every
    /// other `Coordinator` call — until the subscriber drains. Drain
    /// from a dedicated thread that does **not** call back into the
    /// `Coordinator`, or pick a capacity that covers the largest round
    /// you will publish before draining
    /// ([`Coordinator::subscribe_with`]); single-threaded consumers
    /// that drain lazily should prefer [`OverflowPolicy::DropOldest`]
    /// (evictions are counted, never silent).
    pub fn subscribe(&self) -> Events {
        self.subscribe_with(DEFAULT_EVENT_CAPACITY, OverflowPolicy::Block)
    }

    /// [`Coordinator::subscribe`] with an explicit queue bound and
    /// [`OverflowPolicy`]. No policy loses terminal events *silently*:
    /// `Block` delivers everything (backpressure), `DropOldest` counts
    /// every eviction in the subscriber's [`SubscriberStats`], and
    /// `Disconnect` ends the subscription visibly on overflow (counted
    /// in [`Coordinator::disconnected_subscribers`]).
    ///
    /// ```
    /// use eq_core::{Coordinator, EngineConfig, OverflowPolicy};
    /// use eq_db::Database;
    ///
    /// let coordinator = Coordinator::new(Database::new(), EngineConfig::default());
    /// let events = coordinator.subscribe_with(64, OverflowPolicy::DropOldest);
    /// assert_eq!(events.stats().dropped, 0);
    /// ```
    pub fn subscribe_with(&self, capacity: usize, policy: OverflowPolicy) -> Events {
        let (tx, rx) = events::bounded(capacity, policy);
        let mut inner = self.inner.lock();
        inner.subscribers.push(tx);
        inner.engine.set_outcome_log(true);
        rx
    }

    /// Number of live event subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subscribers.len()
    }

    /// How many subscriptions ended from the publisher's side — the
    /// subscriber's receiver was dropped (possibly mid-flush), or its
    /// [`OverflowPolicy::Disconnect`] queue overflowed. The fan-out
    /// never panics or stalls on such a subscriber; it prunes it and
    /// accounts the disconnect here.
    pub fn disconnected_subscribers(&self) -> u64 {
        self.inner.lock().disconnected
    }

    /// Runs a set-at-a-time evaluation round over the dirty components
    /// (see [`CoordinationEngine::flush`]), pushing one terminal event
    /// per retired query followed by an [`Event::Flushed`] report.
    ///
    /// The published report carries the service-lock hold-time counters
    /// ([`BatchReport::lock_hold_ns`] and friends): `lock_hold_ns` is
    /// stamped from inside the critical section after the engine flush
    /// and the terminal-event fan-out, so it measures exactly the time
    /// this flush pinned every other `Coordinator` call (minus the
    /// trailing `Flushed` broadcast itself, which cannot observe its
    /// own cost).
    pub fn flush(&self) -> BatchReport {
        let mut inner = self.inner.lock();
        let mut report = inner.engine.flush();
        inner.pump();
        let stats = self.inner.stats();
        report.lock_acquisitions = stats.acquisitions;
        report.lock_max_hold_ns = stats.max_hold_ns;
        report.lock_hold_ns = inner.held_ns();
        inner.publish_flushed(report);
        report
    }

    /// Snapshot of the service lock's hold-time counters (completed
    /// holds only). The same numbers ride on every published
    /// [`Event::Flushed`] report; this accessor exists for callers that
    /// want them between flushes.
    pub fn lock_stats(&self) -> LockStats {
        self.inner.stats()
    }

    /// Sweeps expired queries (engine staleness bound and per-query
    /// deadlines), pushing their [`Event::Expired`] events. Returns how
    /// many queries expired.
    pub fn expire_stale(&self) -> usize {
        let mut inner = self.inner.lock();
        let expired = inner.engine.expire_stale();
        inner.pump();
        expired
    }

    /// Withdraws a pending query. Typed refusals: the id was never
    /// submitted ([`CoordinationError::UnknownQuery`]) or the query
    /// already reached a terminal status
    /// ([`CoordinationError::AlreadyTerminal`]).
    pub fn cancel(&self, id: QueryId) -> Result<(), CoordinationError> {
        let mut inner = self.inner.lock();
        if inner.engine.cancel(id) {
            inner.pump();
            return Ok(());
        }
        match inner.engine.status(id) {
            Some(status) => Err(CoordinationError::AlreadyTerminal(status.clone())),
            None => Err(CoordinationError::UnknownQuery(id)),
        }
    }

    /// Withdraws every still-pending query in `ids` under **one** lock
    /// acquisition (session close uses this), pushing their
    /// [`Event::Cancelled`] events in one pump. Already-terminal and
    /// unknown ids are skipped. Returns how many were withdrawn.
    pub fn cancel_all(&self, ids: &[QueryId]) -> usize {
        let mut inner = self.inner.lock();
        let mut withdrawn = 0;
        for &id in ids {
            if inner.engine.cancel(id) {
                withdrawn += 1;
            }
        }
        if withdrawn > 0 {
            inner.pump();
        }
        withdrawn
    }

    /// The status of a query, if known.
    pub fn status(&self, id: QueryId) -> Option<QueryStatus> {
        self.inner.lock().engine.status(id).cloned()
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.inner.lock().engine.pending_count()
    }

    /// Shared handle to the service's database; write to it between
    /// rounds to load or update data (a write re-dirties kept-pending
    /// components at the next flush).
    pub fn db(&self) -> Arc<RwLock<Database>> {
        self.inner.lock().engine.db()
    }

    /// Bulk-loads rows into a table through the database lock — one
    /// lock acquisition and one revision bump
    /// ([`Database::insert_many`]).
    pub fn load(&self, table: &str, rows: Vec<Tuple>) -> Result<usize, CoordinationError> {
        let mut inner = self.inner.lock();
        let logged = inner.sink.is_some().then(|| rows.clone());
        let inserted = {
            let db = inner.engine.db();
            let mut guard = db.write();
            guard.insert_many(table, rows)?
        };
        // Only a load that actually happened is recorded; a refused one
        // (unknown table, arity mismatch) leaves no trace to replay.
        if let (Some(sink), Some(rows)) = (inner.sink.as_mut(), logged) {
            sink.record_load(table, &rows);
        }
        Ok(inserted)
    }

    /// Structural invariant check, typed
    /// ([`crate::InvariantViolation`] folded into
    /// [`CoordinationError`]).
    pub fn check_invariants(&self) -> Result<(), CoordinationError> {
        Ok(self.inner.lock().engine.check_invariants()?)
    }

    /// Current §3.1.1 safety violations in the pending pool (see
    /// [`CoordinationEngine::safety_violations`]).
    pub fn safety_violations(&self) -> Vec<SafetyViolation> {
        self.inner.lock().engine.safety_violations()
    }

    /// Queries that §3.1.1 enforcement would sideline right now (see
    /// [`CoordinationEngine::safety_sidelined`]).
    pub fn safety_sidelined(&self) -> Vec<QueryId> {
        self.inner.lock().engine.safety_sidelined()
    }

    pub(crate) fn submit_locked(
        &self,
        request: SubmitRequest,
    ) -> Result<QueryHandle, CoordinationError> {
        let mut inner = self.inner.lock();
        let opts = request.to_options(Instant::now());
        // The sink needs the query after the engine consumes it; pay
        // for the clone only when durability is on.
        let logged = inner.sink.is_some().then(|| request.query.clone());
        let result = inner.engine.submit_with(request.query, opts);
        if let Ok(handle) = &result {
            if let (Some(sink), Some(query)) = (inner.sink.as_mut(), logged) {
                sink.record_submit(
                    handle.id,
                    &query,
                    request.tag.as_deref(),
                    opts.on_no_solution,
                );
            }
            if let Some(tag) = request.tag {
                inner.tags.insert(handle.id, tag);
            }
        }
        // Pump after the submit record: an incremental-mode outcome of
        // this very submission must land in the log *after* it.
        inner.pump();
        Ok(result?)
    }

    pub(crate) fn submit_batch_locked(
        &self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        let mut tags: Vec<Option<String>> = Vec::with_capacity(requests.len());
        let mut opts_list: Vec<SubmitOptions> = Vec::with_capacity(requests.len());
        let logged: Option<Vec<EntangledQuery>> = inner
            .sink
            .is_some()
            .then(|| requests.iter().map(|r| r.query.clone()).collect());
        let batch: Vec<(EntangledQuery, SubmitOptions)> = requests
            .into_iter()
            .map(|r| {
                let opts = r.to_options(now);
                tags.push(r.tag);
                opts_list.push(opts);
                (r.query, opts)
            })
            .collect();
        let results = inner.engine.submit_batch(batch);
        for (i, (result, tag)) in results.iter().zip(tags).enumerate() {
            if let Ok(handle) = result {
                if let (Some(sink), Some(queries)) = (inner.sink.as_mut(), logged.as_ref()) {
                    sink.record_submit(
                        handle.id,
                        &queries[i],
                        tag.as_deref(),
                        opts_list[i].on_no_solution,
                    );
                }
                if let Some(tag) = tag {
                    inner.tags.insert(handle.id, tag);
                }
            }
        }
        inner.pump();
        results
            .into_iter()
            .map(|r| r.map_err(CoordinationError::from))
            .collect()
    }

    /// Installs the durability recorder and switches the engine's
    /// outcome log on for good (the sink counts as a permanent
    /// listener). One sink per service; called by
    /// [`crate::durable::DurableCoordinator`] before any submission.
    pub(crate) fn install_sink(&self, sink: Box<dyn DurabilitySink>) {
        let mut inner = self.inner.lock();
        inner.engine.set_outcome_log(true);
        inner.sink = Some(sink);
    }

    /// Re-admits a recovered submission under its **original** id,
    /// bypassing the sink (the WAL already holds this record — logging
    /// it again would duplicate it on the next replay). Recovery calls
    /// this in ascending id order, then restores the id watermark past
    /// the maximum. Does not pump: the caller pumps once after the
    /// whole replay so recovery-time outcomes are recorded in one
    /// batch, each after its submission record.
    pub(crate) fn recover_submit(
        &self,
        id: QueryId,
        query: EntangledQuery,
        opts: SubmitOptions,
        tag: Option<String>,
    ) -> Result<QueryHandle, CoordinationError> {
        let mut inner = self.inner.lock();
        inner.engine.set_next_query_id(id.0);
        let handle = inner.engine.submit_with(query, opts)?;
        debug_assert_eq!(handle.id, id, "recovery must reproduce the logged id");
        if let Some(tag) = tag {
            inner.tags.insert(handle.id, tag);
        }
        Ok(handle)
    }

    /// Drains and records/broadcasts any terminal outcomes produced
    /// outside the normal operation paths (recovery replay uses this).
    pub(crate) fn pump_now(&self) {
        self.inner.lock().pump();
    }

    /// Runs `f` with the engine under the service lock — checkpointing
    /// snapshots the database and the id watermark through this, so the
    /// image is consistent with respect to concurrent operations.
    pub(crate) fn with_engine<R>(&self, f: impl FnOnce(&mut CoordinationEngine) -> R) -> R {
        f(&mut self.inner.lock().engine)
    }
}

/// A group of queries owned by one client of the [`Coordinator`].
///
/// Submissions go through the session so the service knows which
/// pending queries belong to which client; when the session is closed
/// (or dropped), its still-pending queries are withdrawn and their
/// subscribers receive [`Event::Cancelled`].
///
/// ```
/// use eq_core::{Coordinator, EngineConfig, EngineMode, SubmitRequest};
/// use eq_db::Database;
/// use eq_sql::parse_ir_query;
///
/// let mut db = Database::new();
/// db.create_table("F", &["fno", "dest"]).unwrap();
/// let coordinator = Coordinator::new(
///     db,
///     EngineConfig {
///         mode: EngineMode::SetAtATime { batch_size: 0 },
///         ..Default::default()
///     },
/// );
/// {
///     let mut session = coordinator.session();
///     session
///         .submit(SubmitRequest::new(
///             parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap(),
///         ))
///         .unwrap();
///     assert_eq!(coordinator.pending_count(), 1);
/// } // session dropped: its pending query is withdrawn
/// assert_eq!(coordinator.pending_count(), 0);
/// ```
pub struct Session {
    coordinator: Coordinator,
    ids: Vec<QueryId>,
    /// Membership mirror of `ids`, so per-query operations don't scan
    /// the submission history.
    id_set: eq_ir::FastSet<QueryId>,
    closed: bool,
}

impl Session {
    /// Submits one query. In incremental mode coordination is attempted
    /// before this returns, so the handle may already hold the outcome
    /// (and the matching event is already published).
    pub fn submit(
        &mut self,
        request: impl Into<SubmitRequest>,
    ) -> Result<QueryHandle, CoordinationError> {
        let handle = self.coordinator.submit_locked(request.into())?;
        self.ids.push(handle.id);
        self.id_set.insert(handle.id);
        Ok(handle)
    }

    /// Submits a batch, running admission probing in parallel across
    /// the index shards (see [`CoordinationEngine::submit_batch`]).
    /// Per-query results are positional; the whole batch is admitted
    /// under one service lock.
    pub fn submit_batch(
        &mut self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let results = self.coordinator.submit_batch_locked(requests);
        for handle in results.iter().flatten() {
            self.ids.push(handle.id);
            self.id_set.insert(handle.id);
        }
        results
    }

    /// Withdraws one of this session's queries (see
    /// [`Coordinator::cancel`]).
    pub fn cancel(&self, id: QueryId) -> Result<(), CoordinationError> {
        if !self.id_set.contains(&id) {
            return Err(CoordinationError::UnknownQuery(id));
        }
        self.coordinator.cancel(id)
    }

    /// Ids of every query submitted through this session, in
    /// submission order.
    pub fn ids(&self) -> &[QueryId] {
        &self.ids
    }

    /// Ids of this session's queries that are still pending.
    pub fn pending_ids(&self) -> Vec<QueryId> {
        self.ids
            .iter()
            .copied()
            .filter(|&id| matches!(self.coordinator.status(id), Some(QueryStatus::Pending)))
            .collect()
    }

    /// Closes the session, withdrawing its still-pending queries.
    /// Returns how many were withdrawn. Dropping the session does the
    /// same.
    pub fn close(mut self) -> usize {
        self.close_inner()
    }

    fn close_inner(&mut self) -> usize {
        if self.closed {
            return 0;
        }
        self.closed = true;
        // One lock acquisition and one event pump for the whole
        // session, however many queries it submitted over its life.
        self.coordinator.cancel_all(&self.ids)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.insert_many(
            "F",
            vec![
                vec![Value::int(122), Value::str("Paris")],
                vec![Value::int(136), Value::str("Rome")],
            ],
        )
        .unwrap();
        db
    }

    fn batch_coordinator(db: Database) -> Coordinator {
        Coordinator::new(
            db,
            EngineConfig {
                mode: crate::engine::EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        )
    }

    #[test]
    fn handles_and_events_agree() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        let h1 = session
            .submit(
                SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)")).tag("kramer"),
            )
            .unwrap();
        let _h2 = session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        assert_eq!(report.answered, 2);
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        let evs = events.drain();
        // Two Answered events then the Flushed report.
        assert_eq!(evs.len(), 3);
        assert!(evs[0].is_terminal() && evs[1].is_terminal());
        let kramer = evs.iter().find(|e| e.id() == Some(h1.id)).unwrap();
        assert_eq!(kramer.tag(), Some("kramer"));
        assert!(matches!(*evs[2], Event::Flushed(r) if r.answered == 2));
        session.close();
    }

    #[test]
    fn flush_report_carries_lock_hold_counters() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        // The two submits completed their lock holds before the flush
        // acquired; the flush's own (in-progress) hold is measured
        // directly off its guard.
        assert!(report.lock_acquisitions >= 2);
        assert!(report.lock_hold_ns > 0);
        // The published Flushed event carries the identical report.
        let evs = events.drain();
        let flushed = evs
            .iter()
            .find_map(|e| match **e {
                Event::Flushed(r) => Some(r),
                _ => None,
            })
            .unwrap();
        assert_eq!(flushed, report);
        // The standalone snapshot is a pure atomic read (it does not
        // itself take the service lock), so it never runs behind the
        // report's figure.
        let stats = coordinator.lock_stats();
        assert!(stats.acquisitions >= report.lock_acquisitions);
        assert!(stats.max_hold_ns > 0);
        assert!(stats.hold_ns >= stats.max_hold_ns);
    }

    #[test]
    fn session_drop_withdraws_pending_queries() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let h = {
            let mut session = coordinator.session();
            session
                .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                .unwrap()
        };
        assert_eq!(coordinator.pending_count(), 0);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Cancelled)
        );
        let evs = events.drain();
        assert!(matches!(evs.as_slice(), [e] if matches!(**e, Event::Cancelled { .. })));
        coordinator.check_invariants().unwrap();
    }

    #[test]
    fn cancel_reports_typed_errors() {
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        let h = session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert!(session.cancel(h.id).is_ok());
        assert_eq!(
            coordinator.cancel(h.id),
            Err(CoordinationError::AlreadyTerminal(QueryStatus::Failed(
                FailReason::Cancelled
            )))
        );
        assert_eq!(
            coordinator.cancel(QueryId(999)),
            Err(CoordinationError::UnknownQuery(QueryId(999)))
        );
        assert!(matches!(
            session.cancel(QueryId(999)),
            Err(CoordinationError::UnknownQuery(_))
        ));
    }

    #[test]
    fn per_query_deadline_expires_via_service() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        let h = session
            .submit(
                SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                    .staleness(Duration::from_millis(1))
                    .tag("doomed"),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(coordinator.expire_stale(), 1);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Stale)
        );
        let evs = events.drain();
        assert!(
            matches!(evs.as_slice(), [e] if matches!(&**e, Event::Expired { tag: Some(t), .. } if t == "doomed")),
            "{evs:?}"
        );
    }

    #[test]
    fn submit_batch_through_session() {
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        let results = session.submit_batch(vec![
            SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)")),
            SubmitRequest::new(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)")),
            SubmitRequest::new(EntangledQuery::new(vec![], vec![], vec![])),
        ]);
        assert!(results[0].is_ok() && results[1].is_ok());
        assert!(matches!(results[2], Err(CoordinationError::Invalid(_))));
        assert_eq!(coordinator.flush().answered, 2);
        assert_eq!(session.pending_ids().len(), 0);
    }

    #[test]
    fn clones_share_one_engine() {
        let coordinator = batch_coordinator(flight_db());
        let other = coordinator.clone();
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert_eq!(other.pending_count(), 1);
        let worker = {
            let other = other.clone();
            std::thread::spawn(move || other.flush())
        };
        let report = worker.join().unwrap();
        assert_eq!(report.pending, 1);
    }

    #[test]
    fn load_goes_through_one_revision_bump() {
        let coordinator = batch_coordinator(flight_db());
        let before = coordinator.db().read().revision();
        coordinator
            .load(
                "F",
                vec![
                    vec![Value::int(200), Value::str("Athens")],
                    vec![Value::int(201), Value::str("Athens")],
                ],
            )
            .unwrap();
        assert_eq!(coordinator.db().read().revision(), before + 1);
        assert!(matches!(
            coordinator.load("Nope", vec![]),
            Err(CoordinationError::Db(_))
        ));
    }

    #[test]
    fn events_start_at_subscription_not_at_service_birth() {
        // No subscriber: outcomes are delivered on handles only (the
        // engine's outcome log stays off). A later subscriber sees
        // only what happens after it arrived — no replay.
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(coordinator.flush().answered, 2);

        let events = coordinator.subscribe();
        assert!(events.try_next().is_none(), "no replay of old outcomes");
        let h = session
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        coordinator.cancel(h.id).unwrap();
        let evs = events.drain();
        assert!(matches!(evs.as_slice(), [e] if matches!(**e, Event::Cancelled { .. })));
    }

    #[test]
    fn flushed_arrives_after_every_terminal_event_under_bounded_channels() {
        // A tiny Block queue forces the publisher to interleave with a
        // concurrent drainer; per-subscriber FIFO plus pump-then-report
        // under one lock must still deliver every terminal event of a
        // flush *before* that flush's report.
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::Block);
        let drainer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(e) = events.next_timeout(Duration::from_secs(10)) {
                let flushed = matches!(*e, Event::Flushed(_));
                seen.push(e);
                if flushed {
                    break;
                }
            }
            seen
        });
        let mut session = coordinator.session();
        let mut expected = Vec::new();
        for i in 0..8 {
            let h = session
                .submit(q(&format!(
                    "{{R(B{i}, ITH)}} R(A{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            expected.push(h.id);
            let h = session
                .submit(q(&format!(
                    "{{R(A{i}, ITH)}} R(B{i}, ITH) <- F(y{i}, Paris)"
                )))
                .unwrap();
            expected.push(h.id);
        }
        let report = coordinator.flush();
        assert_eq!(report.answered, 16);
        let seen = drainer.join().unwrap();
        let flushed_at = seen
            .iter()
            .position(|e| matches!(**e, Event::Flushed(_)))
            .expect("flush report delivered");
        let terminals_before: Vec<QueryId> =
            seen[..flushed_at].iter().filter_map(|e| e.id()).collect();
        for id in expected {
            assert!(
                terminals_before.contains(&id),
                "terminal event for {id:?} must precede Flushed"
            );
        }
        assert_eq!(flushed_at, seen.len() - 1, "Flushed is last");
    }

    #[test]
    fn dropped_subscriber_mid_flight_is_accounted_not_fatal() {
        // A subscriber vanishes (receiver dropped) while its session's
        // queries are still pending; the session close then broadcasts
        // Cancelled events into the dead subscription. The fan-out must
        // prune it and account the disconnect — never panic, never
        // block.
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(1, OverflowPolicy::Block);
        let mut session = coordinator.session();
        for i in 0..4 {
            session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
        }
        drop(events); // subscriber dies with 4 queries in flight
        session.close(); // broadcasts 4 Cancelled events
        assert_eq!(coordinator.disconnected_subscribers(), 1);
        assert_eq!(coordinator.subscriber_count(), 0);
        assert_eq!(coordinator.pending_count(), 0);
        coordinator.check_invariants().unwrap();
    }

    #[test]
    fn drop_oldest_policy_counts_evictions() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::DropOldest);
        let mut session = coordinator.session();
        for i in 0..6 {
            let h = session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            coordinator.cancel(h.id).unwrap();
        }
        let stats_before_drain = events.stats();
        assert_eq!(stats_before_drain.dropped, 4, "evictions are counted");
        assert_eq!(events.drain().len(), 2);
        assert!(!events.stats().disconnected);
        // Published (6) == delivered (2) + dropped (4): nothing silent.
        let stats = events.stats();
        assert_eq!(stats.delivered + stats.dropped, 6);
    }

    #[test]
    fn disconnect_policy_surfaces_overflow() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::Disconnect);
        let mut session = coordinator.session();
        for i in 0..5 {
            let h = session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            coordinator.cancel(h.id).unwrap();
        }
        // Third cancel overflowed the queue: subscriber disconnected,
        // backlog still drainable, publisher accounted it.
        assert_eq!(coordinator.disconnected_subscribers(), 1);
        assert_eq!(coordinator.subscriber_count(), 0);
        assert_eq!(events.drain().len(), 2);
        assert!(events.stats().disconnected);
    }

    #[test]
    fn coordinator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Coordinator>();
        assert_send_sync::<Event>();
    }
}
