//! The `Coordinator` service facade: the paper's D3C middleware as a
//! long-running *service* API (§5.1) rather than a single-owner
//! `&mut` engine.
//!
//! A [`Coordinator`] is a clonable handle around a **sharded** pool of
//! internally synchronized [`CoordinationEngine`]s; clones share the
//! service, so an application can submit from one place, flush from
//! another, and observe outcomes from a third. On top of the raw
//! engine it adds:
//!
//! * **[`Session`]s** — each session owns the queries submitted through
//!   it and withdraws the still-pending ones when it is closed or
//!   dropped, giving connection-scoped cleanup for free (the paper's
//!   queries live inside client transactions; a dropped connection must
//!   not leak pending residents);
//! * **[`SubmitRequest`]** — a per-query builder (`deadline`,
//!   `staleness`, `on_no_solution`, `tag`) replacing engine-wide
//!   configuration knobs for per-query concerns, plus
//!   [`Session::submit_batch`], whose admission probes run in parallel
//!   across the sharded atom indexes
//!   ([`CoordinationEngine::submit_batch`]);
//! * **[`Event`] subscriptions** — terminal outcomes and flush reports
//!   are *pushed* over **bounded** per-subscriber queues
//!   ([`Coordinator::subscribe`], [`Coordinator::subscribe_with`]) with
//!   an explicit [`OverflowPolicy`] (block / drop-oldest / disconnect —
//!   see [`crate::events`]). Delivery is **out-of-lock**: events are
//!   staged on an ordered dispatch queue inside the shard critical
//!   section that produced them and fanned out only after every
//!   service lock is released (`crate::dispatch`), so a slow
//!   subscriber can stall at most the dispatching thread, never
//!   admission;
//! * **service sharding** — with [`EngineConfig::service_shards`] > 1,
//!   pending queries are partitioned by `(relation, arity)`
//!   connectivity across independently locked engine shards (see
//!   `Router` below); a submission touching only one connectivity group
//!   contends only on that group's shard lock, and the rare query
//!   bridging two groups takes a rendezvous path that merges them;
//! * **typed errors** — every operation reports
//!   [`CoordinationError`], the unified hierarchy of
//!   [`crate::error`].
//!
//! One-shot coordination ([`crate::coordinate()`]) is a thin wrapper
//! over a throwaway `Coordinator` session.
//!
//! # Example: a session, a subscriber, a flush
//!
//! ```
//! use eq_core::{Coordinator, EngineConfig, EngineMode, Event, SubmitRequest};
//! use eq_db::Database;
//! use eq_ir::Value;
//! use eq_sql::parse_ir_query;
//!
//! let mut db = Database::new();
//! db.create_table("F", &["fno", "dest"]).unwrap();
//! db.insert("F", vec![Value::int(122), Value::str("Paris")]).unwrap();
//!
//! let coordinator = Coordinator::new(
//!     db,
//!     EngineConfig {
//!         mode: EngineMode::SetAtATime { batch_size: 0 },
//!         ..Default::default()
//!     },
//! );
//! let events = coordinator.subscribe();
//! let mut session = coordinator.session();
//! session
//!     .submit(SubmitRequest::new(
//!         parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap(),
//!     ))
//!     .unwrap();
//! session
//!     .submit(SubmitRequest::new(
//!         parse_ir_query("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)").unwrap(),
//!     ))
//!     .unwrap();
//!
//! let report = coordinator.flush();
//! assert_eq!(report.answered, 2);
//! // Two terminal events, then the flush report — in that order.
//! // Subscribers receive `Arc<Event>`: the service materializes each
//! // event once and fans it out by pointer.
//! let drained = events.drain();
//! assert_eq!(drained.len(), 3);
//! assert!(drained[0].is_terminal() && drained[1].is_terminal());
//! assert!(matches!(*drained[2], Event::Flushed(_)));
//! ```

use crate::combine::QueryAnswer;
use crate::coordinate::RejectReason;
use crate::dispatch::Dispatcher;
use crate::engine::{
    BatchReport, CoordinationEngine, EngineConfig, FailReason, NoSolutionPolicy, QueryHandle,
    QueryOutcome, QueryStatus, SubmitOptions,
};
use crate::error::CoordinationError;
use crate::safety::SafetyViolation;
use eq_db::{Database, Tuple};
use eq_ir::{Atom, EntangledQuery, FastMap, QueryId};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};

pub use parking_lot::LockStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::events::{Events, OverflowPolicy, SubscriberStats};

/// Queue capacity used by [`Coordinator::subscribe`] (the
/// [`OverflowPolicy::Block`] default): deep enough that a subscriber
/// draining at flush granularity never blocks a moderate flush, small
/// enough to bound memory under a 100k-query sweep.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One query submission, built fluently.
///
/// Replaces the per-query knobs that used to hide in [`EngineConfig`]:
/// a deadline or staleness bound applies to *this* query, a no-solution
/// policy applies to *this* query's component outcomes, and a tag
/// travels to the [`Event`]s the query produces.
///
/// ```
/// use eq_core::{Coordinator, EngineConfig, NoSolutionPolicy, SubmitRequest};
/// use eq_db::Database;
/// use eq_sql::parse_ir_query;
/// use std::time::Duration;
///
/// let mut db = Database::new();
/// db.create_table("F", &["fno", "dest"]).unwrap();
/// let coordinator = Coordinator::new(db, EngineConfig::default());
/// let mut session = coordinator.session();
///
/// let request = SubmitRequest::new(
///     parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap())
///     .staleness(Duration::from_secs(30))
///     .on_no_solution(NoSolutionPolicy::KeepPending)
///     .tag("kramer-paris");
/// let handle = session.submit(request).unwrap();
/// assert_eq!(coordinator.pending_count(), 1);
/// assert!(handle.outcome.try_recv().is_err()); // waiting for Jerry
/// ```
#[derive(Debug)]
pub struct SubmitRequest {
    query: EntangledQuery,
    deadline: Option<Instant>,
    staleness: Option<Duration>,
    on_no_solution: Option<NoSolutionPolicy>,
    tag: Option<String>,
}

impl SubmitRequest {
    /// A request with no per-query overrides.
    pub fn new(query: EntangledQuery) -> Self {
        SubmitRequest {
            query,
            deadline: None,
            staleness: None,
            on_no_solution: None,
            tag: None,
        }
    }

    /// Absolute deadline: fail the query as expired if it is still
    /// pending when `deadline` passes. Takes precedence over
    /// [`SubmitRequest::staleness`] when both are set.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Relative staleness bound: fail the query as expired if it is
    /// still pending `bound` after submission (a per-query version of
    /// [`EngineConfig::staleness`]).
    pub fn staleness(mut self, bound: Duration) -> Self {
        self.staleness = Some(bound);
        self
    }

    /// What to do with this query when its matched component has no
    /// database solution (overrides [`EngineConfig::on_no_solution`]).
    pub fn on_no_solution(mut self, policy: NoSolutionPolicy) -> Self {
        self.on_no_solution = Some(policy);
        self
    }

    /// Opaque application label, echoed on every [`Event`] this query
    /// produces.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    fn to_options(&self, now: Instant) -> SubmitOptions {
        SubmitOptions {
            deadline: self
                .deadline
                .or_else(|| self.staleness.map(|bound| now + bound)),
            on_no_solution: self.on_no_solution,
        }
    }
}

impl From<EntangledQuery> for SubmitRequest {
    fn from(query: EntangledQuery) -> Self {
        SubmitRequest::new(query)
    }
}

/// A coordination event, pushed to every subscriber
/// ([`Coordinator::subscribe`]).
///
/// Query events carry the submission's tag (if any); every submitted
/// query produces **exactly one** terminal event — `Answered`,
/// `Failed`, `Expired`, or `Cancelled` — property-tested against the
/// engine's final [`QueryStatus`] under churn.
#[derive(Clone, Debug)]
pub enum Event {
    /// The query coordinated; the answer is attached.
    Answered {
        /// The answered query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
        /// The coordinated answer.
        answer: QueryAnswer,
    },
    /// The query was rejected during a coordination round.
    Failed {
        /// The rejected query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
        /// Why it was rejected.
        reason: RejectReason,
    },
    /// The query exceeded its deadline or staleness bound.
    Expired {
        /// The expired query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
    },
    /// The query was withdrawn (explicit cancel, or its session
    /// closed).
    Cancelled {
        /// The withdrawn query.
        id: QueryId,
        /// Its submission tag.
        tag: Option<String>,
    },
    /// A flush completed; the report summarizes the round.
    Flushed(BatchReport),
}

impl Event {
    /// The query this event concerns (`None` for [`Event::Flushed`]).
    pub fn id(&self) -> Option<QueryId> {
        match self {
            Event::Answered { id, .. }
            | Event::Failed { id, .. }
            | Event::Expired { id, .. }
            | Event::Cancelled { id, .. } => Some(*id),
            Event::Flushed(_) => None,
        }
    }

    /// The submission tag, if the event concerns a tagged query.
    pub fn tag(&self) -> Option<&str> {
        match self {
            Event::Answered { tag, .. }
            | Event::Failed { tag, .. }
            | Event::Expired { tag, .. }
            | Event::Cancelled { tag, .. } => tag.as_deref(),
            Event::Flushed(_) => None,
        }
    }

    /// True for a query's terminal event (everything except
    /// [`Event::Flushed`]).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Event::Flushed(_))
    }
}

/// The durability hook: a write-ahead recorder consulted inside the
/// owning shard's critical section at the two points that define the
/// crash-recovery contract — after a submission is admitted (before
/// its handle is released to the caller) and when a terminal outcome
/// is drained (before its event is staged for dispatch).
/// `eq_core::durable` installs a WAL-backed implementation; the trait
/// stays crate-private so the recording points cannot be bypassed or
/// reordered from outside.
pub(crate) trait DurabilitySink: Send {
    /// An admitted submission: `id` was assigned and the caller is
    /// about to be handed its handle. Deadlines are deliberately not
    /// recorded — wall-clock instants don't survive a restart; a
    /// recovered query re-enters the pool deadline-free.
    fn record_submit(
        &mut self,
        id: QueryId,
        query: &EntangledQuery,
        tag: Option<&str>,
        on_no_solution: Option<NoSolutionPolicy>,
    );
    /// A terminal outcome, drained from the engine's outcome log and
    /// not yet staged for broadcast.
    fn record_outcome(&mut self, id: QueryId, outcome: &QueryOutcome);
    /// A successful bulk load into `table`.
    fn record_load(&mut self, table: &str, rows: &[Tuple]);
}

/// One engine shard: a slice of the pending pool behind its own lock.
/// Queries are routed here by `(relation, arity)` connectivity (see
/// [`Router`]), so every match-graph edge — and the Figure-9 admission
/// safety check that polices edges — is shard-local by construction.
struct ShardInner {
    engine: CoordinationEngine,
    tags: FastMap<QueryId, String>,
}

/// Sentinel shard for a union-find group that has not been placed yet.
const UNASSIGNED: u32 = u32::MAX;

/// Routes queries to engine shards by `(relation, arity)` connectivity.
///
/// Two entangled queries can share a match-graph edge only if a head
/// of one unifies with a postcondition of the other — which requires
/// the same relation symbol and arity. A union-find over the
/// `(relation, arity)` keys of every admitted query's head and
/// postcondition atoms therefore *over-approximates* match-graph
/// connectivity: queries whose key sets ended up in different groups
/// are provably edge-free, so homing each group on one shard keeps
/// every possible edge — and the Figure-9 admission safety check that
/// polices edges — shard-local. Over-merging (a query bridging groups
/// that never actually coordinate) only costs parallelism, never
/// correctness.
///
/// A submission whose keys all resolve to one placed group takes the
/// read-locked fast path straight to that group's shard. Anything else
/// — unknown keys, a group not yet placed, or keys spanning groups —
/// takes the write path: groups merge, and if the merged group spans
/// shards the rendezvous migrates every losing shard's members to the
/// winner ([`Coordinator`]'s `route_and_migrate`).
struct Router {
    /// `(relation, arity)` key → union-find slot.
    index: FastMap<u64, u32>,
    parent: Vec<u32>,
    /// Shard owning each group; valid at root slots, [`UNASSIGNED`]
    /// until the group is first placed.
    shard: Vec<u32>,
    /// Key groups homed per shard (placement heuristic for new
    /// groups).
    load: Vec<u32>,
}

/// One write-path routing decision: the shard to admit on, the merged
/// group's union-find root, and the shards whose members of that group
/// must migrate to `shard`.
struct Route {
    shard: usize,
    root: u32,
    losers: Vec<usize>,
}

impl Router {
    fn new(shards: usize) -> Self {
        Router {
            index: FastMap::default(),
            parent: Vec::new(),
            shard: Vec::new(),
            load: vec![0; shards],
        }
    }

    /// The routing key of one answer-relation atom. `Symbol` is
    /// interned, so `(relation, arity)` packs collision-free into a
    /// `u64` — atoms unify only when relation and arity agree, which
    /// is exactly what makes the key a sound connectivity
    /// over-approximation.
    fn key(atom: &Atom) -> u64 {
        ((atom.relation.index() as u64) << 32) | atom.terms.len() as u64
    }

    /// Sorted, deduplicated routing keys of a query's head and
    /// postcondition atoms (body atoms name database relations and
    /// never form match edges).
    fn query_keys(query: &EntangledQuery) -> Vec<u64> {
        let mut keys: Vec<u64> = query
            .head
            .iter()
            .chain(query.postconditions.iter())
            .map(Self::key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn intern(&mut self, key: u64) -> u32 {
        if let Some(&slot) = self.index.get(&key) {
            return slot;
        }
        let slot = self.parent.len() as u32;
        self.parent.push(slot);
        self.shard.push(UNASSIGNED);
        self.index.insert(key, slot);
        slot
    }

    /// Non-compressing find, usable under a read guard (chains grow by
    /// one hop per merge and merges are rare; the write path re-roots
    /// directly).
    fn find(&self, mut slot: u32) -> u32 {
        while self.parent[slot as usize] != slot {
            slot = self.parent[slot as usize];
        }
        slot
    }

    /// Root of the group owning `query`, if its keys are interned. All
    /// of an admitted query's keys are in one group (an admission
    /// invariant the write path maintains), so the first head atom's
    /// key decides.
    fn root_of(&self, query: &EntangledQuery) -> Option<u32> {
        let key = Self::key(&query.head[0]);
        self.index.get(&key).map(|&slot| self.find(slot))
    }

    /// Read-path resolution: the placed shard every key agrees on, or
    /// `None` if any key is unknown, the keys span groups, or the
    /// group is unplaced — all of which take the write path.
    fn resolve(&self, keys: &[u64]) -> Option<usize> {
        let mut root: Option<u32> = None;
        for key in keys {
            let slot = *self.index.get(key)?;
            let r = self.find(slot);
            match root {
                None => root = Some(r),
                Some(r0) if r0 == r => {}
                Some(_) => return None,
            }
        }
        let shard = self.shard[root? as usize];
        (shard != UNASSIGNED).then_some(shard as usize)
    }

    /// Write-path routing: interns unknown keys, merges every group
    /// the key set touches into one, places the merged group — on the
    /// least-loaded shard if none was placed yet, else on the
    /// least-loaded *involved* shard, ties to the lowest index (the
    /// deterministic rendezvous winner; preferring the lowest index
    /// unconditionally would pile every merged group onto shard 0) —
    /// and names the shards that now owe a migration.
    fn route(&mut self, keys: &[u64]) -> Route {
        let slots: Vec<u32> = keys.iter().map(|&k| self.intern(k)).collect();
        let mut roots: Vec<u32> = slots.iter().map(|&s| self.find(s)).collect();
        roots.sort_unstable();
        roots.dedup();
        let mut involved: Vec<u32> = roots
            .iter()
            .map(|&r| self.shard[r as usize])
            .filter(|&s| s != UNASSIGNED)
            .collect();
        involved.sort_unstable();
        involved.dedup();
        let target = if involved.is_empty() {
            let mut best = 0usize;
            for (s, &l) in self.load.iter().enumerate() {
                if l < self.load[best] {
                    best = s;
                }
            }
            best as u32
        } else {
            *involved
                .iter()
                .min_by_key(|&&s| (self.load[s as usize], s))
                .expect("non-empty involved set")
        };
        let winner_root = roots[0];
        for &r in &roots {
            let owner = self.shard[r as usize];
            if owner != UNASSIGNED {
                self.load[owner as usize] -= 1;
            }
            self.parent[r as usize] = winner_root;
        }
        self.shard[winner_root as usize] = target;
        self.load[target as usize] += 1;
        Route {
            shard: target as usize,
            root: winner_root,
            losers: involved
                .into_iter()
                .filter(|&s| s != target)
                .map(|s| s as usize)
                .collect(),
        }
    }
}

/// Everything the `Coordinator` clones share. Lock order (debug builds
/// validate it through the instrumented `parking_lot` shim): `router`
/// → shard locks in ascending index → database lock → `sink` →
/// whatever the sink locks internally.
struct ServiceShared {
    shards: Vec<Mutex<ShardInner>>,
    /// Connectivity router. Shard-local admission holds a read guard
    /// across the shard operation; only group merges (and their
    /// migrations) serialize on the write side.
    router: RwLock<Router>,
    dispatcher: Dispatcher,
    /// The database, shared by every engine shard.
    db: Arc<RwLock<Database>>,
    /// Global id counter. Every shard draws from it and a submission
    /// consumes an id only on successful admission, so the sequence is
    /// identical to single-shard submission and recovery reads one
    /// watermark.
    next_id: AtomicU64,
    /// Durability recorder, behind its own (leaf) lock so the
    /// recording points stay inside the producing shard's critical
    /// section without a global service lock.
    sink: Mutex<Option<Box<dyn DurabilitySink>>>,
    /// Lock-free mirror of `sink.is_some()` — submission fast paths
    /// consult it to decide whether to clone the query for logging.
    has_sink: AtomicBool,
}

/// A clonable handle to a running coordination service.
///
/// All clones share one pool of [`CoordinationEngine`] shards
/// ([`EngineConfig::service_shards`]; one shard — the default — is the
/// classic single-mutex service). Every method locks only the shard(s)
/// an operation touches, and event fan-out happens *after* those locks
/// are released (see `crate::dispatch`). Flush-internal parallelism
/// (per-component workers, batched admission probing) is unaffected —
/// it happens inside an engine while its shard lock is held once.
#[derive(Clone)]
pub struct Coordinator {
    shared: Arc<ServiceShared>,
}

impl Coordinator {
    /// Starts a coordination service over `db` with
    /// [`EngineConfig::service_shards`] engine shards (clamped to at
    /// least 1).
    pub fn new(db: Database, config: EngineConfig) -> Self {
        let shard_count = config.service_shards.max(1);
        let db = Arc::new(RwLock::new(db));
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(ShardInner {
                    engine: CoordinationEngine::with_shared_db(Arc::clone(&db), config.clone()),
                    tags: FastMap::default(),
                })
            })
            .collect();
        Coordinator {
            shared: Arc::new(ServiceShared {
                shards,
                router: RwLock::new(Router::new(shard_count)),
                dispatcher: Dispatcher::new(),
                db,
                next_id: AtomicU64::new(1),
                sink: Mutex::new(None),
                has_sink: AtomicBool::new(false),
            }),
        }
    }

    /// Opens a [`Session`]. Queries submitted through the session are
    /// withdrawn when it is closed or dropped.
    pub fn session(&self) -> Session {
        Session {
            coordinator: self.clone(),
            ids: Vec::new(),
            id_set: eq_ir::FastSet::default(),
            closed: false,
        }
    }

    /// Subscribes to the service's [`Event`] stream, starting now
    /// (outcomes that became terminal before the subscription are not
    /// replayed; the engines' outcome logs are only kept while at
    /// least one subscriber is listening). The subscription is a
    /// bounded queue of [`DEFAULT_EVENT_CAPACITY`] events under
    /// [`OverflowPolicy::Block`]: a full queue applies backpressure to
    /// the dispatcher instead of growing without bound.
    ///
    /// **Blocking contract:** events are dispatched *after* every
    /// service lock is released, so a full `Block` queue suspends only
    /// the thread that is currently draining the dispatch queue —
    /// other sessions keep submitting, flushing, and cancelling, with
    /// their events staged for whenever the dispatcher resumes. The
    /// suspended thread is whichever `Coordinator` call happened to
    /// pick up dispatch duty, so that *caller* still waits on the
    /// subscriber: drain from a dedicated thread that does **not**
    /// call back into the `Coordinator`, pick a capacity that covers
    /// the largest round you publish before draining
    /// ([`Coordinator::subscribe_with`]), or — for single-threaded
    /// consumers that drain lazily — prefer
    /// [`OverflowPolicy::DropOldest`] (evictions are counted, never
    /// silent).
    pub fn subscribe(&self) -> Events {
        self.subscribe_with(DEFAULT_EVENT_CAPACITY, OverflowPolicy::Block)
    }

    /// [`Coordinator::subscribe`] with an explicit queue bound and
    /// [`OverflowPolicy`]. No policy loses terminal events *silently*:
    /// `Block` delivers everything (backpressure on the dispatching
    /// thread, never on a shard lock), `DropOldest` counts every
    /// eviction in the subscriber's [`SubscriberStats`], and
    /// `Disconnect` ends the subscription visibly on overflow (counted
    /// in [`Coordinator::disconnected_subscribers`]).
    ///
    /// ```
    /// use eq_core::{Coordinator, EngineConfig, OverflowPolicy};
    /// use eq_db::Database;
    ///
    /// let coordinator = Coordinator::new(Database::new(), EngineConfig::default());
    /// let events = coordinator.subscribe_with(64, OverflowPolicy::DropOldest);
    /// assert_eq!(events.stats().dropped, 0);
    /// ```
    pub fn subscribe_with(&self, capacity: usize, policy: OverflowPolicy) -> Events {
        let rx = self.shared.dispatcher.subscribe(capacity, policy);
        for shard in &self.shared.shards {
            shard.lock().engine.set_outcome_log(true);
        }
        rx
    }

    /// Number of live event subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.shared.dispatcher.subscriber_count()
    }

    /// How many subscriptions ended from the publisher's side — the
    /// subscriber's receiver was dropped (possibly mid-flush), or its
    /// [`OverflowPolicy::Disconnect`] queue overflowed. The fan-out
    /// never panics or stalls on such a subscriber; it prunes it and
    /// accounts the disconnect here.
    pub fn disconnected_subscribers(&self) -> u64 {
        self.shared.dispatcher.disconnected()
    }

    /// Runs a set-at-a-time evaluation round over the dirty components
    /// of every shard (see [`CoordinationEngine::flush`]), staging one
    /// terminal event per retired query followed by an
    /// [`Event::Flushed`] report and dispatching them after all shard
    /// locks are released.
    ///
    /// The published report carries the service-lock hold-time
    /// counters: [`BatchReport::lock_hold_ns`] sums each shard's
    /// critical section for *this* flush (engine flush + event
    /// staging, measured off the live guards),
    /// [`BatchReport::lock_max_hold_ns`] /
    /// [`BatchReport::lock_acquisitions`] aggregate the shard locks'
    /// lifetime counters (max / sum), and
    /// [`BatchReport::dispatch_queue_peak`] snapshots the out-of-lock
    /// dispatch queue's high-water mark.
    pub fn flush(&self) -> BatchReport {
        let mut report = BatchReport::default();
        {
            let _router = self.scan_guard();
            for shard in &self.shared.shards {
                let mut inner = shard.lock();
                let shard_report = inner.engine.flush();
                self.stage_outcomes(&mut inner);
                let held = inner.held_ns();
                merge_reports(&mut report, shard_report);
                report.lock_hold_ns += held;
            }
        }
        let stats = self.lock_stats();
        report.lock_acquisitions = stats.acquisitions;
        report.lock_max_hold_ns = stats.max_hold_ns;
        report.dispatch_queue_peak = self.shared.dispatcher.queue_peak();
        self.stage_flushed(report);
        self.shared.dispatcher.drain();
        report
    }

    /// Snapshot of the shard locks' hold-time counters, aggregated
    /// across shards (acquisitions and hold time summed, max hold
    /// maxed; completed holds only). The same numbers ride on every
    /// published [`Event::Flushed`] report; per-shard figures are
    /// available from [`Coordinator::shard_lock_stats`].
    pub fn lock_stats(&self) -> LockStats {
        let mut out = LockStats::default();
        for shard in &self.shared.shards {
            let s = shard.stats();
            out.acquisitions += s.acquisitions;
            out.hold_ns += s.hold_ns;
            out.max_hold_ns = out.max_hold_ns.max(s.max_hold_ns);
        }
        out
    }

    /// Number of engine shards ([`EngineConfig::service_shards`]).
    pub fn service_shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Per-shard lock hold counters, indexed by shard.
    pub fn shard_lock_stats(&self) -> Vec<LockStats> {
        self.shared.shards.iter().map(|s| s.stats()).collect()
    }

    /// High-water mark of the out-of-lock dispatch queue — the most
    /// events ever staged awaiting a drain (see
    /// [`BatchReport::dispatch_queue_peak`]).
    pub fn dispatch_queue_peak(&self) -> u64 {
        self.shared.dispatcher.queue_peak()
    }

    /// Sweeps expired queries (engine staleness bound and per-query
    /// deadlines) on every shard, staging their [`Event::Expired`]
    /// events. Returns how many queries expired.
    pub fn expire_stale(&self) -> usize {
        let mut expired = 0;
        {
            let _router = self.scan_guard();
            for shard in &self.shared.shards {
                let mut inner = shard.lock();
                expired += inner.engine.expire_stale();
                self.stage_outcomes(&mut inner);
            }
        }
        self.shared.dispatcher.drain();
        expired
    }

    /// Withdraws a pending query. Typed refusals: the id was never
    /// submitted ([`CoordinationError::UnknownQuery`]) or the query
    /// already reached a terminal status
    /// ([`CoordinationError::AlreadyTerminal`]).
    pub fn cancel(&self, id: QueryId) -> Result<(), CoordinationError> {
        let result = self.cancel_routed(id);
        self.shared.dispatcher.drain();
        result
    }

    fn cancel_routed(&self, id: QueryId) -> Result<(), CoordinationError> {
        let _router = self.scan_guard();
        let mut terminal: Option<QueryStatus> = None;
        for shard in &self.shared.shards {
            let mut inner = shard.lock();
            if inner.engine.cancel(id) {
                self.stage_outcomes(&mut inner);
                return Ok(());
            }
            if terminal.is_none() {
                terminal = inner.engine.status(id).cloned();
            }
        }
        match terminal {
            Some(status) => Err(CoordinationError::AlreadyTerminal(status)),
            None => Err(CoordinationError::UnknownQuery(id)),
        }
    }

    /// Withdraws every still-pending query in `ids` under **one** lock
    /// acquisition per shard (session close uses this), staging their
    /// [`Event::Cancelled`] events and dispatching once at the end.
    /// Already-terminal and unknown ids are skipped. Returns how many
    /// were withdrawn.
    pub fn cancel_all(&self, ids: &[QueryId]) -> usize {
        let mut withdrawn = 0;
        {
            let _router = self.scan_guard();
            for shard in &self.shared.shards {
                let mut inner = shard.lock();
                let mut local = 0;
                for &id in ids {
                    if inner.engine.cancel(id) {
                        local += 1;
                    }
                }
                if local > 0 {
                    self.stage_outcomes(&mut inner);
                }
                withdrawn += local;
            }
        }
        if withdrawn > 0 {
            self.shared.dispatcher.drain();
        }
        withdrawn
    }

    /// The status of a query, if known.
    pub fn status(&self, id: QueryId) -> Option<QueryStatus> {
        let _router = self.scan_guard();
        for shard in &self.shared.shards {
            if let Some(status) = shard.lock().engine.status(id).cloned() {
                return Some(status);
            }
        }
        None
    }

    /// Number of pending queries across all shards.
    pub fn pending_count(&self) -> usize {
        let _router = self.scan_guard();
        self.shared
            .shards
            .iter()
            .map(|s| s.lock().engine.pending_count())
            .sum()
    }

    /// Shared handle to the service's database; write to it between
    /// rounds to load or update data (a write re-dirties kept-pending
    /// components at the next flush).
    pub fn db(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.shared.db)
    }

    /// Bulk-loads rows into a table through the database lock — one
    /// lock acquisition and one revision bump
    /// ([`Database::insert_many`]).
    pub fn load(&self, table: &str, rows: Vec<Tuple>) -> Result<usize, CoordinationError> {
        let logged = self
            .shared
            .has_sink
            .load(Ordering::Relaxed)
            .then(|| rows.clone());
        let inserted = self.shared.db.write().insert_many(table, rows)?;
        // Only a load that actually happened is recorded; a refused one
        // (unknown table, arity mismatch) leaves no trace to replay.
        if let Some(rows) = logged {
            if let Some(sink) = self.shared.sink.lock().as_mut() {
                sink.record_load(table, &rows);
            }
        }
        Ok(inserted)
    }

    /// Structural invariant check over every shard, typed
    /// ([`crate::InvariantViolation`] folded into
    /// [`CoordinationError`]).
    pub fn check_invariants(&self) -> Result<(), CoordinationError> {
        let _router = self.scan_guard();
        for shard in &self.shared.shards {
            shard.lock().engine.check_invariants()?;
        }
        Ok(())
    }

    /// Current §3.1.1 safety violations in the pending pool (see
    /// [`CoordinationEngine::safety_violations`]).
    pub fn safety_violations(&self) -> Vec<SafetyViolation> {
        let _router = self.scan_guard();
        self.shared
            .shards
            .iter()
            .flat_map(|s| s.lock().engine.safety_violations())
            .collect()
    }

    /// Queries that §3.1.1 enforcement would sideline right now (see
    /// [`CoordinationEngine::safety_sidelined`]).
    pub fn safety_sidelined(&self) -> Vec<QueryId> {
        let _router = self.scan_guard();
        self.shared
            .shards
            .iter()
            .flat_map(|s| s.lock().engine.safety_sidelined())
            .collect()
    }

    /// Router read guard held across scan/shard-lock sections so a
    /// concurrent group merge (router write + migration) cannot move a
    /// query between shards mid-scan. `None` with a single shard —
    /// there is nothing to route.
    fn scan_guard(&self) -> Option<RwLockReadGuard<'_, Router>> {
        (self.shared.shards.len() > 1).then(|| self.shared.router.read())
    }

    /// Converts a shard's freshly drained terminal outcomes into
    /// events and **stages** them on the dispatch queue, recording
    /// each in the durability sink first (durability before
    /// visibility). Runs inside the shard's critical section so stage
    /// order equals retirement order — but performs no subscriber I/O:
    /// delivery happens in the dispatcher's drain, after every lock is
    /// released. This and [`Coordinator::stage_flushed`] are the only
    /// functions that construct events (`eq_check`'s
    /// `event-choke-point` rule), and nothing publishes under a lock
    /// (`no-publish-under-lock`).
    fn stage_outcomes(&self, inner: &mut ShardInner) {
        let outcomes = inner.engine.drain_outcome_log();
        if !outcomes.is_empty() {
            let mut sink = self.shared.sink.lock();
            for (id, outcome) in outcomes {
                if let Some(sink) = sink.as_mut() {
                    sink.record_outcome(id, &outcome);
                }
                let tag = inner.tags.remove(&id);
                let event = match outcome {
                    QueryOutcome::Answered(answer) => Event::Answered { id, tag, answer },
                    QueryOutcome::Failed(FailReason::Stale) => Event::Expired { id, tag },
                    QueryOutcome::Failed(FailReason::Cancelled) => Event::Cancelled { id, tag },
                    QueryOutcome::Failed(FailReason::Rejected(reason)) => {
                        Event::Failed { id, tag, reason }
                    }
                };
                self.shared.dispatcher.enqueue(event);
            }
        }
        if self.shared.dispatcher.subscriber_count() == 0
            && !self.shared.has_sink.load(Ordering::Relaxed)
        {
            inner.engine.set_outcome_log(false);
        }
    }

    /// The single place a [`Event::Flushed`] report is staged.
    fn stage_flushed(&self, report: BatchReport) {
        self.shared.dispatcher.enqueue(Event::Flushed(report));
    }

    pub(crate) fn submit_request(
        &self,
        request: SubmitRequest,
    ) -> Result<QueryHandle, CoordinationError> {
        let opts = request.to_options(Instant::now());
        let result = self.submit_routed(request.query, opts, request.tag, true);
        self.shared.dispatcher.drain();
        result
    }

    /// Routes one submission to its shard and admits it there. The
    /// fast path resolves the query's keys under the router read lock
    /// and holds that guard across the shard operation; unknown keys
    /// or a group-spanning query take the write path, where groups
    /// merge and losing shards migrate.
    fn submit_routed(
        &self,
        query: EntangledQuery,
        opts: SubmitOptions,
        tag: Option<String>,
        record: bool,
    ) -> Result<QueryHandle, CoordinationError> {
        if self.shared.shards.len() == 1 {
            let mut inner = self.shared.shards[0].lock();
            return self.admit_in(&mut inner, query, opts, tag, record);
        }
        let keys = Router::query_keys(&query);
        {
            let router = self.shared.router.read();
            if let Some(shard) = router.resolve(&keys) {
                let mut inner = self.shared.shards[shard].lock();
                return self.admit_in(&mut inner, query, opts, tag, record);
            }
        }
        let mut router = self.shared.router.write();
        let shard = self.route_and_migrate(&mut router, &keys);
        let mut inner = self.shared.shards[shard].lock();
        self.admit_in(&mut inner, query, opts, tag, record)
    }

    /// Write-path routing: merges the key groups, and — when the
    /// merged group spans shards — migrates its pending queries from
    /// every losing shard into the winner. The rendezvous takes the
    /// involved shard locks in **ascending index order** (the debug
    /// lock-order graph validates the discipline): extract under each
    /// loser's lock, re-admit under the winner's, carrying outcome
    /// channels, tags, deadlines, and submission instants unchanged.
    /// Returns the shard to admit on. Caller holds the router write
    /// guard, which keeps fast-path readers out until placement is
    /// consistent again.
    fn route_and_migrate(&self, router: &mut Router, keys: &[u64]) -> usize {
        let route = router.route(keys);
        if route.losers.is_empty() {
            return route.shard;
        }
        let mut order: Vec<usize> = route.losers.clone();
        order.push(route.shard);
        order.sort_unstable();
        let snapshot: &Router = router;
        let mut guards: Vec<(usize, _)> = order
            .iter()
            .map(|&i| (i, self.shared.shards[i].lock()))
            .collect();
        let mut migrated = Vec::new();
        let mut moved_tags: Vec<(QueryId, String)> = Vec::new();
        for (idx, guard) in guards.iter_mut() {
            if *idx == route.shard {
                continue;
            }
            let lifted = guard
                .engine
                .extract_pending(|q| snapshot.root_of(q) == Some(route.root));
            for m in &lifted {
                if let Some(tag) = guard.tags.remove(&m.id) {
                    moved_tags.push((m.id, tag));
                }
            }
            migrated.extend(lifted);
        }
        migrated.sort_by_key(|m| m.id);
        let winner = guards
            .iter_mut()
            .find(|(i, _)| *i == route.shard)
            .expect("winner shard locked");
        for m in migrated {
            winner.1.engine.admit_migrated(m);
        }
        winner.1.engine.resort_age_queue();
        for (id, tag) in moved_tags {
            winner.1.tags.insert(id, tag);
        }
        route.shard
    }

    /// Admission under a held shard guard: draw the id from the global
    /// counter, record to the durability sink (inside the shard's
    /// critical section, before the handle escapes — the
    /// record-before-visibility contract), register the tag, and stage
    /// any outcomes this submission produced (incremental mode
    /// coordinates inline).
    fn admit_in(
        &self,
        inner: &mut ShardInner,
        query: EntangledQuery,
        opts: SubmitOptions,
        tag: Option<String>,
        record: bool,
    ) -> Result<QueryHandle, CoordinationError> {
        // The sink needs the query after the engine consumes it; pay
        // for the clone only when durability is on.
        let logged =
            (record && self.shared.has_sink.load(Ordering::Relaxed)).then(|| query.clone());
        let result = inner
            .engine
            .submit_with_source(query, opts, Some(&self.shared.next_id));
        if let Ok(handle) = &result {
            if let Some(query) = logged {
                if let Some(sink) = self.shared.sink.lock().as_mut() {
                    sink.record_submit(handle.id, &query, tag.as_deref(), opts.on_no_solution);
                }
            }
            if let Some(tag) = tag {
                inner.tags.insert(handle.id, tag);
            }
        }
        // Stage after the submit record: an incremental-mode outcome of
        // this very submission must land in the log *after* it.
        self.stage_outcomes(inner);
        result.map_err(CoordinationError::from)
    }

    pub(crate) fn submit_batch_request(
        &self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let results = self.submit_batch_routed(requests);
        self.shared.dispatcher.drain();
        results
    }

    fn submit_batch_routed(
        &self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let now = Instant::now();
        if self.shared.shards.len() == 1 {
            let mut inner = self.shared.shards[0].lock();
            return self.admit_batch_in(&mut inner, requests, now);
        }
        // Sharded: route the whole batch under the router write lock
        // (merges between batch members included), then admit each
        // maximal run of consecutive same-shard requests as one engine
        // batch. Runs execute in submission order, so the shared id
        // counter hands out the same ids a sequential replay would,
        // and cross-run edges on one shard are found by the resident
        // probe (earlier runs are resident by then). Requests on
        // different shards are provably edge-free (different key
        // groups), so per-shard admission loses no coordination.
        let mut router = self.shared.router.write();
        for request in &requests {
            let keys = Router::query_keys(&request.query);
            if router.resolve(&keys).is_none() {
                self.route_and_migrate(&mut router, &keys);
            }
        }
        // Final placement per request: a later merge in the routing
        // pass may have moved a group routed earlier.
        let shards: Vec<usize> = requests
            .iter()
            .map(|r| {
                router
                    .resolve(&Router::query_keys(&r.query))
                    .expect("every batch key group was routed above")
            })
            .collect();
        let n = requests.len();
        let mut out: Vec<Option<Result<QueryHandle, CoordinationError>>> =
            (0..n).map(|_| None).collect();
        let mut run: Vec<(usize, SubmitRequest)> = Vec::new();
        for (i, request) in requests.into_iter().enumerate() {
            if let Some(&(j, _)) = run.first() {
                if shards[j] != shards[i] {
                    self.admit_run(&mut run, &shards, &mut out, now);
                }
            }
            run.push((i, request));
        }
        self.admit_run(&mut run, &shards, &mut out, now);
        out.into_iter()
            .map(|r| r.expect("every request admitted in some run"))
            .collect()
    }

    /// Admits one same-shard run of a routed batch and scatters the
    /// results back to their positions.
    fn admit_run(
        &self,
        run: &mut Vec<(usize, SubmitRequest)>,
        shards: &[usize],
        out: &mut [Option<Result<QueryHandle, CoordinationError>>],
        now: Instant,
    ) {
        if run.is_empty() {
            return;
        }
        let shard = shards[run[0].0];
        let (positions, batch): (Vec<usize>, Vec<SubmitRequest>) = run.drain(..).unzip();
        let mut inner = self.shared.shards[shard].lock();
        let results = self.admit_batch_in(&mut inner, batch, now);
        for (pos, result) in positions.into_iter().zip(results) {
            out[pos] = Some(result);
        }
    }

    /// Batch admission under a held shard guard — the batched
    /// counterpart of [`Coordinator::admit_in`].
    fn admit_batch_in(
        &self,
        inner: &mut ShardInner,
        requests: Vec<SubmitRequest>,
        now: Instant,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let mut tags: Vec<Option<String>> = Vec::with_capacity(requests.len());
        let mut opts_list: Vec<SubmitOptions> = Vec::with_capacity(requests.len());
        let logged: Option<Vec<EntangledQuery>> = self
            .shared
            .has_sink
            .load(Ordering::Relaxed)
            .then(|| requests.iter().map(|r| r.query.clone()).collect());
        let batch: Vec<(EntangledQuery, SubmitOptions)> = requests
            .into_iter()
            .map(|r| {
                let opts = r.to_options(now);
                tags.push(r.tag);
                opts_list.push(opts);
                (r.query, opts)
            })
            .collect();
        let results = inner
            .engine
            .submit_batch_with_source(batch, Some(&self.shared.next_id));
        {
            let mut sink = self.shared.sink.lock();
            for (i, (result, tag)) in results.iter().zip(tags).enumerate() {
                if let Ok(handle) = result {
                    if let (Some(sink), Some(queries)) = (sink.as_mut(), logged.as_ref()) {
                        sink.record_submit(
                            handle.id,
                            &queries[i],
                            tag.as_deref(),
                            opts_list[i].on_no_solution,
                        );
                    }
                    if let Some(tag) = tag {
                        inner.tags.insert(handle.id, tag);
                    }
                }
            }
        }
        self.stage_outcomes(inner);
        results
            .into_iter()
            .map(|r| r.map_err(CoordinationError::from))
            .collect()
    }

    /// Installs the durability recorder and switches every engine
    /// shard's outcome log on for good (the sink counts as a permanent
    /// listener). One sink per service; called by
    /// [`crate::durable::DurableCoordinator`] before any submission.
    pub(crate) fn install_sink(&self, sink: Box<dyn DurabilitySink>) {
        *self.shared.sink.lock() = Some(sink);
        self.shared.has_sink.store(true, Ordering::Relaxed);
        for shard in &self.shared.shards {
            shard.lock().engine.set_outcome_log(true);
        }
    }

    /// Re-admits a recovered submission under its **original** id,
    /// bypassing the sink (the WAL already holds this record — logging
    /// it again would duplicate it on the next replay). Recovery calls
    /// this in ascending id order — the global counter is bumped to
    /// each id before the draw, so replay reproduces the logged ids
    /// even across terminal-outcome gaps — and then restores the
    /// watermark past the maximum. Does not dispatch: the caller pumps
    /// once after the whole replay so recovery-time outcomes are
    /// recorded in one batch, each after its submission record.
    pub(crate) fn recover_submit(
        &self,
        id: QueryId,
        query: EntangledQuery,
        opts: SubmitOptions,
        tag: Option<String>,
    ) -> Result<QueryHandle, CoordinationError> {
        self.shared.next_id.fetch_max(id.0, Ordering::Relaxed);
        let handle = self.submit_routed(query, opts, tag, false)?;
        debug_assert_eq!(handle.id, id, "recovery must reproduce the logged id");
        Ok(handle)
    }

    /// Drains, records, and dispatches any terminal outcomes produced
    /// outside the normal operation paths (recovery replay uses this).
    pub(crate) fn pump_now(&self) {
        {
            let _router = self.scan_guard();
            for shard in &self.shared.shards {
                let mut inner = shard.lock();
                self.stage_outcomes(&mut inner);
            }
        }
        self.shared.dispatcher.drain();
    }

    /// Runs `f` with every shard locked in ascending index order — a
    /// consistent cut across the whole service. Checkpointing and
    /// durable schema changes snapshot the database, the WAL state,
    /// and the id watermark through this so no acknowledgment can land
    /// inside the cut.
    pub(crate) fn with_exclusive<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guards: Vec<_> = self.shared.shards.iter().map(|s| s.lock()).collect();
        f()
    }

    /// The id the next submission will draw. Recovery persists this in
    /// checkpoints.
    pub(crate) fn id_watermark(&self) -> u64 {
        self.shared.next_id.load(Ordering::Relaxed)
    }

    /// Moves the global id counter forward (never backward) — recovery
    /// replays acknowledged submissions under their original ids and
    /// then restores the watermark so post-recovery submissions never
    /// reuse an id.
    pub(crate) fn set_id_watermark(&self, next: u64) {
        self.shared.next_id.fetch_max(next, Ordering::Relaxed);
    }
}

/// Accumulates per-shard flush reports into one service-wide report.
/// Counts sum; high-water marks max; the I/O snapshot is taken from
/// the latest shard (the database — and its cumulative I/O counters —
/// is shared service-wide, so the last snapshot supersedes the
/// others). Lock counters are stamped by the caller.
fn merge_reports(into: &mut BatchReport, from: BatchReport) {
    into.components += from.components;
    into.skipped_clean += from.skipped_clean;
    into.answered += from.answered;
    into.failed += from.failed;
    into.pending += from.pending;
    into.intra_components += from.intra_components;
    into.intra_units += from.intra_units;
    into.intra_split_units += from.intra_split_units;
    into.intra_regions += from.intra_regions;
    into.intra_region_streamed += from.intra_region_streamed;
    into.intra_witness_peak = into.intra_witness_peak.max(from.intra_witness_peak);
    into.io = from.io;
    into.stats.dequeues += from.stats.dequeues;
    into.stats.mgu_calls += from.stats.mgu_calls;
    into.stats.cleanups += from.stats.cleanups;
    into.unify_merges += from.unify_merges;
    into.unify_rollbacks += from.unify_rollbacks;
    into.unify_clones += from.unify_clones;
    into.unify_undo_high_water = into.unify_undo_high_water.max(from.unify_undo_high_water);
}

/// A group of queries owned by one client of the [`Coordinator`].
///
/// Submissions go through the session so the service knows which
/// pending queries belong to which client; when the session is closed
/// (or dropped), its still-pending queries are withdrawn and their
/// subscribers receive [`Event::Cancelled`].
///
/// ```
/// use eq_core::{Coordinator, EngineConfig, EngineMode, SubmitRequest};
/// use eq_db::Database;
/// use eq_sql::parse_ir_query;
///
/// let mut db = Database::new();
/// db.create_table("F", &["fno", "dest"]).unwrap();
/// let coordinator = Coordinator::new(
///     db,
///     EngineConfig {
///         mode: EngineMode::SetAtATime { batch_size: 0 },
///         ..Default::default()
///     },
/// );
/// {
///     let mut session = coordinator.session();
///     session
///         .submit(SubmitRequest::new(
///             parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap(),
///         ))
///         .unwrap();
///     assert_eq!(coordinator.pending_count(), 1);
/// } // session dropped: its pending query is withdrawn
/// assert_eq!(coordinator.pending_count(), 0);
/// ```
pub struct Session {
    coordinator: Coordinator,
    ids: Vec<QueryId>,
    /// Membership mirror of `ids`, so per-query operations don't scan
    /// the submission history.
    id_set: eq_ir::FastSet<QueryId>,
    closed: bool,
}

impl Session {
    /// Submits one query. In incremental mode coordination is attempted
    /// before this returns, so the handle may already hold the outcome
    /// (and the matching event is already published).
    pub fn submit(
        &mut self,
        request: impl Into<SubmitRequest>,
    ) -> Result<QueryHandle, CoordinationError> {
        let handle = self.coordinator.submit_request(request.into())?;
        self.ids.push(handle.id);
        self.id_set.insert(handle.id);
        Ok(handle)
    }

    /// Submits a batch, running admission probing in parallel across
    /// the index shards (see [`CoordinationEngine::submit_batch`]).
    /// Per-query results are positional; each engine shard admits its
    /// run of the batch under one lock acquisition.
    pub fn submit_batch(
        &mut self,
        requests: Vec<SubmitRequest>,
    ) -> Vec<Result<QueryHandle, CoordinationError>> {
        let results = self.coordinator.submit_batch_request(requests);
        for handle in results.iter().flatten() {
            self.ids.push(handle.id);
            self.id_set.insert(handle.id);
        }
        results
    }

    /// Withdraws one of this session's queries (see
    /// [`Coordinator::cancel`]).
    pub fn cancel(&self, id: QueryId) -> Result<(), CoordinationError> {
        if !self.id_set.contains(&id) {
            return Err(CoordinationError::UnknownQuery(id));
        }
        self.coordinator.cancel(id)
    }

    /// Ids of every query submitted through this session, in
    /// submission order.
    pub fn ids(&self) -> &[QueryId] {
        &self.ids
    }

    /// Ids of this session's queries that are still pending.
    pub fn pending_ids(&self) -> Vec<QueryId> {
        self.ids
            .iter()
            .copied()
            .filter(|&id| matches!(self.coordinator.status(id), Some(QueryStatus::Pending)))
            .collect()
    }

    /// Closes the session, withdrawing its still-pending queries.
    /// Returns how many were withdrawn. Dropping the session does the
    /// same.
    pub fn close(mut self) -> usize {
        self.close_inner()
    }

    fn close_inner(&mut self) -> usize {
        if self.closed {
            return 0;
        }
        self.closed = true;
        // One lock acquisition per shard and one dispatch for the
        // whole session, however many queries it submitted over its
        // life.
        self.coordinator.cancel_all(&self.ids)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.insert_many(
            "F",
            vec![
                vec![Value::int(122), Value::str("Paris")],
                vec![Value::int(136), Value::str("Rome")],
            ],
        )
        .unwrap();
        db
    }

    fn batch_coordinator(db: Database) -> Coordinator {
        Coordinator::new(
            db,
            EngineConfig {
                mode: crate::engine::EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        )
    }

    #[test]
    fn handles_and_events_agree() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        let h1 = session
            .submit(
                SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)")).tag("kramer"),
            )
            .unwrap();
        let _h2 = session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        assert_eq!(report.answered, 2);
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        let evs = events.drain();
        // Two Answered events then the Flushed report.
        assert_eq!(evs.len(), 3);
        assert!(evs[0].is_terminal() && evs[1].is_terminal());
        let kramer = evs.iter().find(|e| e.id() == Some(h1.id)).unwrap();
        assert_eq!(kramer.tag(), Some("kramer"));
        assert!(matches!(*evs[2], Event::Flushed(r) if r.answered == 2));
        session.close();
    }

    #[test]
    fn flush_report_carries_lock_hold_counters() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        // The two submits completed their lock holds before the flush
        // acquired; the flush's own (in-progress) hold is measured
        // directly off its guard.
        assert!(report.lock_acquisitions >= 2);
        assert!(report.lock_hold_ns > 0);
        // The published Flushed event carries the identical report.
        let evs = events.drain();
        let flushed = evs
            .iter()
            .find_map(|e| match **e {
                Event::Flushed(r) => Some(r),
                _ => None,
            })
            .unwrap();
        assert_eq!(flushed, report);
        // The standalone snapshot is a pure atomic read (it does not
        // itself take a shard lock), so it never runs behind the
        // report's figure.
        let stats = coordinator.lock_stats();
        assert!(stats.acquisitions >= report.lock_acquisitions);
        assert!(stats.max_hold_ns > 0);
        assert!(stats.hold_ns >= stats.max_hold_ns);
    }

    #[test]
    fn session_drop_withdraws_pending_queries() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let h = {
            let mut session = coordinator.session();
            session
                .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                .unwrap()
        };
        assert_eq!(coordinator.pending_count(), 0);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Cancelled)
        );
        let evs = events.drain();
        assert!(matches!(evs.as_slice(), [e] if matches!(**e, Event::Cancelled { .. })));
        coordinator.check_invariants().unwrap();
    }

    #[test]
    fn cancel_reports_typed_errors() {
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        let h = session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert!(session.cancel(h.id).is_ok());
        assert_eq!(
            coordinator.cancel(h.id),
            Err(CoordinationError::AlreadyTerminal(QueryStatus::Failed(
                FailReason::Cancelled
            )))
        );
        assert_eq!(
            coordinator.cancel(QueryId(999)),
            Err(CoordinationError::UnknownQuery(QueryId(999)))
        );
        assert!(matches!(
            session.cancel(QueryId(999)),
            Err(CoordinationError::UnknownQuery(_))
        ));
    }

    #[test]
    fn per_query_deadline_expires_via_service() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        let h = session
            .submit(
                SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                    .staleness(Duration::from_millis(1))
                    .tag("doomed"),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(coordinator.expire_stale(), 1);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Stale)
        );
        let evs = events.drain();
        assert!(
            matches!(evs.as_slice(), [e] if matches!(&**e, Event::Expired { tag: Some(t), .. } if t == "doomed")),
            "{evs:?}"
        );
    }

    #[test]
    fn submit_batch_through_session() {
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        let results = session.submit_batch(vec![
            SubmitRequest::new(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)")),
            SubmitRequest::new(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)")),
            SubmitRequest::new(EntangledQuery::new(vec![], vec![], vec![])),
        ]);
        assert!(results[0].is_ok() && results[1].is_ok());
        assert!(matches!(results[2], Err(CoordinationError::Invalid(_))));
        assert_eq!(coordinator.flush().answered, 2);
        assert_eq!(session.pending_ids().len(), 0);
    }

    #[test]
    fn clones_share_one_engine() {
        let coordinator = batch_coordinator(flight_db());
        let other = coordinator.clone();
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert_eq!(other.pending_count(), 1);
        let worker = {
            let other = other.clone();
            std::thread::spawn(move || other.flush())
        };
        let report = worker.join().unwrap();
        assert_eq!(report.pending, 1);
    }

    #[test]
    fn load_goes_through_one_revision_bump() {
        let coordinator = batch_coordinator(flight_db());
        let before = coordinator.db().read().revision();
        coordinator
            .load(
                "F",
                vec![
                    vec![Value::int(200), Value::str("Athens")],
                    vec![Value::int(201), Value::str("Athens")],
                ],
            )
            .unwrap();
        assert_eq!(coordinator.db().read().revision(), before + 1);
        assert!(matches!(
            coordinator.load("Nope", vec![]),
            Err(CoordinationError::Db(_))
        ));
    }

    #[test]
    fn events_start_at_subscription_not_at_service_birth() {
        // No subscriber: outcomes are delivered on handles only (the
        // engine's outcome log stays off). A later subscriber sees
        // only what happens after it arrived — no replay.
        let coordinator = batch_coordinator(flight_db());
        let mut session = coordinator.session();
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(coordinator.flush().answered, 2);

        let events = coordinator.subscribe();
        assert!(events.try_next().is_none(), "no replay of old outcomes");
        let h = session
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        coordinator.cancel(h.id).unwrap();
        let evs = events.drain();
        assert!(matches!(evs.as_slice(), [e] if matches!(**e, Event::Cancelled { .. })));
    }

    #[test]
    fn flushed_arrives_after_every_terminal_event_under_bounded_channels() {
        // A tiny Block queue forces the dispatcher to interleave with a
        // concurrent drainer; FIFO dispatch plus stage-then-report
        // ordering must still deliver every terminal event of a flush
        // *before* that flush's report.
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::Block);
        let drainer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(e) = events.next_timeout(Duration::from_secs(10)) {
                let flushed = matches!(*e, Event::Flushed(_));
                seen.push(e);
                if flushed {
                    break;
                }
            }
            seen
        });
        let mut session = coordinator.session();
        let mut expected = Vec::new();
        for i in 0..8 {
            let h = session
                .submit(q(&format!(
                    "{{R(B{i}, ITH)}} R(A{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            expected.push(h.id);
            let h = session
                .submit(q(&format!(
                    "{{R(A{i}, ITH)}} R(B{i}, ITH) <- F(y{i}, Paris)"
                )))
                .unwrap();
            expected.push(h.id);
        }
        let report = coordinator.flush();
        assert_eq!(report.answered, 16);
        let seen = drainer.join().unwrap();
        let flushed_at = seen
            .iter()
            .position(|e| matches!(**e, Event::Flushed(_)))
            .expect("flush report delivered");
        let terminals_before: Vec<QueryId> =
            seen[..flushed_at].iter().filter_map(|e| e.id()).collect();
        for id in expected {
            assert!(
                terminals_before.contains(&id),
                "terminal event for {id:?} must precede Flushed"
            );
        }
        assert_eq!(flushed_at, seen.len() - 1, "Flushed is last");
    }

    #[test]
    fn dropped_subscriber_mid_flight_is_accounted_not_fatal() {
        // A subscriber vanishes (receiver dropped) while its session's
        // queries are still pending; the session close then dispatches
        // Cancelled events into the dead subscription. The fan-out must
        // prune it and account the disconnect — never panic, never
        // block.
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(1, OverflowPolicy::Block);
        let mut session = coordinator.session();
        for i in 0..4 {
            session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
        }
        drop(events); // subscriber dies with 4 queries in flight
        session.close(); // dispatches 4 Cancelled events
        assert_eq!(coordinator.disconnected_subscribers(), 1);
        assert_eq!(coordinator.subscriber_count(), 0);
        assert_eq!(coordinator.pending_count(), 0);
        coordinator.check_invariants().unwrap();
    }

    #[test]
    fn drop_oldest_policy_counts_evictions() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::DropOldest);
        let mut session = coordinator.session();
        for i in 0..6 {
            let h = session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            coordinator.cancel(h.id).unwrap();
        }
        let stats_before_drain = events.stats();
        assert_eq!(stats_before_drain.dropped, 4, "evictions are counted");
        assert_eq!(events.drain().len(), 2);
        assert!(!events.stats().disconnected);
        // Published (6) == delivered (2) + dropped (4): nothing silent.
        let stats = events.stats();
        assert_eq!(stats.delivered + stats.dropped, 6);
    }

    #[test]
    fn disconnect_policy_surfaces_overflow() {
        let coordinator = batch_coordinator(flight_db());
        let events = coordinator.subscribe_with(2, OverflowPolicy::Disconnect);
        let mut session = coordinator.session();
        for i in 0..5 {
            let h = session
                .submit(q(&format!(
                    "{{R(Ghost{i}, ITH)}} R(Solo{i}, ITH) <- F(x{i}, Paris)"
                )))
                .unwrap();
            coordinator.cancel(h.id).unwrap();
        }
        // Third cancel overflowed the queue: subscriber disconnected,
        // backlog still drainable, publisher accounted it.
        assert_eq!(coordinator.disconnected_subscribers(), 1);
        assert_eq!(coordinator.subscriber_count(), 0);
        assert_eq!(events.drain().len(), 2);
        assert!(events.stats().disconnected);
    }

    #[test]
    fn stalled_block_subscriber_does_not_stall_unrelated_sessions() {
        // A Block subscriber with a full queue and no drainer suspends
        // only the thread that became the dispatcher. Pre-dispatch,
        // the publisher blocked while holding the service lock, so
        // every other session froze with it — this is the regression
        // the out-of-lock dispatch queue exists to prevent.
        let coordinator = batch_coordinator(flight_db());
        let stalled = coordinator.subscribe_with(1, OverflowPolicy::Block);
        let victim = {
            let coordinator = coordinator.clone();
            std::thread::spawn(move || {
                let mut session = coordinator.session();
                // Three Cancelled events against capacity 1: the first
                // fills the queue, the second wedges this thread inside
                // the dispatcher's drain (no locks held).
                for i in 0..3 {
                    let h = session
                        .submit(q(&format!(
                            "{{R(Stall{i}, ITH)}} R(Whoa{i}, ITH) <- F(x{i}, Paris)"
                        )))
                        .unwrap();
                    coordinator.cancel(h.id).unwrap();
                }
            })
        };
        // Give the victim time to wedge in the dispatcher.
        std::thread::sleep(Duration::from_millis(50));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = {
            let coordinator = coordinator.clone();
            std::thread::spawn(move || {
                let mut session = coordinator.session();
                session
                    .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                    .unwrap();
                session
                    .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
                    .unwrap();
                done_tx.send(coordinator.flush().answered).unwrap();
            })
        };
        let answered = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("unrelated session must not block on the stalled subscriber");
        assert_eq!(answered, 2);
        worker.join().unwrap();
        // The victim is still parked on the full queue; dropping the
        // receiver disconnects it and lets the dispatcher finish.
        drop(stalled);
        victim.join().unwrap();
        assert_eq!(coordinator.disconnected_subscribers(), 1);
    }

    #[test]
    fn sharded_service_coordinates_within_and_across_groups() {
        let coordinator = Coordinator::new(
            flight_db(),
            EngineConfig {
                mode: crate::engine::EngineMode::SetAtATime { batch_size: 0 },
                service_shards: 4,
                ..Default::default()
            },
        );
        assert_eq!(coordinator.service_shard_count(), 4);
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        // Two disjoint relation groups land on different shards; each
        // coordinates internally.
        session
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        session
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        session
            .submit(q("{S(George, u)} S(Elaine, u) <- F(u, Rome)"))
            .unwrap();
        session
            .submit(q("{S(Elaine, v)} S(George, v) <- F(v, Rome)"))
            .unwrap();
        let report = coordinator.flush();
        assert_eq!(report.answered, 4);
        coordinator.check_invariants().unwrap();
        // A pair of queries spanning both groups forces a rendezvous:
        // the R and S groups merge onto one shard and the cross-group
        // pair still coordinates.
        let h1 = session
            .submit(q("{S(Newman, w)} R(Newman, w) <- F(w, Paris)"))
            .unwrap();
        let h2 = session
            .submit(q("{R(Newman, z)} S(Newman, z) <- F(z, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        assert_eq!(
            report.answered, 2,
            "cross-group pair coordinates after the merge"
        );
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        coordinator.check_invariants().unwrap();
        let evs = events.drain();
        assert_eq!(evs.iter().filter(|e| e.is_terminal()).count(), 6);
    }

    #[test]
    fn rendezvous_migrates_pending_queries_with_tags() {
        // Pending queries physically move between shards when their
        // groups merge: outcome channels, tags, and coordination all
        // survive the migration.
        let coordinator = Coordinator::new(
            flight_db(),
            EngineConfig {
                mode: crate::engine::EngineMode::SetAtATime { batch_size: 0 },
                service_shards: 2,
                ..Default::default()
            },
        );
        let events = coordinator.subscribe();
        let mut session = coordinator.session();
        // Four-cycle across two relation groups: R-group q1/q4 heads
        // satisfy q3/q1 postconditions, S-group q2/q3 close the loop.
        let h1 = session
            .submit(q("{R(Beta, x)} R(Alpha, x) <- F(x, Paris)"))
            .unwrap();
        let h2 = session
            .submit(SubmitRequest::new(q("{S(Delta, u)} S(Gamma, u) <- F(u, Paris)")).tag("moved"))
            .unwrap();
        assert_eq!(coordinator.pending_count(), 2);
        // q3 bridges the groups (head in S, postcondition in R): the
        // router merges them and the losing shard's pending query
        // (q2) migrates.
        let h3 = session
            .submit(q("{R(Alpha, y)} S(Delta, y) <- F(y, Paris)"))
            .unwrap();
        let h4 = session
            .submit(q("{S(Gamma, z)} R(Beta, z) <- F(z, Paris)"))
            .unwrap();
        let report = coordinator.flush();
        assert_eq!(report.answered, 4, "the merged four-cycle coordinates");
        for h in [h1, h2, h3, h4] {
            assert!(matches!(
                h.outcome.try_recv().unwrap(),
                QueryOutcome::Answered(_)
            ));
        }
        coordinator.check_invariants().unwrap();
        assert_eq!(coordinator.pending_count(), 0);
        // The migrated query's tag traveled with it.
        let evs = events.drain();
        let moved = evs.iter().find(|e| e.tag() == Some("moved")).unwrap();
        assert!(matches!(**moved, Event::Answered { .. }));
    }

    #[test]
    fn coordinator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Coordinator>();
        assert_send_sync::<Event>();
    }
}
