//! The unifiability graph of §4.1.1 and its partitioning (§4.1.2).

use crate::index::{AtomIndex, AtomRef};
use eq_ir::{EntangledQuery, FastMap};
use eq_unify::{mgu_atoms, Unifier};

/// One edge of the unifiability multigraph: the head atom `head_idx` of
/// query slot `from` unifies with the postcondition atom `pc_idx` of
/// query slot `to`, under the recorded most general unifier.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source query slot (provider of the head atom).
    pub from: u32,
    /// Index of the head atom within the source query.
    pub head_idx: u32,
    /// Target query slot (owner of the postcondition).
    pub to: u32,
    /// Index of the postcondition atom within the target query.
    pub pc_idx: u32,
    /// `mgu(h, p)` — the valuation constraints this match imposes.
    pub mgu: Unifier,
}

/// Slot-addressed read access to a unifiability graph.
///
/// Matching (§4.1.3), safety (§3.1.1), UCS (§3.1.2), and combined-query
/// construction (§4.2) are all written against this trait, so they run
/// identically over a batch-built [`MatchGraph`] and over the engine's
/// persistent resident graph ([`crate::resident::ResidentGraph`]) without
/// cloning queries into a throwaway graph first.
///
/// Slot ids live in `0..slot_bound()` but need not be dense: a view may
/// have holes (retired engine slots). Callers only ever dereference
/// slots they were handed as component members, and edge ids they read
/// from `out_edges`/`in_edges` of live slots.
pub trait MatchView {
    /// Exclusive upper bound on slot ids (dense array sizing).
    fn slot_bound(&self) -> usize;
    /// The query at `slot`. Panics if the slot is not live.
    fn query(&self, slot: u32) -> &EntangledQuery;
    /// The edge with id `eid`. Panics if the edge was removed.
    fn edge(&self, eid: u32) -> &Edge;
    /// Edge ids leaving `slot` (its head atoms feeding other queries'
    /// postconditions).
    fn out_edges(&self, slot: u32) -> &[u32];
    /// Edge ids entering `slot` (other queries' heads feeding its
    /// postconditions).
    fn in_edges(&self, slot: u32) -> &[u32];
}

/// The unifiability graph over a fixed set of queries.
///
/// Queries must already be renamed apart (no shared variables); the
/// engine guarantees this at admission and [`crate::coordinate()`] does it
/// internally.
///
/// Self-edges are excluded: a query's own head never satisfies its own
/// postcondition. The paper's two-way workload (§5.3.1) — where Jerry's
/// postcondition `R(x, ITH)` would otherwise unify with Jerry's own head
/// `R(Jerry, ITH)` — is only safe under this reading, and coordination
/// is by definition *between* queries.
pub struct MatchGraph {
    queries: Vec<EntangledQuery>,
    edges: Vec<Edge>,
    out: Vec<Vec<u32>>,
    inc: Vec<Vec<u32>>,
    head_index: AtomIndex,
    pc_index: AtomIndex,
}

impl MatchGraph {
    /// Builds the graph: indexes every head and postcondition atom, then
    /// discovers edges through index candidate lookup plus a real MGU
    /// check (§4.1.4).
    pub fn build(queries: Vec<EntangledQuery>) -> Self {
        let n = queries.len();
        let mut head_index = AtomIndex::new();
        let mut pc_index = AtomIndex::new();
        for (qi, q) in queries.iter().enumerate() {
            for (ai, atom) in q.head.iter().enumerate() {
                head_index.insert(
                    AtomRef {
                        query: qi as u32,
                        atom: ai as u32,
                    },
                    atom,
                );
            }
            for (ai, atom) in q.postconditions.iter().enumerate() {
                pc_index.insert(
                    AtomRef {
                        query: qi as u32,
                        atom: ai as u32,
                    },
                    atom,
                );
            }
        }

        let mut graph = MatchGraph {
            queries,
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            head_index,
            pc_index,
        };

        // Discover edges by probing the head index with each
        // postcondition.
        for to in 0..n as u32 {
            for pc_idx in 0..graph.queries[to as usize].postconditions.len() as u32 {
                graph.discover_edges_for_pc(to, pc_idx);
            }
        }
        graph
    }

    fn discover_edges_for_pc(&mut self, to: u32, pc_idx: u32) {
        let pc = &self.queries[to as usize].postconditions[pc_idx as usize];
        for cand in self.head_index.candidates(pc) {
            if cand.query == to {
                continue; // no self-coordination
            }
            let head = &self.queries[cand.query as usize].head[cand.atom as usize];
            if let Some(mgu) = mgu_atoms(head, pc) {
                let id = self.edges.len() as u32;
                self.edges.push(Edge {
                    from: cand.query,
                    head_idx: cand.atom,
                    to,
                    pc_idx,
                    mgu,
                });
                self.out[cand.query as usize].push(id);
                self.inc[to as usize].push(id);
            }
        }
    }

    /// The queries, by slot.
    pub fn queries(&self) -> &[EntangledQuery] {
        &self.queries
    }

    /// Number of query slots.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the graph contains no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge ids leaving `slot` (its head atoms feeding other queries'
    /// postconditions).
    pub fn out_edges(&self, slot: u32) -> &[u32] {
        &self.out[slot as usize]
    }

    /// Edge ids entering `slot` (other queries' heads feeding its
    /// postconditions).
    pub fn in_edges(&self, slot: u32) -> &[u32] {
        &self.inc[slot as usize]
    }

    /// `INDEGREE(q)` from §4.1.1.
    pub fn indegree(&self, slot: u32) -> usize {
        self.inc[slot as usize].len()
    }

    /// The head index (exposed for the engine's incremental safety
    /// check).
    pub fn head_index(&self) -> &AtomIndex {
        &self.head_index
    }

    /// The postcondition index.
    pub fn pc_index(&self) -> &AtomIndex {
        &self.pc_index
    }

    /// Partitions the query slots into weakly connected components
    /// (§4.1.2). Components are returned with slots in ascending order,
    /// ordered by their smallest slot.
    pub fn components(&self) -> Vec<Vec<u32>> {
        self.components_masked(None)
    }

    /// Like [`MatchGraph::components`], but restricted to slots where
    /// `alive` is true: dead slots are excluded and edges incident to
    /// them do not connect (so groups bridged only by a removed query
    /// are processed independently).
    pub fn components_live(&self, alive: &[bool]) -> Vec<Vec<u32>> {
        self.components_masked(Some(alive))
    }

    fn components_masked(&self, alive: Option<&[bool]>) -> Vec<Vec<u32>> {
        let n = self.queries.len();
        let is_live = |slot: usize| alive.is_none_or(|a| a[slot]);
        let mut dsu = Dsu::new(n);
        for e in &self.edges {
            if is_live(e.from as usize) && is_live(e.to as usize) {
                dsu.union(e.from as usize, e.to as usize);
            }
        }
        let mut groups: FastMap<usize, Vec<u32>> = FastMap::default();
        for slot in 0..n {
            if is_live(slot) {
                groups.entry(dsu.find(slot)).or_default().push(slot as u32);
            }
        }
        let mut components: Vec<Vec<u32>> = groups.into_values().collect();
        components.sort_by_key(|c| c[0]);
        components
    }
}

impl MatchView for MatchGraph {
    fn slot_bound(&self) -> usize {
        self.queries.len()
    }

    fn query(&self, slot: u32) -> &EntangledQuery {
        &self.queries[slot as usize]
    }

    fn edge(&self, eid: u32) -> &Edge {
        &self.edges[eid as usize]
    }

    fn out_edges(&self, slot: u32) -> &[u32] {
        &self.out[slot as usize]
    }

    fn in_edges(&self, slot: u32) -> &[u32] {
        &self.inc[slot as usize]
    }
}

/// Plain union-find over dense indices, used for partitioning.
pub(crate) struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Dsu {
    pub(crate) fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::VarGen;
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(eq_ir::QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    #[test]
    fn kramer_jerry_two_cycle() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.indegree(0), 1);
        assert_eq!(g.indegree(1), 1);
        let e0 = &g.edges()[g.in_edges(0)[0] as usize];
        assert_eq!(e0.from, 1); // Jerry's head satisfies Kramer's pc
        assert_eq!(g.components(), vec![vec![0, 1]]);
    }

    #[test]
    fn running_example_figure_4a() {
        // q1: {R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)
        // q2: {T(1)} R(y1) <- D2(y1)
        // q3: {T(z1)} S(z2) <- D3(z1, z2)
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(z1)} S(z2) <- D3(z1, z2)",
        ]);
        // Edges: q1→q2 (T(x3) ~ T(1)), q1→q3 (T(x3) ~ T(z1)),
        //        q2→q1 (R(y1) ~ R(x1)), q3→q1 (S(z2) ~ S(x2)).
        assert_eq!(g.edges().len(), 4);
        assert_eq!(g.out_edges(0).len(), 2);
        assert_eq!(g.indegree(0), 2);
        assert_eq!(g.indegree(1), 1);
        assert_eq!(g.indegree(2), 1);
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn self_edges_excluded() {
        // Jerry's own head R(Jerry, ITH) unifies his own pc R(x, ITH),
        // but self-coordination is excluded.
        let g = build(&["{R(x, ITH)} R(Jerry, ITH) <- F(Jerry, x)"]);
        assert!(g.edges().is_empty());
        assert_eq!(g.indegree(0), 0);
    }

    #[test]
    fn disconnected_pairs_partition() {
        let g = build(&[
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(Kramer, Jerry)",
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(Jerry, Kramer)",
            "{R(Elaine, SBN)} R(Frank, SBN) <- F(Frank, Elaine)",
            "{R(Frank, SBN)} R(Elaine, SBN) <- F(Elaine, Frank)",
        ]);
        assert_eq!(g.components(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn multi_edges_per_pc_when_unsafe() {
        // Fig 3(a): Jerry's pc R(f, z) unifies with both Kramer's and
        // Elaine's heads — two in-edges on one postcondition.
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Jerry, y)} R(Elaine, y) <- F(y, Athens)",
            "{R(f, z)} R(Jerry, z) <- F(z, w), Friend(Jerry, f)",
        ]);
        assert_eq!(g.indegree(2), 2);
        // Jerry's head feeds both other queries' postconditions.
        assert_eq!(g.out_edges(2).len(), 2);
    }

    #[test]
    fn constant_mismatch_blocks_edge() {
        let g = build(&[
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(Kramer, Jerry)",
            "{R(Kramer, JFK)} R(Jerry, JFK) <- F(Jerry, Kramer)",
        ]);
        // Destinations differ: no unification, two singleton components.
        assert!(g.edges().is_empty());
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn queries_without_postconditions_have_zero_indegree() {
        let g = build(&["{} R(Kramer, ITH) <- F(Kramer, Jerry)"]);
        assert_eq!(g.indegree(0), 0);
        assert_eq!(g.components(), vec![vec![0]]);
    }

    #[test]
    fn dsu_basics() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_ne!(d.find(0), d.find(2));
        d.union(1, 2);
        assert_eq!(d.find(0), d.find(3));
    }
}
