//! The D3C engine of §5.1: a long-running coordination service.
//!
//! The engine accepts entangled queries asynchronously, keeps them in a
//! pending pool, and answers them in one of two modes:
//!
//! * **Incremental** — on every submission, the affected partition is
//!   re-matched from its current state and any component that has become
//!   answerable is evaluated immediately;
//! * **Set-at-a-time** — submissions accumulate; [`CoordinationEngine::flush`]
//!   (called manually, or automatically every `batch_size` submissions)
//!   evaluates the *dirty* components of the resident match graph,
//!   processing independent components in parallel (§4.1.2).
//!
//! Match state is **resident**: one persistent unifiability graph
//! ([`ResidentGraph`]) keyed by engine slots is updated incrementally at
//! submission (edges discovered through the sharded atom indexes, MGUs
//! computed once and kept) and at retirement (edge removal with lazy
//! component-split resolution). Both modes — and the eager-pairing
//! fallback for oversized partitions — evaluate straight off this
//! resident state through [`crate::graph::MatchView`], borrowing pending
//! queries in place; nothing is cloned into a per-flush throwaway graph,
//! and a flush with no changes since the previous one evaluates zero
//! components.
//!
//! Queries that cannot currently be matched stay pending until they
//! succeed, fail, or exceed the configured staleness bound (§5.1: "when
//! a query becomes stale, it is removed from the list of pending queries
//! and its evaluation is considered to have failed").
//!
//! Answers are delivered through per-query handles (the middleware
//! layer's asynchronous callback abstraction).

use crate::combine::{CombinedQuery, QueryAnswer};
use crate::coordinate::RejectReason;
use crate::error::InvariantViolation;
use crate::graph::{Edge, MatchView};
use crate::index::{AtomIndex, AtomRef, ShardedAtomIndex};
use crate::intra;
use crate::matching::{self, MatchStats};
use crate::pool;
use crate::resident::ResidentGraph;
use crate::safety::{self, SafetyViolation};
use crate::ucs;
use eq_db::{Database, StoreIoStats};
use eq_ir::{EntangledQuery, FastMap, FastSet, QueryId, ValidationError, VarGen};
use eq_unify::Unifier;
use parking_lot::RwLock;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Evaluation scheduling mode (§5.1, §5.3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Match and evaluate after every submission.
    Incremental,
    /// Accumulate and evaluate on [`CoordinationEngine::flush`]; if
    /// `batch_size > 0`, flush automatically every `batch_size`
    /// submissions.
    SetAtATime {
        /// Auto-flush threshold; 0 disables auto-flush.
        batch_size: usize,
    },
}

/// What to do with a matched component whose combined query has no
/// solution in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NoSolutionPolicy {
    /// Fail the component's queries (§4.2's rejection semantics).
    #[default]
    Reject,
    /// Keep them pending; they are retried when their component changes
    /// or the database is updated (via an explicit flush).
    KeepPending,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Scheduling mode.
    pub mode: EngineMode,
    /// Pending queries older than this are failed as stale. `None`
    /// disables staleness.
    pub staleness: Option<Duration>,
    /// Admission-time safety enforcement: a new query is rejected when
    /// it would make the pending set unsafe (one of its postconditions
    /// unifies with ≥ 2 pending heads, or one of its heads gives a
    /// pending postcondition a second satisfier). This is the check
    /// stress-tested in Figure 9. Disable to admit everything and rely
    /// on §3.1.1 removal at matching time.
    pub admission_safety_check: bool,
    /// See [`NoSolutionPolicy`].
    pub on_no_solution: NoSolutionPolicy,
    /// Evaluate components violating UCS instead of failing them.
    pub evaluate_non_ucs: bool,
    /// Number of worker threads for per-component parallelism in
    /// set-at-a-time flushes (§4.1.2). 1 = sequential; 0 = one worker
    /// per available hardware thread.
    pub flush_threads: usize,
    /// Incremental mode only: partitions up to this size are fully
    /// re-matched on every arrival (the paper's incremental matching,
    /// §5.1). Larger partitions — hub destinations where a wildcard
    /// postcondition unifies with many pending heads — fall back to
    /// *eager pairing*: the new query is tried against its direct
    /// unification partners one at a time, first syntactic closure wins
    /// (the paper's nondeterministic choice), and the pair is evaluated
    /// immediately. Set to `usize::MAX` to always re-match the whole
    /// partition (reproduces the giant-cluster blow-up of Figure 8 that
    /// motivates set-at-a-time mode).
    pub incremental_partition_limit: usize,
    /// Components with at least this many members are evaluated through
    /// the **partitioned intra-component path** ([`crate::intra`]): the
    /// matching seed phase and the combined query's variable-disjoint
    /// work units run on the flush worker pool, with a deterministic
    /// merge that reproduces the sequential answer choice (the two
    /// paths are property-tested answer-for-answer identical). Smaller
    /// components evaluate through the plain sequential
    /// [`CombinedQuery`] path. Set to `usize::MAX` to always evaluate
    /// sequentially; the partitioned path pays off even at
    /// `flush_threads: 1` because evaluating k independent joins of
    /// size n/k sidesteps the whole-body join's quadratic atom-selection
    /// scan.
    pub intra_component_threshold: usize,
    /// Work units of the partitioned path with at least this many atoms
    /// are analyzed for **biconnected-region splitting**
    /// ([`crate::intra::split_unit`]): when the global unifier chains
    /// variables *across* bodies, the whole component can collapse into
    /// one shared-variable work unit, and this second-level split
    /// decomposes it along articulation variables into regions evaluated
    /// as independent work items with an exact tree semi-join merge
    /// (deterministic for every thread count; a solution is found iff
    /// one exists). Set to `usize::MAX` to never split.
    pub intra_split_min_atoms: usize,
    /// Per-region solution-enumeration cap of the **materialized**
    /// split path (`intra_split_streaming: false`). A region that would
    /// exceed it makes its unit fall back to whole-unit evaluation —
    /// the cap bounds the semi-join's memory, never completeness.
    /// Clamped to at least 1 (a zero budget would make every region
    /// look unsatisfiable instead of truncated). The streaming path
    /// never materializes region solutions and ignores it.
    pub intra_region_cap: usize,
    /// Work/overhead crossover for the split decision: a unit that
    /// decomposes into `r` regions actually splits only when
    /// `atoms² ≥ crossover × r`. Per-region dispatch has a fixed cost
    /// whole-unit evaluation does not pay, so small shared-variable
    /// units (≲ 600 chained queries at the default) evaluate faster
    /// whole; the combined join's quadratic atom-selection scan makes
    /// splitting win as units grow. `0` splits whenever the unit
    /// decomposes.
    pub intra_split_crossover: usize,
    /// Evaluate split units by **streaming articulation projection**
    /// (default): regions stream their solutions and retain only
    /// per-articulation-value witness sets, and the chosen joint answer
    /// is re-enumerated top-down with pinned articulation values —
    /// memory proportional to articulation width, not solution count.
    /// `false` selects the materialized semi-join (kept as the
    /// property-test oracle; answers are identical).
    pub intra_split_streaming: bool,
    /// Number of independently locked **service shards** the
    /// `Coordinator` partitions its pending pool into (the engine
    /// itself ignores this; it is read once at service construction).
    /// Queries are routed by `(relation, arity)` connectivity — two
    /// queries whose key sets never intersect can never share a
    /// match-graph edge, so each connectivity group lives on exactly
    /// one shard and admission, flushing, and the Figure-9 safety
    /// check touch only that shard's lock. `1` (the default) keeps
    /// the classic single-mutex service. Values are clamped to at
    /// least 1.
    pub service_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: EngineMode::Incremental,
            staleness: None,
            admission_safety_check: true,
            on_no_solution: NoSolutionPolicy::default(),
            evaluate_non_ucs: false,
            flush_threads: 1,
            incremental_partition_limit: 64,
            intra_component_threshold: 128,
            intra_split_min_atoms: 16,
            intra_region_cap: 4096,
            intra_split_crossover: 4096,
            intra_split_streaming: true,
            service_shards: 1,
        }
    }
}

/// Status of a submitted query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// Waiting for coordination partners.
    Pending,
    /// Answered; the answer was delivered on the handle.
    Answered,
    /// Failed with a reason.
    Failed(FailReason),
}

/// Why a pending query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// Rejected/removed per a [`RejectReason`].
    Rejected(RejectReason),
    /// Exceeded the staleness bound without coordinating.
    Stale,
    /// Withdrawn by the application via
    /// [`CoordinationEngine::cancel`].
    Cancelled,
}

/// Terminal outcome delivered on a query's handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The coordinated answer.
    Answered(QueryAnswer),
    /// Failure and its reason.
    Failed(FailReason),
}

/// Handle returned by [`CoordinationEngine::submit`]: poll or block on
/// the receiver for the terminal outcome.
pub struct QueryHandle {
    /// The id assigned to the query.
    pub id: QueryId,
    /// Receives exactly one terminal [`QueryOutcome`].
    pub outcome: Receiver<QueryOutcome>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("id", &self.id).finish()
    }
}

/// Why a submission was refused outright.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Structurally invalid.
    Invalid(ValidationError),
    /// The admission safety check failed (§3.1.1 / Figure 9).
    Unsafe,
}

/// Per-query submission options, overriding the engine-wide
/// [`EngineConfig`] knobs for one query. The `Coordinator` service's
/// `SubmitRequest` builder produces these; engine users can pass them
/// directly through [`CoordinationEngine::submit_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Absolute deadline: if the query is still pending when this
    /// instant passes, it is failed as [`FailReason::Stale`] at the next
    /// staleness sweep — independent of (and in addition to) the
    /// engine-wide `staleness` bound.
    pub deadline: Option<Instant>,
    /// Per-query no-solution policy; `None` uses
    /// [`EngineConfig::on_no_solution`]. When a matched component's
    /// combined query has no database solution, members with an
    /// effective [`NoSolutionPolicy::Reject`] are failed and members
    /// with [`NoSolutionPolicy::KeepPending`] stay pending for a retry.
    pub on_no_solution: Option<NoSolutionPolicy>,
}

/// Summary of one flush (or one incremental trigger).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Components examined (after safety masking and split resolution).
    pub components: usize,
    /// Resident components skipped because nothing in them changed
    /// since they were last evaluated (the dirty-set payoff; always 0
    /// for incremental triggers).
    pub skipped_clean: usize,
    /// Queries answered.
    pub answered: usize,
    /// Queries failed (rejections + no-solution under the reject
    /// policy).
    pub failed: usize,
    /// Queries left pending.
    pub pending: usize,
    /// Components evaluated through the partitioned intra-component
    /// path ([`EngineConfig::intra_component_threshold`]).
    pub intra_components: usize,
    /// Work units dispatched by the partitioned path across those
    /// components (each unit is one variable-disjoint sub-join of a
    /// combined query).
    pub intra_units: usize,
    /// Work units that additionally went through shared-variable
    /// biconnected-region splitting
    /// ([`EngineConfig::intra_split_min_atoms`]).
    pub intra_split_units: usize,
    /// Biconnected regions dispatched as work items across those split
    /// units.
    pub intra_regions: usize,
    /// Region-local solutions consumed by the streaming
    /// articulation-projection pass across split units (bottom-up
    /// witness scan + top-down pinned re-enumeration). Grows with the
    /// solution count; compare with [`BatchReport::intra_witness_peak`]
    /// to see how little of it was retained.
    pub intra_region_streamed: u64,
    /// Peak witness-map size — the most entries any single region's
    /// articulation-value witness set held — across split units
    /// (maximum, not sum). Bounded by the articulation-value domain
    /// width, **not** by region solution counts: this is the streaming
    /// path's memory guarantee, surfaced as a counter.
    pub intra_witness_peak: u64,
    /// Nanoseconds the **service shard locks** were held by the
    /// operation that produced this report (engine flush; event
    /// fan-out is staged inside but delivered outside the critical
    /// section). Stamped by `Coordinator::flush` — summed across
    /// shards when the service is sharded; 0 when the engine is driven
    /// directly, without a `Coordinator`. Per-shard figures are on
    /// `Coordinator::shard_lock_stats()`.
    pub lock_hold_ns: u64,
    /// Cumulative service shard-lock acquisitions over the
    /// `Coordinator`'s lifetime (summed across shards), snapshotted at
    /// publish time (0 without a service).
    pub lock_acquisitions: u64,
    /// Longest single completed service-lock hold so far, in
    /// nanoseconds (0 without a service). With a sharded service this
    /// is the maximum over the per-shard locks.
    pub lock_max_hold_ns: u64,
    /// High-water mark of the service's out-of-lock dispatch queue —
    /// the most events that were ever staged (under a shard lock)
    /// awaiting the post-release drain — over the `Coordinator`'s
    /// lifetime, snapshotted at publish time (0 without a service).
    pub dispatch_queue_peak: u64,
    /// Cumulative storage-backend I/O counters summed across the
    /// database's tables at flush time (all zero for the in-memory
    /// backend). When relations spill through `eq_store`'s paged
    /// backend this is where cache traffic — page faults, write-backs,
    /// hits, evictions, resident peak — surfaces to callers.
    pub io: StoreIoStats,
    /// Aggregated matching statistics.
    pub stats: MatchStats,
    /// Unifier `merge_from` folds performed while producing this
    /// report (seeding, propagation, global folds, probe assembly) —
    /// the delta of [`eq_unify::ops`]'s process counter across the
    /// operation.
    pub unify_merges: u64,
    /// Unifier snapshots rolled back across the operation: speculation
    /// rejected in place (SCC fast-path bailouts, failed speculative
    /// merges) instead of by rebuilding tables.
    pub unify_rollbacks: u64,
    /// `Unifier::clone` calls across the operation. The engine's
    /// matching / admission / combine paths ride snapshots, so this
    /// must be 0 — ci asserts it on the benchmark counters.
    pub unify_clones: u64,
    /// Peak undo-log length (logged writes) observed at any
    /// snapshot-close so far in this process — the in-place
    /// speculation footprint that replaced whole-table copies.
    pub unify_undo_high_water: u64,
}

struct PendingQuery {
    query: EntangledQuery,
    sender: SyncSender<QueryOutcome>,
    /// Number of live pending heads unifying each postcondition
    /// (admission-time bookkeeping for the safety check; equals the
    /// resident graph's in-edge count per postcondition).
    pc_satisfiers: Vec<u32>,
    /// Per-query no-solution policy override (see [`SubmitOptions`]).
    on_no_solution: Option<NoSolutionPolicy>,
    /// Mirror of the deadline heap entry, so shard migration can carry
    /// the deadline to the destination engine (heap entries don't
    /// travel; the donor's are skipped lazily).
    deadline: Option<Instant>,
    /// Original submission instant — preserved across shard migration
    /// so the staleness sweep ages a migrated query from its real
    /// arrival, not from the merge.
    submitted_at: Instant,
}

/// A pending query lifted out of one engine for re-admission in
/// another — the service's shard-merge migration path. Carries
/// everything retirement would have destroyed (the live outcome
/// sender, per-query policy, deadline, submission instant) but no
/// outcome: the query stays pending across the move.
pub(crate) struct MigratedQuery {
    pub(crate) id: QueryId,
    pub(crate) query: EntangledQuery,
    pub(crate) sender: SyncSender<QueryOutcome>,
    pub(crate) on_no_solution: Option<NoSolutionPolicy>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) submitted_at: Instant,
}

/// A unifiability edge discovered by admission probing before the
/// submitting query has a slot: `local_atom` indexes into the new
/// query's head (outgoing) or postcondition list (incoming), `partner`
/// is an already-resident slot.
struct ProbedEdge {
    /// True: new head → partner postcondition; false: partner head →
    /// new postcondition.
    outgoing: bool,
    local_atom: u32,
    partner: u32,
    partner_atom: u32,
    mgu: Unifier,
}

/// An intra-batch candidate edge discovered by
/// [`CoordinationEngine::submit_batch`]'s parallel probing phase: the
/// head of the probe's owner satisfies the postcondition `pc_idx` of
/// batch position `to` (a position, not a slot — neither endpoint is
/// admitted yet when the probe runs).
struct BatchEdge {
    head_idx: u32,
    to: usize,
    pc_idx: u32,
    mgu: Unifier,
}

/// Per-query result of the parallel admission-probing phase. Each
/// `batch_out` entry is consumed (`take`n) exactly once, when the later
/// of its two endpoints is admitted.
struct BatchProbe {
    /// Edges against the pre-batch resident pool.
    resident: Vec<ProbedEdge>,
    /// Candidate edges from this query's heads to other batch members'
    /// postconditions (MGU-verified; admission-filtered later).
    batch_out: Vec<Option<BatchEdge>>,
}

/// Immutable view over the engine's resident match state: the slot
/// table provides the queries, the [`ResidentGraph`] the topology.
/// Matching, safety, UCS, and combined-query construction all run
/// against this — the same code path for batch flushes, incremental
/// triggers, and eager pairing — borrowing pending queries in place.
struct ResidentView<'a> {
    slots: &'a [Option<PendingQuery>],
    graph: &'a ResidentGraph,
}

impl MatchView for ResidentView<'_> {
    fn slot_bound(&self) -> usize {
        self.slots.len()
    }

    fn query(&self, slot: u32) -> &EntangledQuery {
        &self.slots[slot as usize].as_ref().expect("live slot").query
    }

    fn edge(&self, eid: u32) -> &Edge {
        self.graph.edge(eid)
    }

    fn out_edges(&self, slot: u32) -> &[u32] {
        self.graph.out_edges(slot)
    }

    fn in_edges(&self, slot: u32) -> &[u32] {
        self.graph.in_edges(slot)
    }
}

/// The coordination engine.
///
/// Not `Sync`: submissions mutate internal indexes, so drive it from one
/// thread (flushes parallelize internally). The database is shared
/// behind a read-write lock; evaluation takes read guards, so an
/// application may update tables between rounds.
pub struct CoordinationEngine {
    config: EngineConfig,
    db: Arc<RwLock<Database>>,
    gen: VarGen,
    next_id: u64,
    /// Slot-addressed pending queries (slots are reused; `AtomRef.query`
    /// is a slot).
    slots: Vec<Option<PendingQuery>>,
    free_slots: Vec<u32>,
    by_id: FastMap<QueryId, u32>,
    statuses: FastMap<QueryId, QueryStatus>,
    /// Resident atom indexes, sharded by `(relation, arity)` (§4.1.4).
    head_index: ShardedAtomIndex,
    pc_index: ShardedAtomIndex,
    /// The persistent match graph: edges + components + dirty tracking.
    resident: ResidentGraph,
    /// Submission order for staleness sweeps.
    age_queue: VecDeque<(Instant, QueryId)>,
    /// Per-query deadlines ([`SubmitOptions::deadline`]), earliest
    /// first. Entries for already-retired queries are skipped lazily.
    deadlines: BinaryHeap<Reverse<(Instant, QueryId)>>,
    submissions_since_flush: usize,
    /// Database revision seen by the last flush; a change marks every
    /// component dirty (kept-pending components may now be answerable).
    flushed_db_revision: u64,
    /// When enabled, every terminal transition is also appended here so
    /// a service layer can push events instead of polling per-query
    /// handles. `None` (the default) records nothing.
    outcome_log: Option<Vec<(QueryId, QueryOutcome)>>,
}

impl CoordinationEngine {
    /// Creates an engine over a database.
    pub fn new(db: Database, config: EngineConfig) -> Self {
        Self::with_shared_db(Arc::new(RwLock::new(db)), config)
    }

    /// Creates an engine over an already-shared database handle — the
    /// sharded `Coordinator` gives each engine shard the same database
    /// while every other piece of engine state stays shard-private.
    pub(crate) fn with_shared_db(db: Arc<RwLock<Database>>, config: EngineConfig) -> Self {
        let revision = db.read().revision();
        CoordinationEngine {
            config,
            db,
            gen: VarGen::new(),
            next_id: 1,
            slots: Vec::new(),
            free_slots: Vec::new(),
            by_id: FastMap::default(),
            statuses: FastMap::default(),
            head_index: ShardedAtomIndex::default(),
            pc_index: ShardedAtomIndex::default(),
            resident: ResidentGraph::new(),
            age_queue: VecDeque::new(),
            deadlines: BinaryHeap::new(),
            submissions_since_flush: 0,
            flushed_db_revision: revision,
            outcome_log: None,
        }
    }

    /// Turns recording of terminal transitions (answer, rejection,
    /// expiry, cancellation) into an internal log — drained by
    /// [`CoordinationEngine::drain_outcome_log`] — on or off. The
    /// `Coordinator` service enables this while it has event
    /// subscribers and disables it again when the last one hangs up,
    /// so retirements only pay for outcome clones when somebody is
    /// listening. Disabling drops any undrained entries.
    pub fn set_outcome_log(&mut self, enabled: bool) {
        if enabled {
            if self.outcome_log.is_none() {
                self.outcome_log = Some(Vec::new());
            }
        } else {
            self.outcome_log = None;
        }
    }

    /// Takes all terminal outcomes recorded since the last drain, in
    /// retirement order. Empty if the log was never enabled.
    pub fn drain_outcome_log(&mut self) -> Vec<(QueryId, QueryOutcome)> {
        match self.outcome_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Shared handle to the engine's database (write to it between
    /// rounds to load data).
    pub fn db(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// Allocates the next query id: from the shared service counter
    /// when one is given, else from the engine-local sequence. The
    /// local watermark follows the shared counter so mixed driving and
    /// checkpointing stay coherent.
    fn draw_id(&mut self, source: Option<&AtomicU64>) -> QueryId {
        let raw = match source {
            Some(counter) => counter.fetch_add(1, Ordering::Relaxed),
            None => self.next_id,
        };
        self.next_id = self.next_id.max(raw + 1);
        QueryId(raw)
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.by_id.len()
    }

    /// The status of a query, if known.
    pub fn status(&self, id: QueryId) -> Option<&QueryStatus> {
        self.statuses.get(&id)
    }

    /// Submits a query with default [`SubmitOptions`]. Returns a handle
    /// delivering the terminal outcome; in incremental mode
    /// coordination is attempted before this returns, so the handle may
    /// already hold the outcome.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<QueryHandle, SubmitError> {
        self.submit_with(query, SubmitOptions::default())
    }

    /// Submits a query with per-query options (deadline, no-solution
    /// policy). See [`CoordinationEngine::submit`].
    pub fn submit_with(
        &mut self,
        query: EntangledQuery,
        opts: SubmitOptions,
    ) -> Result<QueryHandle, SubmitError> {
        self.submit_with_source(query, opts, None)
    }

    /// [`CoordinationEngine::submit_with`] drawing the query id from an
    /// optional shared counter instead of the engine-local one — the
    /// sharded `Coordinator` routes submissions to independently locked
    /// engines but keeps one global id sequence. The id is consumed
    /// only after validation and the admission safety check succeed
    /// (both are id-agnostic), so successful submissions draw exactly
    /// one id in either mode and the sequence matches single-shard
    /// submission bit for bit.
    pub(crate) fn submit_with_source(
        &mut self,
        query: EntangledQuery,
        opts: SubmitOptions,
        source: Option<&AtomicU64>,
    ) -> Result<QueryHandle, SubmitError> {
        query.validate().map_err(SubmitError::Invalid)?;
        self.expire_stale();

        let renamed = query.rename_apart(&self.gen);

        if self.config.admission_safety_check {
            self.check_admission_safety(&renamed)?;
        }
        let id = self.draw_id(source);
        let renamed = renamed.with_id(id);

        let probed = self.probe_resident(&renamed);
        let mut partners: FastSet<u32> = FastSet::default();
        for e in &probed {
            partners.insert(e.partner);
        }
        let slot = self.allocate_slot();
        let edges = materialize_edges(slot, probed);
        let handle = self.admit_at(slot, renamed, edges, opts);

        match self.config.mode {
            EngineMode::Incremental => {
                let limit = self.config.incremental_partition_limit;
                match self.resident.bounded_component(slot, limit) {
                    Some(members) => {
                        // The registry component may still be coarser
                        // than the true piece (pending split); only
                        // mark it clean when the piece covers it —
                        // otherwise other pieces would lose their
                        // dirtiness.
                        if members.len() == self.resident.component_len(slot) {
                            self.resident.mark_clean(slot);
                        }
                        self.process_groups(&[members]);
                    }
                    None => {
                        let mut ordered: Vec<u32> = partners.into_iter().collect();
                        ordered.sort_unstable();
                        self.eager_pair(slot, &ordered);
                    }
                }
            }
            EngineMode::SetAtATime { batch_size } => {
                self.submissions_since_flush += 1;
                if batch_size > 0 && self.submissions_since_flush >= batch_size {
                    self.flush();
                }
            }
        }

        Ok(handle)
    }

    /// Discovers unifiability edges between a (renamed) incoming query
    /// and the resident pool through the sharded atom indexes, computing
    /// each MGU exactly once — the unifier is kept on the resident edge
    /// and reused by every future matching run over its component.
    /// Read-only: [`CoordinationEngine::submit_batch`] runs this phase
    /// for many queries in parallel, each probe touching only the
    /// shards its atoms hash to.
    fn probe_resident(&self, renamed: &EntangledQuery) -> Vec<ProbedEdge> {
        let mut probed = Vec::new();
        for (ai, atom) in renamed.head.iter().enumerate() {
            // Existing postconditions this head satisfies.
            self.pc_index.for_each_candidate(atom, |cand, pc| {
                if let Some(mgu) = eq_unify::mgu_atoms(atom, pc) {
                    probed.push(ProbedEdge {
                        outgoing: true,
                        local_atom: ai as u32,
                        partner: cand.query,
                        partner_atom: cand.atom,
                        mgu,
                    });
                }
            });
        }
        for (ai, atom) in renamed.postconditions.iter().enumerate() {
            // Existing heads satisfying this postcondition.
            self.head_index.for_each_candidate(atom, |cand, head| {
                if let Some(mgu) = eq_unify::mgu_atoms(head, atom) {
                    probed.push(ProbedEdge {
                        outgoing: false,
                        local_atom: ai as u32,
                        partner: cand.query,
                        partner_atom: cand.atom,
                        mgu,
                    });
                }
            });
        }
        probed
    }

    /// Installs an admitted query at `slot`: satisfier bookkeeping,
    /// atom indexing, resident-graph linking (merging partner
    /// components and marking the result dirty), id/status/staleness
    /// registration. `edges` must already use real slots at both
    /// endpoints.
    fn admit_at(
        &mut self,
        slot: u32,
        renamed: EntangledQuery,
        edges: Vec<Edge>,
        opts: SubmitOptions,
    ) -> QueryHandle {
        let id = renamed.id;
        let (tx, rx) = sync_channel(1);
        self.admit_slot(
            slot,
            renamed,
            edges,
            tx,
            opts.on_no_solution,
            opts.deadline,
            Instant::now(),
        );
        QueryHandle { id, outcome: rx }
    }

    /// [`CoordinationEngine::admit_at`] with an externally supplied
    /// outcome channel and timestamps — shared by fresh admission
    /// (which creates the channel) and shard migration (which must
    /// preserve the original one along with the query's real
    /// submission instant and deadline).
    #[allow(clippy::too_many_arguments)]
    fn admit_slot(
        &mut self,
        slot: u32,
        renamed: EntangledQuery,
        edges: Vec<Edge>,
        sender: SyncSender<QueryOutcome>,
        on_no_solution: Option<NoSolutionPolicy>,
        deadline: Option<Instant>,
        submitted_at: Instant,
    ) {
        let id = renamed.id;

        // Satisfier counters follow the discovered edges.
        let mut pc_satisfiers = vec![0u32; renamed.pc_count()];
        for e in &edges {
            if e.from == slot {
                if let Some(p) = self.slots[e.to as usize].as_mut() {
                    p.pc_satisfiers[e.pc_idx as usize] += 1;
                }
            } else {
                pc_satisfiers[e.pc_idx as usize] += 1;
            }
        }

        for (ai, atom) in renamed.head.iter().enumerate() {
            self.head_index.insert(
                AtomRef {
                    query: slot,
                    atom: ai as u32,
                },
                atom,
            );
        }
        for (ai, atom) in renamed.postconditions.iter().enumerate() {
            self.pc_index.insert(
                AtomRef {
                    query: slot,
                    atom: ai as u32,
                },
                atom,
            );
        }
        self.slots[slot as usize] = Some(PendingQuery {
            query: renamed,
            sender,
            pc_satisfiers,
            on_no_solution,
            deadline,
            submitted_at,
        });
        self.resident.link(slot, edges);
        self.by_id.insert(id, slot);
        self.statuses.insert(id, QueryStatus::Pending);
        self.age_queue.push_back((submitted_at, id));
        if let Some(deadline) = deadline {
            self.deadlines.push(Reverse((deadline, id)));
        }
    }

    /// Removes every pending query matching `pred` from this engine
    /// without retiring it — no outcome is delivered, no terminal
    /// status is recorded — and returns the queries (ascending by id)
    /// for re-admission elsewhere. This is the donor half of the
    /// service's shard-merge migration. Stale age-queue and
    /// deadline-heap entries stay behind and are skipped lazily, like
    /// any other retirement's.
    pub(crate) fn extract_pending(
        &mut self,
        mut pred: impl FnMut(&EntangledQuery) -> bool,
    ) -> Vec<MigratedQuery> {
        let victims: Vec<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, entry)| entry.as_ref().filter(|p| pred(&p.query)).map(|_| s as u32))
            .collect();
        let mut out = Vec::with_capacity(victims.len());
        for slot in victims {
            let pending = self.slots[slot as usize].take().expect("victim slot live");
            let id = pending.query.id;
            self.by_id.remove(&id);
            // The Pending status entry travels with the query; the
            // destination re-inserts it on admission.
            self.statuses.remove(&id);
            for &eid in self.resident.out_edges(slot) {
                let e = self.resident.edge(eid);
                if let Some(p) = self.slots[e.to as usize].as_mut() {
                    let c = &mut p.pc_satisfiers[e.pc_idx as usize];
                    *c = c.saturating_sub(1);
                }
            }
            for (ai, atom) in pending.query.head.iter().enumerate() {
                self.head_index.remove(
                    AtomRef {
                        query: slot,
                        atom: ai as u32,
                    },
                    atom,
                );
            }
            for (ai, atom) in pending.query.postconditions.iter().enumerate() {
                self.pc_index.remove(
                    AtomRef {
                        query: slot,
                        atom: ai as u32,
                    },
                    atom,
                );
            }
            self.resident.unlink(slot);
            self.free_slots.push(slot);
            out.push(MigratedQuery {
                id,
                query: pending.query,
                sender: pending.sender,
                on_no_solution: pending.on_no_solution,
                deadline: pending.deadline,
                submitted_at: pending.submitted_at,
            });
        }
        out.sort_by_key(|m| m.id);
        out
    }

    /// Re-admits a migrated query under its original id, outcome
    /// channel, deadline, and submission instant. The query is renamed
    /// apart against *this* engine's variable generator (the donor's
    /// names could collide here) and re-probed against the resident
    /// pool; no safety re-check runs — the query passed Figure-9 on
    /// admission, and merging previously disjoint connectivity groups
    /// cannot create new head/postcondition competition between them
    /// (disjoint key sets admit no new unifiable pairs). No evaluation
    /// is triggered; linking marks the component dirty, so the
    /// submission that caused the merge (or the next flush) picks it
    /// up. Callers re-admitting a batch must call
    /// [`CoordinationEngine::resort_age_queue`] afterwards.
    pub(crate) fn admit_migrated(&mut self, m: MigratedQuery) {
        let renamed = m.query.rename_apart(&self.gen).with_id(m.id);
        let probed = self.probe_resident(&renamed);
        let slot = self.allocate_slot();
        let edges = materialize_edges(slot, probed);
        self.admit_slot(
            slot,
            renamed,
            edges,
            m.sender,
            m.on_no_solution,
            m.deadline,
            m.submitted_at,
        );
    }

    /// Restores the age queue's monotone-time invariant after migrated
    /// re-admissions pushed older submission instants at the back
    /// (the staleness sweep pops from the front and assumes ascending
    /// timestamps).
    pub(crate) fn resort_age_queue(&mut self) {
        let mut entries: Vec<(Instant, QueryId)> = self.age_queue.drain(..).collect();
        entries.sort();
        self.age_queue.extend(entries);
    }

    /// Submits a batch of queries, running the expensive admission work
    /// — index probing and MGU computation against both the resident
    /// pool and the rest of the batch — **in parallel** on the flush
    /// worker pool ([`EngineConfig::flush_threads`]; the sharded atom
    /// indexes make the probes read-disjoint per `(relation, arity)`
    /// shard). A cheap sequential pass then replays admission in
    /// submission order, so ids, safety decisions, and linked edges are
    /// the same as `n` individual [`CoordinationEngine::submit`] calls
    /// would produce.
    ///
    /// Differences from sequential submission, by design:
    ///
    /// * evaluation is deferred to the end of the batch — in
    ///   incremental mode every component the batch dirtied is
    ///   evaluated once after all admissions (so intra-batch arrivals
    ///   never race retirements), with components above
    ///   [`EngineConfig::incremental_partition_limit`] left pending and
    ///   dirty for an explicit [`CoordinationEngine::flush`] (sequential
    ///   submission eager-pairs those instead); in set-at-a-time mode
    ///   the auto-flush threshold is checked once after the batch;
    /// * the staleness sweep runs once, up front.
    ///
    /// With `SetAtATime { batch_size: 0 }`, `submit_batch` followed by
    /// [`CoordinationEngine::flush`] is observationally equivalent to
    /// sequential submits followed by `flush` (same admission results,
    /// same terminal statuses) — property-tested in the bench crate.
    pub fn submit_batch(
        &mut self,
        batch: Vec<(EntangledQuery, SubmitOptions)>,
    ) -> Vec<Result<QueryHandle, SubmitError>> {
        self.submit_batch_with_source(batch, None)
    }

    /// [`CoordinationEngine::submit_batch`] drawing ids from an
    /// optional shared counter — see
    /// [`CoordinationEngine::submit_with_source`].
    pub(crate) fn submit_batch_with_source(
        &mut self,
        batch: Vec<(EntangledQuery, SubmitOptions)>,
        source: Option<&AtomicU64>,
    ) -> Vec<Result<QueryHandle, SubmitError>> {
        self.expire_stale();
        let n = batch.len();

        // Sequential prepass: validate and rename in submission order,
        // so fresh variables are drawn exactly as sequential submits
        // would draw them.
        let mut opts_v: Vec<SubmitOptions> = Vec::with_capacity(n);
        let mut prepared: Vec<Result<EntangledQuery, ValidationError>> = Vec::with_capacity(n);
        for (query, opts) in batch {
            opts_v.push(opts);
            match query.validate() {
                Ok(()) => prepared.push(Ok(query.rename_apart(&self.gen))),
                Err(e) => prepared.push(Err(e)),
            }
        }

        // Batch-local postcondition index: the probe target for
        // intra-batch edge discovery. Building it is hashing only (no
        // MGU work); the MGU-heavy probes against it run in phase A.
        let mut batch_pcs = AtomIndex::new();
        for (k, prep) in prepared.iter().enumerate() {
            if let Ok(q) = prep {
                for (ai, atom) in q.postconditions.iter().enumerate() {
                    batch_pcs.insert(
                        AtomRef {
                            query: k as u32,
                            atom: ai as u32,
                        },
                        atom,
                    );
                }
            }
        }

        // Phase A (parallel, read-only): per query, discover edges
        // against the pre-batch resident pool and candidate edges
        // against the rest of the batch.
        let mut probes = self.probe_batch(&prepared, &batch_pcs);

        // Incoming intra-batch candidates per target: (source batch
        // position, index into its batch_out list).
        let mut batch_in: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (k, probe) in probes.iter().enumerate() {
            if let Some(p) = probe {
                for (i, e) in p.batch_out.iter().enumerate() {
                    if let Some(e) = e {
                        batch_in[e.to].push((k, i));
                    }
                }
            }
        }

        // Phase B (sequential, submission order): replay admission —
        // id assignment, safety decisions against residents + admitted
        // batch members, slot allocation, linking. All MGUs were
        // computed in phase A; this pass is counters and hash inserts.
        let mut results: Vec<Result<QueryHandle, SubmitError>> = Vec::with_capacity(n);
        let mut admitted_slot: Vec<Option<u32>> = vec![None; n];
        let mut admitted_count = 0usize;
        for k in 0..n {
            // The placeholder is never read back: each entry is
            // consumed exactly once, in this iteration.
            let renamed = match std::mem::replace(&mut prepared[k], Err(ValidationError::EmptyHead))
            {
                Ok(q) => q,
                Err(e) => {
                    results.push(Err(SubmitError::Invalid(e)));
                    continue;
                }
            };
            let probe = probes[k].take().expect("valid queries were probed");

            if self.config.admission_safety_check
                && self.batch_is_unsafe(&renamed, &probe, &batch_in[k], &probes, &admitted_slot)
            {
                results.push(Err(SubmitError::Unsafe));
                continue;
            }

            let id = self.draw_id(source);
            let slot = self.allocate_slot();
            let mut edges = materialize_edges(slot, probe.resident);
            // Edges from earlier-admitted batch members into this query.
            for &(src, i) in &batch_in[k] {
                let Some(from_slot) = admitted_slot[src] else {
                    continue;
                };
                let e = probes[src]
                    .as_mut()
                    .and_then(|p| p.batch_out[i].take())
                    .expect("intra-batch edge consumed once");
                edges.push(Edge {
                    from: from_slot,
                    head_idx: e.head_idx,
                    to: slot,
                    pc_idx: e.pc_idx,
                    mgu: e.mgu,
                });
            }
            // Edges from this query to earlier-admitted batch members.
            let mut batch_out = probe.batch_out;
            for e in batch_out.iter_mut() {
                let Some(to_slot) = e.as_ref().and_then(|e| admitted_slot[e.to]) else {
                    continue;
                };
                let e = e.take().expect("checked above");
                edges.push(Edge {
                    from: slot,
                    head_idx: e.head_idx,
                    to: to_slot,
                    pc_idx: e.pc_idx,
                    mgu: e.mgu,
                });
            }
            // Remaining candidates target later batch members; they are
            // consumed from `batch_in` when those members admit.
            probes[k] = Some(BatchProbe {
                resident: Vec::new(),
                batch_out,
            });

            results.push(Ok(self.admit_at(
                slot,
                renamed.with_id(id),
                edges,
                opts_v[k],
            )));
            admitted_slot[k] = Some(slot);
            admitted_count += 1;
        }

        // Evaluation epilogue, once for the whole batch.
        match self.config.mode {
            EngineMode::Incremental => {
                // Batched incremental: evaluate the components the
                // batch dirtied, respecting the partition limit —
                // oversized components stay pending *and dirty* (an
                // explicit flush picks them up) instead of triggering
                // the Figure-8 giant-cluster blow-up that sequential
                // submission's eager-pair fallback caps.
                let limit = self.config.incremental_partition_limit;
                let groups = self.resident.take_dirty();
                let (bounded, oversized): (Vec<_>, Vec<_>) =
                    groups.into_iter().partition(|g| g.len() <= limit);
                self.process_groups(&bounded);
                for group in oversized {
                    if let Some(&slot) = group.first() {
                        self.resident.mark_dirty(slot);
                    }
                }
            }
            EngineMode::SetAtATime { batch_size } => {
                self.submissions_since_flush += admitted_count;
                if batch_size > 0 && self.submissions_since_flush >= batch_size {
                    self.flush();
                }
            }
        }
        results
    }

    /// Phase A of [`CoordinationEngine::submit_batch`]: probe the
    /// resident indexes and the batch-local postcondition index for
    /// every valid query, on the flush worker pool. Read-only over the
    /// engine; workers claim queries from a shared atomic cursor.
    fn probe_batch(
        &self,
        prepared: &[Result<EntangledQuery, ValidationError>],
        batch_pcs: &AtomIndex,
    ) -> Vec<Option<BatchProbe>> {
        let work: Vec<usize> = prepared
            .iter()
            .enumerate()
            .filter_map(|(k, p)| p.is_ok().then_some(k))
            .collect();
        let probe_one = |k: usize| -> BatchProbe {
            let q = prepared[k].as_ref().expect("work items are valid");
            let resident = self.probe_resident(q);
            let mut batch_out = Vec::new();
            for (ai, atom) in q.head.iter().enumerate() {
                batch_pcs.for_each_candidate(atom, |cand, pc| {
                    if cand.query as usize == k {
                        return; // no self-coordination
                    }
                    if let Some(mgu) = eq_unify::mgu_atoms(atom, pc) {
                        batch_out.push(Some(BatchEdge {
                            head_idx: ai as u32,
                            to: cand.query as usize,
                            pc_idx: cand.atom,
                            mgu,
                        }));
                    }
                });
            }
            BatchProbe {
                resident,
                batch_out,
            }
        };

        let mut out: Vec<Option<BatchProbe>> = Vec::with_capacity(prepared.len());
        out.resize_with(prepared.len(), || None);
        let threads = self.config.effective_flush_threads();
        for (k, probe) in pool::parallel_claim(&work, threads, None, probe_one) {
            out[k] = Some(probe);
        }
        out
    }

    /// The admission safety check of [`CoordinationEngine::submit_batch`]'s
    /// sequential pass, equivalent to
    /// [`CoordinationEngine::check_admission_safety`] run at this
    /// query's position in submission order: heads of residents and of
    /// *earlier-admitted* batch members count, with all MGU work
    /// already done in phase A.
    fn batch_is_unsafe(
        &self,
        renamed: &EntangledQuery,
        probe: &BatchProbe,
        incoming: &[(usize, usize)],
        probes: &[Option<BatchProbe>],
        admitted_slot: &[Option<u32>],
    ) -> bool {
        // Each of the query's postconditions must unify with at most
        // one live head (residents are all still live during admission;
        // batch heads count once their owner is admitted).
        let mut hits = vec![0u32; renamed.pc_count()];
        for e in &probe.resident {
            if !e.outgoing {
                hits[e.local_atom as usize] += 1;
            }
        }
        for &(src, i) in incoming {
            if admitted_slot[src].is_some() {
                let e = probes[src]
                    .as_ref()
                    .and_then(|p| p.batch_out[i].as_ref())
                    .expect("unconsumed candidate");
                hits[e.pc_idx as usize] += 1;
            }
        }
        if hits.iter().any(|&h| h >= 2) {
            return true;
        }
        // Each of the query's heads must not give a live postcondition
        // a second satisfier. `pc_satisfiers` counters are kept current
        // by `admit_at` as earlier batch members link in.
        for e in &probe.resident {
            if e.outgoing {
                let owner = self.slots[e.partner as usize]
                    .as_ref()
                    .expect("resident slot live during admission");
                if owner.pc_satisfiers[e.partner_atom as usize] >= 1 {
                    return true;
                }
            }
        }
        for e in probe.batch_out.iter().flatten() {
            let Some(to_slot) = admitted_slot[e.to] else {
                continue;
            };
            let owner = self.slots[to_slot as usize]
                .as_ref()
                .expect("admitted batch slot live");
            if owner.pc_satisfiers[e.pc_idx as usize] >= 1 {
                return true;
            }
        }
        false
    }

    /// Admission safety check (Figure 9): reject the query if admitting
    /// it would give any postcondition (its own or a pending query's)
    /// two or more unifying heads. Probes visit index candidates in
    /// place ([`ShardedAtomIndex::for_each_candidate`]) — no per-probe
    /// allocation on this hot path.
    fn check_admission_safety(&self, q: &EntangledQuery) -> Result<(), SubmitError> {
        // Each of q's postconditions must unify with at most one pending
        // head.
        for pc in &q.postconditions {
            let mut hits = 0u32;
            self.head_index.for_each_candidate(pc, |_, head| {
                if hits < 2 && eq_unify::mgu_atoms(head, pc).is_some() {
                    hits += 1;
                }
            });
            if hits >= 2 {
                return Err(SubmitError::Unsafe);
            }
        }
        // Each of q's heads must not give a pending postcondition a
        // second satisfier.
        for head in &q.head {
            let mut second_satisfier = false;
            self.pc_index.for_each_candidate(head, |cand, pc| {
                if second_satisfier || eq_unify::mgu_atoms(head, pc).is_none() {
                    return;
                }
                let owner = self.slots[cand.query as usize].as_ref().expect("live slot");
                if owner.pc_satisfiers[cand.atom as usize] >= 1 {
                    second_satisfier = true;
                }
            });
            if second_satisfier {
                return Err(SubmitError::Unsafe);
            }
        }
        // Within-query ambiguity: two of q's own heads unifying one of
        // its postconditions is impossible to form (self-edges are
        // excluded), so nothing to check.
        Ok(())
    }

    /// Fails and removes every pending query older than the engine-wide
    /// staleness bound, plus every pending query whose per-query
    /// deadline ([`SubmitOptions::deadline`]) has passed.
    pub fn expire_stale(&mut self) -> usize {
        let now = Instant::now();
        let mut expired = 0;
        // Per-query deadlines, earliest first. Entries for queries that
        // already retired for other reasons are skipped lazily.
        while let Some(&Reverse((t, id))) = self.deadlines.peek() {
            if t > now {
                break;
            }
            self.deadlines.pop();
            if let Some(&slot) = self.by_id.get(&id) {
                self.retire(slot, Err(FailReason::Stale));
                expired += 1;
            }
        }
        // Engine-wide staleness over the submission-order queue.
        if let Some(bound) = self.config.staleness {
            while let Some(&(t, id)) = self.age_queue.front() {
                if now.duration_since(t) < bound {
                    break;
                }
                self.age_queue.pop_front();
                if let Some(&slot) = self.by_id.get(&id) {
                    self.retire(slot, Err(FailReason::Stale));
                    expired += 1;
                }
            }
        }
        expired
    }

    /// Set-at-a-time evaluation: takes the *dirty* components of the
    /// resident match graph — those whose membership changed since they
    /// were last evaluated, or all of them if the database was written
    /// in between — and processes them on the sharded worker pool
    /// (`flush_threads` workers; `0` = one per hardware thread; `1` =
    /// sequential). Clean components are skipped entirely (reported in
    /// [`BatchReport::skipped_clean`]): a flush with no changes since
    /// the previous one evaluates zero components. Unmatched queries
    /// remain pending.
    pub fn flush(&mut self) -> BatchReport {
        self.submissions_since_flush = 0;
        self.expire_stale();

        let revision = self.db.read().revision();
        if revision != self.flushed_db_revision {
            self.flushed_db_revision = revision;
            self.resident.mark_all_dirty();
        }
        // Count skips before splits resolve: a split-pending dirty
        // component may become several groups, which must not eat into
        // the clean-skip count.
        let skipped = self.resident.component_count() - self.resident.dirty_count();
        let groups = self.resident.take_dirty();
        let mut report = self.process_groups(&groups);
        report.skipped_clean = skipped;
        report.io = self.db.read().io_stats();
        report
    }

    /// Withdraws a pending query, failing it with
    /// [`FailReason::Cancelled`]. Returns false if the id is unknown or
    /// already terminal. Used by churn workloads and applications whose
    /// users abandon a coordination request.
    pub fn cancel(&mut self, id: QueryId) -> bool {
        let Some(&slot) = self.by_id.get(&id) else {
            return false;
        };
        self.retire(slot, Err(FailReason::Cancelled));
        true
    }

    /// Eager pairing for oversized partitions: try the new query against
    /// each direct unification partner; the first pair that closes
    /// syntactically is evaluated immediately (the paper's
    /// nondeterministic choice among coordination options). On a database
    /// miss the pair is failed or kept per [`NoSolutionPolicy`].
    ///
    /// Pairs are matched directly on the resident graph (the member set
    /// `{new, partner}` hides the rest of the partition), so nothing is
    /// cloned — the pre-resident implementation cloned the candidate
    /// query once per partner attempt.
    fn eager_pair(&mut self, slot: u32, partners: &[u32]) {
        // A query without postconditions coordinates alone.
        if self.slots[slot as usize]
            .as_ref()
            .expect("live slot")
            .query
            .postconditions
            .is_empty()
        {
            self.process_groups(&[vec![slot]]);
            return;
        }
        for &p in partners {
            if self.slots[p as usize].is_none() {
                continue;
            }
            let members = [slot.min(p), slot.max(p)];
            let (survivors, solution) = {
                let view = ResidentView {
                    slots: &self.slots,
                    graph: &self.resident,
                };
                let m = matching::match_component(&view, &members);
                if m.survivors.len() != 2 {
                    continue; // the pair does not close; try the next partner
                }
                let Some(global) = m.global else {
                    continue;
                };
                let db = self.db.read();
                // Same evaluation code path as flushes and incremental
                // triggers (sequential here: one pair, submit thread).
                let (solution, _) =
                    evaluate_survivors(&view, &m.survivors, global, &db, &self.config, 1);
                (m.survivors, solution)
            };
            match solution {
                Ok(first) => match first {
                    Some(answers) => {
                        for (&s, answer) in survivors.iter().zip(answers) {
                            self.retire(s, Ok(answer));
                        }
                        return;
                    }
                    None => {
                        // Per-member no-solution policy: members with
                        // an effective Reject are failed, KeepPending
                        // members stay and (if the new query survived)
                        // the next partner is tried.
                        let mut new_query_retired = false;
                        for &s in &members {
                            if self.effective_no_solution(s) == NoSolutionPolicy::Reject {
                                self.retire(s, Err(FailReason::Rejected(RejectReason::NoSolution)));
                                new_query_retired |= s == slot;
                            }
                        }
                        if new_query_retired {
                            return;
                        }
                        // KeepPending: try the next partner.
                    }
                },
                Err(_) => {
                    for &s in &members {
                        self.retire(s, Err(FailReason::Rejected(RejectReason::NoSolution)));
                    }
                    return;
                }
            }
        }
    }

    /// Matches and evaluates component member groups straight off the
    /// resident graph. Each group must be one weakly connected resident
    /// component (as produced by [`ResidentGraph::take_dirty`] or
    /// [`ResidentGraph::component_members`]). Per group: §3.1.1 safety
    /// enforcement sidelines ambiguous members (they stay pending), the
    /// survivors are re-partitioned (removals may disconnect them), and
    /// every piece is matched + evaluated on the sharded worker pool.
    fn process_groups(&mut self, groups: &[Vec<u32>]) -> BatchReport {
        let mut report = BatchReport::default();
        if groups.is_empty() {
            report.pending = self.pending_count();
            return report;
        }
        // Unifier-op accounting: diff the process-global counters
        // across the whole operation (the worker threads' activity
        // lands in the same atomics).
        let unify_before = eq_unify::ops::global();

        // Phase 1 (read-only): safety, partition, match, evaluate.
        let pieces: Vec<Vec<u32>>;
        let outcomes: Vec<ComponentOutcome>;
        {
            let view = ResidentView {
                slots: &self.slots,
                graph: &self.resident,
            };
            pieces = groups
                .iter()
                .flat_map(|group| {
                    // Safety enforcement (§3.1.1) at matching time:
                    // ambiguous queries sit out this round but stay
                    // pending — their ambiguity may resolve when
                    // partners retire. (The admission-time check, when
                    // enabled, makes this a no-op.)
                    let removed = safety::enforce_members(&view, group);
                    let dead: FastSet<u32> = removed.into_iter().collect();
                    self.resident.connected_pieces(group, &dead)
                })
                .collect();
            report.components = pieces.len();

            let db = self.db.read();
            let pool = self.config.effective_flush_threads();
            // Two parallelism regimes, sharing one worker-count budget:
            // *across* components for the (usually many) small pieces,
            // *inside* the component for pieces at or above the
            // intra-component threshold — a giant piece would otherwise
            // serialize the flush on one worker while the rest idle.
            let threshold = self.config.intra_component_threshold;
            let (mut giant_idx, mut small_idx): (Vec<usize>, Vec<usize>) =
                (0..pieces.len()).partition(|&i| pieces[i].len() >= threshold);
            // With at least one over-threshold piece per worker,
            // cross-component sharding beats working inside one piece
            // at a time: fold the giants into the sharded set (each
            // still gets the partitioned evaluation algorithmically —
            // just single-threaded per piece).
            if giant_idx.len() >= pool {
                small_idx.append(&mut giant_idx);
                small_idx.sort_unstable();
            }
            let mut slots_out: Vec<Option<ComponentOutcome>> = Vec::with_capacity(pieces.len());
            slots_out.resize_with(pieces.len(), || None);
            // Small pieces first (the pool saturates across them), then
            // each giant piece with the whole pool working inside it —
            // a giant's sequential phases (matching fixpoint, UCS) must
            // not idle workers while small pieces wait. The two regimes
            // run back to back rather than overlapped: overlapping them
            // would oversubscribe the pool during a giant's parallel
            // phases.
            let threads = pool.min(small_idx.len().max(1));
            if threads > 1 {
                for (i, outcome) in
                    sharded_process(&view, &pieces, &small_idx, &db, &self.config, threads)
                {
                    slots_out[i] = Some(outcome);
                }
            } else {
                for &i in &small_idx {
                    slots_out[i] = Some(process_component(&view, &pieces[i], &db, &self.config, 1));
                }
            }
            for &i in &giant_idx {
                slots_out[i] = Some(process_component(
                    &view,
                    &pieces[i],
                    &db,
                    &self.config,
                    pool,
                ));
            }
            outcomes = slots_out
                .into_iter()
                .map(|o| o.expect("every piece processed"))
                .collect();
        }

        // Phase 2 (sequential): deliver outcomes and retire queries.
        // Retirement unlinks slots from the resident graph, re-marking
        // partially-retired components dirty — the next flush re-checks
        // whatever remains pending in them.
        for outcome in outcomes {
            report.stats.dequeues += outcome.stats.dequeues;
            report.stats.mgu_calls += outcome.stats.mgu_calls;
            report.stats.cleanups += outcome.stats.cleanups;
            if outcome.partitioned {
                report.intra_components += 1;
                report.intra_units += outcome.intra.units;
                report.intra_split_units += outcome.intra.split_units;
                report.intra_regions += outcome.intra.regions;
                report.intra_region_streamed += outcome.intra.region_streamed;
                report.intra_witness_peak =
                    report.intra_witness_peak.max(outcome.intra.witness_peak);
            }
            for (slot, answer) in outcome.answered {
                self.retire(slot, Ok(answer));
                report.answered += 1;
            }
            for (slot, reason) in outcome.failed {
                self.retire(slot, Err(FailReason::Rejected(reason)));
                report.failed += 1;
            }
            // A matched component without a database solution: apply
            // each member's effective no-solution policy — Reject
            // members fail, KeepPending members stay for a retry when
            // their component or the database changes.
            for slot in outcome.no_solution {
                if self.effective_no_solution(slot) == NoSolutionPolicy::Reject {
                    self.retire(slot, Err(FailReason::Rejected(RejectReason::NoSolution)));
                    report.failed += 1;
                }
            }
            // Unmatched stay pending.
        }
        report.pending = self.pending_count();
        let unify_delta = eq_unify::ops::global().delta_since(&unify_before);
        report.unify_merges = unify_delta.merges;
        report.unify_rollbacks = unify_delta.rollbacks;
        report.unify_clones = unify_delta.clones;
        report.unify_undo_high_water = unify_delta.undo_high_water;
        report
    }

    /// The no-solution policy in force for a live slot: its per-query
    /// override, or the engine-wide default.
    fn effective_no_solution(&self, slot: u32) -> NoSolutionPolicy {
        self.slots[slot as usize]
            .as_ref()
            .and_then(|p| p.on_no_solution)
            .unwrap_or(self.config.on_no_solution)
    }

    fn allocate_slot(&mut self) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        let s = self.slots.len() as u32;
        self.slots.push(None);
        s
    }

    /// Removes a query from all engine state and delivers its outcome.
    fn retire(&mut self, slot: u32, outcome: Result<QueryAnswer, FailReason>) {
        let Some(pending) = self.slots[slot as usize].take() else {
            return;
        };
        let id = pending.query.id;
        self.by_id.remove(&id);
        // A head leaving the pool frees up partner postconditions; the
        // resident out-edges name exactly the affected (partner, pc)
        // pairs — no index probing or re-unification needed.
        for &eid in self.resident.out_edges(slot) {
            let e = self.resident.edge(eid);
            if let Some(p) = self.slots[e.to as usize].as_mut() {
                let c = &mut p.pc_satisfiers[e.pc_idx as usize];
                *c = c.saturating_sub(1);
            }
        }
        for (ai, atom) in pending.query.head.iter().enumerate() {
            self.head_index.remove(
                AtomRef {
                    query: slot,
                    atom: ai as u32,
                },
                atom,
            );
        }
        for (ai, atom) in pending.query.postconditions.iter().enumerate() {
            self.pc_index.remove(
                AtomRef {
                    query: slot,
                    atom: ai as u32,
                },
                atom,
            );
        }
        self.resident.unlink(slot);
        self.free_slots.push(slot);

        let (status, message) = match outcome {
            Ok(answer) => (QueryStatus::Answered, QueryOutcome::Answered(answer)),
            Err(reason) => (
                QueryStatus::Failed(reason.clone()),
                QueryOutcome::Failed(reason),
            ),
        };
        self.statuses.insert(id, status);
        if let Some(log) = self.outcome_log.as_mut() {
            log.push((id, message.clone()));
        }
        let _ = pending.sender.try_send(message);
    }

    /// Structural invariant check over the whole engine, for tests and
    /// debugging: the resident graph is internally consistent, the atom
    /// indexes hold exactly the live slots' atoms (no dangling
    /// [`AtomRef`]s after slot reuse), satisfier counters agree with the
    /// resident in-edges, and id/slot maps line up. Violations are
    /// typed ([`InvariantViolation`]) and fold into
    /// [`crate::CoordinationError`].
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.resident
            .check_invariants()
            .map_err(InvariantViolation::Resident)?;
        let mut live_heads = 0usize;
        let mut live_pcs = 0usize;
        for (slot, entry) in self.slots.iter().enumerate() {
            let Some(p) = entry else { continue };
            if self.by_id.get(&p.query.id) != Some(&(slot as u32)) {
                return Err(InvariantViolation::IdMapMismatch { slot: slot as u32 });
            }
            live_heads += p.query.head.len();
            live_pcs += p.query.postconditions.len();
            for (ai, atom) in p.query.head.iter().enumerate() {
                let r = AtomRef {
                    query: slot as u32,
                    atom: ai as u32,
                };
                if self.head_index.get(r) != Some(atom) {
                    return Err(InvariantViolation::MissingHeadAtom {
                        slot: slot as u32,
                        atom: ai as u32,
                    });
                }
            }
            for (ai, atom) in p.query.postconditions.iter().enumerate() {
                let r = AtomRef {
                    query: slot as u32,
                    atom: ai as u32,
                };
                if self.pc_index.get(r) != Some(atom) {
                    return Err(InvariantViolation::MissingPcAtom {
                        slot: slot as u32,
                        atom: ai as u32,
                    });
                }
            }
            // Satisfier counters equal resident in-edge counts per pc.
            let mut counts = vec![0u32; p.query.pc_count()];
            if (slot) < self.resident.slot_bound() {
                for &eid in self.resident.in_edges(slot as u32) {
                    counts[self.resident.edge(eid).pc_idx as usize] += 1;
                }
            }
            if counts != p.pc_satisfiers {
                return Err(InvariantViolation::SatisfierDrift {
                    slot: slot as u32,
                    counters: p.pc_satisfiers.clone(),
                    in_edges: counts,
                });
            }
        }
        if self.head_index.len() != live_heads {
            return Err(InvariantViolation::IndexSizeMismatch {
                index: "head",
                indexed: self.head_index.len(),
                live: live_heads,
            });
        }
        if self.pc_index.len() != live_pcs {
            return Err(InvariantViolation::IndexSizeMismatch {
                index: "postcondition",
                indexed: self.pc_index.len(),
                live: live_pcs,
            });
        }
        let live = self.slots.iter().filter(|s| s.is_some()).count();
        if self.by_id.len() != live {
            return Err(InvariantViolation::IdMapSizeMismatch {
                ids: self.by_id.len(),
                live,
            });
        }
        Ok(())
    }

    /// The live pending slots grouped into resident components, each
    /// group sorted, groups ordered by smallest slot. (Groups may be
    /// coarser than true connectivity while a component split is
    /// pending resolution; safety analysis is grouping-insensitive.)
    fn live_component_groups(&self) -> Vec<Vec<u32>> {
        let snapshot = self.resident.components_snapshot();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut seen: FastSet<u32> = FastSet::default();
        let mut roots: Vec<u32> = snapshot.keys().copied().collect();
        roots.sort_unstable();
        for slot in roots {
            if seen.contains(&slot) {
                continue;
            }
            let members = snapshot[&slot].clone();
            for &m in &members {
                seen.insert(m);
            }
            groups.push(members);
        }
        groups
    }

    /// Scans the pending pool for §3.1.1 safety violations — any
    /// postcondition with two or more unifying live heads — without
    /// mutating anything. Used by strict one-shot coordination
    /// ([`crate::coordinate_with_config`] under
    /// [`safety::SafetyPolicy::RejectAll`]).
    pub fn safety_violations(&self) -> Vec<SafetyViolation> {
        let view = ResidentView {
            slots: &self.slots,
            graph: &self.resident,
        };
        let mut out = Vec::new();
        for group in self.live_component_groups() {
            out.extend(safety::violations_members(&view, &group));
        }
        out.sort_by_key(|v| (v.slot, v.pc_idx));
        out
    }

    /// The queries that §3.1.1 enforcement would sideline if a flush
    /// ran now: per component, the removal fixpoint over ambiguous
    /// postconditions. These queries stay pending through flushes until
    /// their ambiguity resolves; one-shot coordination reports them as
    /// `Unsafe`-rejected.
    pub fn safety_sidelined(&self) -> Vec<QueryId> {
        let view = ResidentView {
            slots: &self.slots,
            graph: &self.resident,
        };
        let mut out = Vec::new();
        for group in self.live_component_groups() {
            for slot in safety::enforce_members(&view, &group) {
                if let Some(p) = self.slots[slot as usize].as_ref() {
                    out.push(p.query.id);
                }
            }
        }
        out
    }

    /// Number of slot positions ever allocated (reuse means this stays
    /// near the peak pending count, not the total submission count).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live edges in the resident match graph.
    pub fn resident_edge_count(&self) -> usize {
        self.resident.edge_count()
    }

    /// Number of live components in the resident match graph.
    pub fn resident_component_count(&self) -> usize {
        self.resident.component_count()
    }
}

impl EngineConfig {
    /// Resolves `flush_threads`: 0 means one worker per available
    /// hardware thread.
    pub fn effective_flush_threads(&self) -> usize {
        match self.flush_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Converts probed edges into resident [`Edge`]s once the submitting
/// query's slot is known, preserving probe order (heads before
/// postconditions — the order sequential submission links in).
fn materialize_edges(slot: u32, probed: Vec<ProbedEdge>) -> Vec<Edge> {
    probed
        .into_iter()
        .map(|e| {
            if e.outgoing {
                Edge {
                    from: slot,
                    head_idx: e.local_atom,
                    to: e.partner,
                    pc_idx: e.partner_atom,
                    mgu: e.mgu,
                }
            } else {
                Edge {
                    from: e.partner,
                    head_idx: e.partner_atom,
                    to: slot,
                    pc_idx: e.local_atom,
                    mgu: e.mgu,
                }
            }
        })
        .collect()
}

/// Evaluates independent match-graph components (§4.1.2) on a sharded
/// `std::thread` worker pool. `indices` selects which entries of
/// `components` to process (the engine routes at-or-above-threshold
/// pieces through the intra-component path instead). Workers claim
/// components largest-first from a shared atomic queue — dynamic load
/// balancing matters because component sizes are heavy-tailed (a big
/// piece next to thousands of pairs under the Figure 8 workloads would
/// starve a static chunking). Results are returned keyed by original
/// index, so outcome delivery order is byte-for-byte identical to the
/// sequential path.
fn sharded_process<V: MatchView + Sync>(
    graph: &V,
    components: &[Vec<u32>],
    indices: &[usize],
    db: &Database,
    config: &EngineConfig,
    threads: usize,
) -> Vec<(usize, ComponentOutcome)> {
    // Claim order: largest components first.
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by_key(|&i| std::cmp::Reverse(components[i].len()));
    pool::parallel_claim(&order, threads, None, |idx| {
        process_component(graph, &components[idx], db, config, 1)
    })
}

/// Result of processing one component: outcomes keyed by engine slot.
/// `no_solution` members matched but found no database tuple; the
/// engine's sequential phase applies each one's no-solution policy
/// (policies are per-query state, which the read-only component workers
/// do not see).
struct ComponentOutcome {
    answered: Vec<(u32, QueryAnswer)>,
    failed: Vec<(u32, RejectReason)>,
    no_solution: Vec<u32>,
    stats: MatchStats,
    /// True when the combined query went through the partitioned
    /// intra-component path.
    partitioned: bool,
    /// Work-unit / region counters of that path (zeros on the
    /// sequential path).
    intra: IntraCounters,
}

/// Evaluates a matched component's combined query, routing by size: at
/// or above [`EngineConfig::intra_component_threshold`] the body is
/// partitioned into variable-disjoint work units evaluated on up to
/// `threads` workers ([`intra`]), below it the plain sequential
/// [`CombinedQuery`] path runs. The two produce identical answers by
/// construction (see [`intra`]'s module docs); this helper is the **one
/// evaluation code path** shared by set-at-a-time flushes, incremental
/// triggers, and the eager-pairing fallback. Returns the first
/// coordinated solution (one answer per survivor, in survivor order)
/// and the number of work units dispatched (0 for the sequential path).
fn evaluate_survivors<V: MatchView>(
    graph: &V,
    survivors: &[u32],
    global: Unifier,
    db: &Database,
    config: &EngineConfig,
    threads: usize,
) -> (
    Result<Option<Vec<QueryAnswer>>, eq_db::DbError>,
    Option<IntraCounters>,
) {
    if survivors.len() >= config.intra_component_threshold {
        let split = intra::SplitOptions {
            min_atoms: config.intra_split_min_atoms,
            region_cap: config.intra_region_cap,
            crossover: config.intra_split_crossover,
            streaming: config.intra_split_streaming,
        };
        let plan = intra::plan_component(graph, survivors, &global, &split);
        let mut counters = IntraCounters {
            units: plan.units.len(),
            split_units: plan.units.iter().filter(|u| u.regions.is_some()).count(),
            regions: plan
                .units
                .iter()
                .filter_map(|u| u.regions.as_ref())
                .map(|rp| rp.regions.len())
                .sum(),
            region_streamed: 0,
            witness_peak: 0,
        };
        let result = intra::evaluate_plan_with_stats(&plan, db, threads).map(|(answers, stats)| {
            counters.region_streamed = stats.region_streamed;
            counters.witness_peak = stats.witness_peak;
            answers
        });
        (result, Some(counters))
    } else {
        let combined = CombinedQuery::build(graph, survivors, global);
        let result = combined
            .evaluate(db, 1)
            .map(|solutions| solutions.into_iter().next());
        (result, None)
    }
}

/// Work-partitioning counters of one partitioned component evaluation
/// (folded into [`BatchReport`]).
#[derive(Clone, Copy, Default)]
struct IntraCounters {
    units: usize,
    split_units: usize,
    regions: usize,
    region_streamed: u64,
    witness_peak: u64,
}

fn process_component<V: MatchView + Sync>(
    graph: &V,
    members: &[u32],
    db: &Database,
    config: &EngineConfig,
    threads: usize,
) -> ComponentOutcome {
    let mut out = ComponentOutcome {
        answered: Vec::new(),
        failed: Vec::new(),
        no_solution: Vec::new(),
        stats: MatchStats::default(),
        partitioned: false,
        intra: IntraCounters::default(),
    };

    // The matching seed phase parallelizes for at-threshold components
    // (identical results to the sequential fixpoint; see
    // [`matching::match_component_threads`]).
    let m = if members.len() >= config.intra_component_threshold {
        matching::match_component_threads(graph, members, threads)
    } else {
        matching::match_component(graph, members)
    };
    out.stats = m.stats;
    if m.survivors.is_empty() {
        return out; // everyone stays pending
    }
    let Some(global) = m.global else {
        // Inconsistent component: reject survivors (removed stay
        // pending — their partners may still arrive).
        for &s in &m.survivors {
            out.failed.push((s, RejectReason::Unmatched));
        }
        return out;
    };

    // UCS on the survivor subgraph (member-scoped: no allocation over
    // the whole slot space).
    if !config.evaluate_non_ucs && !ucs::violations_members(graph, &m.survivors).is_empty() {
        for &s in &m.survivors {
            out.failed.push((s, RejectReason::NonUcs));
        }
        return out;
    }

    let (solution, counters) = evaluate_survivors(graph, &m.survivors, global, db, config, threads);
    if let Some(counters) = counters {
        out.partitioned = true;
        out.intra = counters;
    }
    match solution {
        Ok(Some(answers)) => {
            // `answers` is parallel to `m.survivors`.
            for (&slot, answer) in m.survivors.iter().zip(answers) {
                out.answered.push((slot, answer));
            }
        }
        Ok(None) => {
            // Policy application happens on the engine's sequential
            // phase (per-query overrides live in the slot table).
            out.no_solution = m.survivors.clone();
        }
        Err(e) => {
            // Unknown relation / arity error in some body: fail those
            // queries rather than poisoning the component forever.
            let _ = e;
            for &s in &m.survivors {
                out.failed.push((s, RejectReason::NoSolution));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn incremental_pair_coordinates_on_second_arrival() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert_eq!(engine.status(h1.id), Some(&QueryStatus::Pending));
        assert!(h1.outcome.try_recv().is_err());

        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)"))
            .unwrap();
        // Both answered synchronously inside the second submit.
        let o1 = h1.outcome.try_recv().unwrap();
        let o2 = h2.outcome.try_recv().unwrap();
        let (QueryOutcome::Answered(a1), QueryOutcome::Answered(a2)) = (o1, o2) else {
            panic!("expected both answered");
        };
        assert_eq!(a1.tuples[0][1], a2.tuples[0][1]);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.status(h1.id), Some(&QueryStatus::Answered));
    }

    #[test]
    fn set_at_a_time_waits_for_flush() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(engine.pending_count(), 2);
        assert!(h1.outcome.try_recv().is_err());
        let report = engine.flush();
        assert_eq!(report.answered, 2);
        assert_eq!(report.pending, 0);
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn auto_flush_on_batch_size() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 2 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        // Second submission hit the batch size and flushed.
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn unmatched_queries_stay_pending_across_flushes() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 0);
        assert_eq!(report.pending, 1);
        assert!(h.outcome.try_recv().is_err());
        // Partner arrives; next flush coordinates.
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 2);
    }

    #[test]
    fn admission_safety_check_rejects_second_satisfier() {
        // Two pending heads R(*, ITH); a new query whose pc unifies both
        // is rejected (Figure 9 semantics).
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        engine
            .submit(q("{R(Kramer, ITH)} R(Jerry, ITH) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Kramer, ITH)} R(Elaine, ITH) <- F(y, Paris)"))
            .unwrap();
        let err = engine
            .submit(q("{R(p, ITH)} R(Kramer, ITH) <- F(p, Paris)"))
            .unwrap_err();
        assert_eq!(err, SubmitError::Unsafe);

        // A head that would give a pending pc its second satisfier is
        // also rejected: both pending queries' pcs R(Kramer, ITH) already
        // have... none; give one a satisfier first.
        engine
            .submit(q("{R(Jerry, ITH)} R(Kramer, ITH) <- F(z, Paris)"))
            .unwrap();
        // Now R(Kramer, ITH) pcs of q1/q2 each have one satisfier; a new
        // provider of R(Kramer, ITH) would be a second one.
        let err = engine
            .submit(q("{} R(Kramer, ITH) <- F(w, Paris)"))
            .unwrap_err();
        assert_eq!(err, SubmitError::Unsafe);
    }

    #[test]
    fn staleness_fails_old_queries() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                staleness: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        let h = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let expired = engine.expire_stale();
        assert_eq!(expired, 1);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Stale)
        );
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn no_solution_reject_policy() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
            .unwrap();
        assert_eq!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Rejected(RejectReason::NoSolution))
        );
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(_)
        ));
    }

    #[test]
    fn no_solution_keep_pending_policy_retries_after_db_update() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                on_no_solution: NoSolutionPolicy::KeepPending,
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
            .unwrap();
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 0);
        assert_eq!(report.pending, 2);
        // An Athens flight appears.
        engine
            .db()
            .write()
            .insert("F", vec![Value::int(200), Value::str("Athens")])
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 2);
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn parallel_flush_matches_sequential() {
        let mk = |threads: usize| {
            let mut engine = CoordinationEngine::new(
                flight_db(),
                EngineConfig {
                    mode: EngineMode::SetAtATime { batch_size: 0 },
                    flush_threads: threads,
                    ..Default::default()
                },
            );
            for i in 0..20 {
                let a = format!("U{i}a");
                let b = format!("U{i}b");
                engine
                    .submit(q(&format!("{{R({b}, ITH)}} R({a}, ITH) <- F(x{i}, Paris)")))
                    .unwrap();
                engine
                    .submit(q(&format!("{{R({a}, ITH)}} R({b}, ITH) <- F(y{i}, Paris)")))
                    .unwrap();
            }
            engine.flush()
        };
        let seq = mk(1);
        let par = mk(4);
        assert_eq!(seq.answered, par.answered);
        assert_eq!(seq.answered, 40);
        assert_eq!(seq.components, par.components);
    }

    #[test]
    fn incremental_partition_isolation() {
        // Submitting a new pair must not re-trigger work on unrelated
        // pending queries (checked indirectly: unrelated pending query
        // remains pending and unanswered).
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let lonely = engine
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(engine.pending_count(), 1);
        assert!(lonely.outcome.try_recv().is_err());
    }

    #[test]
    fn invalid_query_rejected_at_submit() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let err = engine
            .submit(EntangledQuery::new(vec![], vec![], vec![]))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)));
    }

    #[test]
    fn slots_are_reused_after_retirement() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        for _ in 0..5 {
            let h1 = engine
                .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                .unwrap();
            let _h2 = engine
                .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
                .unwrap();
            assert!(matches!(
                h1.outcome.try_recv().unwrap(),
                QueryOutcome::Answered(_)
            ));
        }
        // Ten queries processed, but only two slots ever allocated.
        assert!(engine.slots.len() <= 4, "slots: {}", engine.slots.len());
    }

    #[test]
    fn eager_pairing_kicks_in_for_oversized_partitions() {
        // Partition limit 1 forces the eager-pair path on every arrival.
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                incremental_partition_limit: 1,
                admission_safety_check: false,
                ..Default::default()
            },
        );
        engine
            .db()
            .write()
            .create_table("Buddy", &["a", "b"])
            .unwrap();
        for (a, b) in [("Jerry", "Kramer"), ("Kramer", "Jerry")] {
            engine
                .db()
                .write()
                .insert("Buddy", vec![Value::str(a), Value::str(b)])
                .unwrap();
        }
        let h1 = engine
            .submit(q("{R(x, ITH)} R(Jerry, ITH) <- Buddy(Jerry, x)"))
            .unwrap();
        // Jerry's pc R(x, ITH) unifies Kramer's head and vice versa; the
        // pair closes and evaluates eagerly.
        let h2 = engine
            .submit(q("{R(y, ITH)} R(Kramer, ITH) <- Buddy(Kramer, y)"))
            .unwrap();
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn eager_pairing_rejects_both_on_database_miss() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                incremental_partition_limit: 1,
                admission_safety_check: false,
                ..Default::default()
            },
        );
        engine
            .db()
            .write()
            .create_table("Buddy", &["a", "b"])
            .unwrap();
        // No Buddy rows: the pair closes syntactically but the combined
        // query finds no tuples.
        let h1 = engine
            .submit(q("{R(x, ITH)} R(Jerry, ITH) <- Buddy(Jerry, x)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(y, ITH)} R(Kramer, ITH) <- Buddy(Kramer, y)"))
            .unwrap();
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(_)
        ));
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(_)
        ));
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn flush_with_no_changes_evaluates_zero_components() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        // Two queries that never coordinate (different destinations).
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        let first = engine.flush();
        assert_eq!(first.components, 2);
        assert_eq!(first.pending, 2);
        // Nothing changed: the dirty set is empty, both resident
        // components are skipped, and no matching work happens.
        let second = engine.flush();
        assert_eq!(second.components, 0);
        assert_eq!(second.skipped_clean, 2);
        assert_eq!(second.stats.mgu_calls, 0);
        assert_eq!(second.pending, 2);
        // A new submission dirties exactly the component it joins.
        engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let third = engine.flush();
        assert_eq!(third.components, 1);
        assert_eq!(third.skipped_clean, 1);
        assert_eq!(third.answered, 2);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn db_write_re_dirties_kept_pending_components() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                on_no_solution: NoSolutionPolicy::KeepPending,
                ..Default::default()
            },
        );
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
            .unwrap();
        engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
            .unwrap();
        assert_eq!(engine.flush().components, 1);
        // Clean now; an unrelated flush skips it.
        assert_eq!(engine.flush().components, 0);
        // A database write invalidates every kept-pending component.
        engine
            .db()
            .write()
            .insert("F", vec![Value::int(900), Value::str("Athens")])
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.components, 1);
        assert_eq!(report.answered, 2);
    }

    #[test]
    fn cancel_fails_pending_query_and_cleans_state() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert!(engine.cancel(h.id));
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Cancelled)
        );
        assert_eq!(engine.pending_count(), 0);
        assert!(!engine.cancel(h.id), "already terminal");
        engine.check_invariants().unwrap();
        // The cancelled partner is gone: the arriving partner finds
        // nobody and stays pending.
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert!(h2.outcome.try_recv().is_err());
    }

    #[test]
    fn resident_state_shrinks_back_after_churn() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        for round in 0..10 {
            let a = format!("A{round}");
            let b = format!("B{round}");
            engine
                .submit(q(&format!("{{R({b}, x)}} R({a}, x) <- F(x, Paris)")))
                .unwrap();
            engine
                .submit(q(&format!("{{R({a}, y)}} R({b}, y) <- F(y, Paris)")))
                .unwrap();
            let report = engine.flush();
            assert_eq!(report.answered, 2);
            engine.check_invariants().unwrap();
        }
        assert_eq!(engine.resident_edge_count(), 0);
        assert_eq!(engine.resident_component_count(), 0);
        assert!(
            engine.slot_capacity() <= 4,
            "slots: {}",
            engine.slot_capacity()
        );
    }

    #[test]
    fn submit_batch_matches_sequential_submits() {
        // Same queries, one as a batch, one sequentially: identical
        // admission results and identical statuses after one flush —
        // with the safety check ON, so intra-batch safety accounting is
        // exercised (the proptests in the bench crate churn this).
        let texts: Vec<String> = (0..6)
            .flat_map(|i| {
                vec![
                    format!("{{R(B{i}, ITH)}} R(A{i}, ITH) <- F(x{i}, Paris)"),
                    format!("{{R(A{i}, ITH)}} R(B{i}, ITH) <- F(y{i}, Paris)"),
                ]
            })
            .chain([
                // Ambiguous arrivals: a second provider of R(A0, ITH)
                // and a pc unifying two admitted heads.
                "{R(A0, ITH)} R(B0, ITH) <- F(z, Paris)".to_owned(),
                "{R(p, ITH)} R(Solo, ITH) <- F(p, Paris)".to_owned(),
            ])
            .collect();
        let config = EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: true,
            flush_threads: 4,
            ..Default::default()
        };

        let mut seq = CoordinationEngine::new(flight_db(), config.clone());
        let seq_results: Vec<_> = texts.iter().map(|t| seq.submit(q(t))).collect();
        seq.flush();

        let mut bat = CoordinationEngine::new(flight_db(), config);
        let bat_results = bat.submit_batch(
            texts
                .iter()
                .map(|t| (q(t), SubmitOptions::default()))
                .collect(),
        );
        bat.flush();

        for (i, (s, b)) in seq_results.iter().zip(&bat_results).enumerate() {
            match (s, b) {
                (Ok(hs), Ok(hb)) => {
                    assert_eq!(hs.id, hb.id, "ids diverge at {i}");
                    assert_eq!(
                        seq.status(hs.id),
                        bat.status(hb.id),
                        "statuses diverge at {i}"
                    );
                }
                (Err(es), Err(eb)) => assert_eq!(es, eb, "errors diverge at {i}"),
                other => panic!("admission diverges at {i}: {other:?}"),
            }
        }
        bat.check_invariants().unwrap();
        seq.check_invariants().unwrap();
    }

    #[test]
    fn submit_batch_incremental_evaluates_once_at_the_end() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let results = engine.submit_batch(vec![
            (
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                SubmitOptions::default(),
            ),
            (
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
                SubmitOptions::default(),
            ),
            (
                EntangledQuery::new(vec![], vec![], vec![]),
                SubmitOptions::default(),
            ),
        ]);
        assert!(matches!(results[2], Err(SubmitError::Invalid(_))));
        for r in &results[..2] {
            let h = r.as_ref().unwrap();
            assert!(matches!(
                h.outcome.try_recv().unwrap(),
                QueryOutcome::Answered(_)
            ));
        }
        assert_eq!(engine.pending_count(), 0);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn per_query_deadline_expires_only_that_query() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let doomed = engine
            .submit_with(
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                SubmitOptions {
                    deadline: Some(Instant::now() + Duration::from_millis(1)),
                    ..Default::default()
                },
            )
            .unwrap();
        let patient = engine
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(engine.expire_stale(), 1);
        assert_eq!(
            doomed.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Stale)
        );
        assert!(patient.outcome.try_recv().is_err());
        assert_eq!(engine.pending_count(), 1);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn per_query_no_solution_policy_overrides_engine_default() {
        // Engine default rejects on no-solution; the pair opts into
        // KeepPending and survives the miss, coordinating after the
        // database gains an Athens flight.
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                on_no_solution: NoSolutionPolicy::Reject,
                ..Default::default()
            },
        );
        let opts = SubmitOptions {
            on_no_solution: Some(NoSolutionPolicy::KeepPending),
            ..Default::default()
        };
        let h1 = engine
            .submit_with(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"), opts)
            .unwrap();
        let _h2 = engine
            .submit_with(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"), opts)
            .unwrap();
        assert_eq!(engine.flush().pending, 2);
        assert!(h1.outcome.try_recv().is_err());
        engine
            .db()
            .write()
            .insert("F", vec![Value::int(200), Value::str("Athens")])
            .unwrap();
        assert_eq!(engine.flush().answered, 2);
    }

    #[test]
    fn outcome_log_records_every_terminal_transition() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        engine.set_outcome_log(true);
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let lonely = engine
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        engine.cancel(lonely.id);
        let log = engine.drain_outcome_log();
        assert_eq!(log.len(), 3);
        assert!(log
            .iter()
            .any(|(id, o)| *id == h1.id && matches!(o, QueryOutcome::Answered(_))));
        assert!(log
            .iter()
            .any(|(id, o)| *id == h2.id && matches!(o, QueryOutcome::Answered(_))));
        assert!(log
            .iter()
            .any(|(id, o)| *id == lonely.id
                && matches!(o, QueryOutcome::Failed(FailReason::Cancelled))));
        assert!(engine.drain_outcome_log().is_empty(), "drained");
    }

    #[test]
    fn safety_accessors_report_violations_and_sidelined() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                admission_safety_check: false,
                ..Default::default()
            },
        );
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Jerry, y)} R(Elaine, y) <- F(y, Rome)"))
            .unwrap();
        let ambiguous = engine
            .submit(q("{R(f, z)} R(Jerry, z) <- F(z, w), A(z, f)"))
            .unwrap();
        let violations = engine.safety_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].query, ambiguous.id);
        assert_eq!(violations[0].heads.len(), 2);
        assert_eq!(engine.safety_sidelined(), vec![ambiguous.id]);
    }

    #[test]
    fn intra_partitioned_flush_matches_sequential_evaluation() {
        // The same workload through three engines: plain sequential
        // (threshold disabled), partitioned single-threaded, and
        // partitioned multi-threaded. Answers must be identical tuple
        // for tuple — the partitioned merge reproduces the sequential
        // answer choice.
        let run = |threshold: usize, threads: usize| {
            let mut engine = CoordinationEngine::new(
                flight_db(),
                EngineConfig {
                    mode: EngineMode::SetAtATime { batch_size: 0 },
                    flush_threads: threads,
                    intra_component_threshold: threshold,
                    ..Default::default()
                },
            );
            let mut handles = Vec::new();
            // A six-member ring entangled through ground heads, each
            // with a private-variable body — decomposes into one unit
            // per member.
            for i in 0..6 {
                let me = format!("U{i}");
                let next = format!("U{}", (i + 1) % 6);
                handles.push(
                    engine
                        .submit(q(&format!(
                            "{{R({next}, ITH)}} R({me}, ITH) <- F(x{i}, Paris), A(x{i}, United)"
                        )))
                        .unwrap(),
                );
            }
            let report = engine.flush();
            engine.check_invariants().unwrap();
            let outcomes: Vec<QueryOutcome> = handles
                .iter()
                .map(|h| h.outcome.try_recv().unwrap())
                .collect();
            (report, outcomes)
        };
        let (seq_report, seq) = run(usize::MAX, 1);
        assert_eq!(seq_report.intra_components, 0);
        for (threshold, threads) in [(1, 1), (1, 4), (2, 8)] {
            let (report, outcomes) = run(threshold, threads);
            assert_eq!(report.answered, seq_report.answered);
            assert_eq!(report.intra_components, 1);
            assert!(report.intra_units >= 6, "units: {}", report.intra_units);
            assert_eq!(outcomes, seq, "threshold={threshold} threads={threads}");
        }
    }

    #[test]
    fn intra_partitioned_no_solution_respects_policies() {
        // A partitioned component with an unsatisfiable unit: all
        // members fail under Reject, stay under KeepPending — exactly
        // like the sequential path.
        for (policy, expect_pending) in [
            (NoSolutionPolicy::Reject, 0usize),
            (NoSolutionPolicy::KeepPending, 2usize),
        ] {
            let mut engine = CoordinationEngine::new(
                flight_db(),
                EngineConfig {
                    mode: EngineMode::SetAtATime { batch_size: 0 },
                    intra_component_threshold: 1,
                    flush_threads: 4,
                    on_no_solution: policy,
                    ..Default::default()
                },
            );
            engine
                .submit(q("{R(Kramer, ITH)} R(Jerry, ITH) <- F(x, Paris)"))
                .unwrap();
            engine
                .submit(q("{R(Jerry, ITH)} R(Kramer, ITH) <- F(y, Athens)"))
                .unwrap();
            let report = engine.flush();
            assert_eq!(report.answered, 0);
            assert_eq!(report.pending, expect_pending);
            assert_eq!(report.intra_components, 1);
        }
    }

    #[test]
    fn three_way_incremental() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Kramer, IAH)} R(Jerry, IAH) <- F(x, Paris)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Elaine, IAH)} R(Kramer, IAH) <- F(y, Paris)"))
            .unwrap();
        assert!(h1.outcome.try_recv().is_err());
        let h3 = engine
            .submit(q("{R(Jerry, IAH)} R(Elaine, IAH) <- F(z, Paris)"))
            .unwrap();
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
        assert!(matches!(
            h3.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }
}
