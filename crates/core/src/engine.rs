//! The D3C engine of §5.1: a long-running coordination service.
//!
//! The engine accepts entangled queries asynchronously, keeps them in a
//! pending pool, and answers them in one of two modes:
//!
//! * **Incremental** — on every submission, the affected partition is
//!   re-matched from its current state and any component that has become
//!   answerable is evaluated immediately;
//! * **Set-at-a-time** — submissions accumulate; [`CoordinationEngine::flush`]
//!   (called manually, or automatically every `batch_size` submissions)
//!   matches the whole pool, processing independent components in
//!   parallel (§4.1.2).
//!
//! Queries that cannot currently be matched stay pending until they
//! succeed, fail, or exceed the configured staleness bound (§5.1: "when
//! a query becomes stale, it is removed from the list of pending queries
//! and its evaluation is considered to have failed").
//!
//! Answers are delivered through per-query handles (the middleware
//! layer's asynchronous callback abstraction).

use crate::combine::{CombinedQuery, QueryAnswer};
use crate::coordinate::RejectReason;
use crate::graph::MatchGraph;
use crate::index::{AtomIndex, AtomRef};
use crate::matching::{self, MatchStats};
use crate::ucs;
use eq_db::Database;
use eq_ir::{EntangledQuery, FastMap, FastSet, QueryId, ValidationError, VarGen};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Evaluation scheduling mode (§5.1, §5.3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Match and evaluate after every submission.
    Incremental,
    /// Accumulate and evaluate on [`CoordinationEngine::flush`]; if
    /// `batch_size > 0`, flush automatically every `batch_size`
    /// submissions.
    SetAtATime {
        /// Auto-flush threshold; 0 disables auto-flush.
        batch_size: usize,
    },
}

/// What to do with a matched component whose combined query has no
/// solution in the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NoSolutionPolicy {
    /// Fail the component's queries (§4.2's rejection semantics).
    #[default]
    Reject,
    /// Keep them pending; they are retried when their component changes
    /// or the database is updated (via an explicit flush).
    KeepPending,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Scheduling mode.
    pub mode: EngineMode,
    /// Pending queries older than this are failed as stale. `None`
    /// disables staleness.
    pub staleness: Option<Duration>,
    /// Admission-time safety enforcement: a new query is rejected when
    /// it would make the pending set unsafe (one of its postconditions
    /// unifies with ≥ 2 pending heads, or one of its heads gives a
    /// pending postcondition a second satisfier). This is the check
    /// stress-tested in Figure 9. Disable to admit everything and rely
    /// on §3.1.1 removal at matching time.
    pub admission_safety_check: bool,
    /// See [`NoSolutionPolicy`].
    pub on_no_solution: NoSolutionPolicy,
    /// Evaluate components violating UCS instead of failing them.
    pub evaluate_non_ucs: bool,
    /// Number of worker threads for per-component parallelism in
    /// set-at-a-time flushes (§4.1.2). 1 = sequential; 0 = one worker
    /// per available hardware thread.
    pub flush_threads: usize,
    /// Incremental mode only: partitions up to this size are fully
    /// re-matched on every arrival (the paper's incremental matching,
    /// §5.1). Larger partitions — hub destinations where a wildcard
    /// postcondition unifies with many pending heads — fall back to
    /// *eager pairing*: the new query is tried against its direct
    /// unification partners one at a time, first syntactic closure wins
    /// (the paper's nondeterministic choice), and the pair is evaluated
    /// immediately. Set to `usize::MAX` to always re-match the whole
    /// partition (reproduces the giant-cluster blow-up of Figure 8 that
    /// motivates set-at-a-time mode).
    pub incremental_partition_limit: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: EngineMode::Incremental,
            staleness: None,
            admission_safety_check: true,
            on_no_solution: NoSolutionPolicy::default(),
            evaluate_non_ucs: false,
            flush_threads: 1,
            incremental_partition_limit: 64,
        }
    }
}

/// Status of a submitted query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// Waiting for coordination partners.
    Pending,
    /// Answered; the answer was delivered on the handle.
    Answered,
    /// Failed with a reason.
    Failed(FailReason),
}

/// Why a pending query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// Rejected/removed per a [`RejectReason`].
    Rejected(RejectReason),
    /// Exceeded the staleness bound without coordinating.
    Stale,
}

/// Terminal outcome delivered on a query's handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The coordinated answer.
    Answered(QueryAnswer),
    /// Failure and its reason.
    Failed(FailReason),
}

/// Handle returned by [`CoordinationEngine::submit`]: poll or block on
/// the receiver for the terminal outcome.
pub struct QueryHandle {
    /// The id assigned to the query.
    pub id: QueryId,
    /// Receives exactly one terminal [`QueryOutcome`].
    pub outcome: Receiver<QueryOutcome>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("id", &self.id).finish()
    }
}

/// Why a submission was refused outright.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Structurally invalid.
    Invalid(ValidationError),
    /// The admission safety check failed (§3.1.1 / Figure 9).
    Unsafe,
}

/// Summary of one flush (or one incremental trigger).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Components examined.
    pub components: usize,
    /// Queries answered.
    pub answered: usize,
    /// Queries failed (rejections + no-solution under the reject
    /// policy).
    pub failed: usize,
    /// Queries left pending.
    pub pending: usize,
    /// Aggregated matching statistics.
    pub stats: MatchStats,
}

struct PendingQuery {
    query: EntangledQuery,
    sender: SyncSender<QueryOutcome>,
    /// Number of live pending heads unifying each postcondition
    /// (admission-time bookkeeping for the safety check).
    pc_satisfiers: Vec<u32>,
}

/// The coordination engine.
///
/// Not `Sync`: submissions mutate internal indexes, so drive it from one
/// thread (flushes parallelize internally). The database is shared
/// behind a read-write lock; evaluation takes read guards, so an
/// application may update tables between rounds.
pub struct CoordinationEngine {
    config: EngineConfig,
    db: Arc<RwLock<Database>>,
    gen: VarGen,
    next_id: u64,
    /// Slot-addressed pending queries (slots are reused; `AtomRef.query`
    /// is a slot).
    slots: Vec<Option<PendingQuery>>,
    free_slots: Vec<u32>,
    by_id: FastMap<QueryId, u32>,
    statuses: FastMap<QueryId, QueryStatus>,
    head_index: AtomIndex,
    pc_index: AtomIndex,
    /// Undirected adjacency (slot → unifiable partner slots), kept
    /// incrementally; used to find the affected partition.
    adj: FastMap<u32, FastSet<u32>>,
    /// Submission order for staleness sweeps.
    age_queue: VecDeque<(Instant, QueryId)>,
    submissions_since_flush: usize,
}

impl CoordinationEngine {
    /// Creates an engine over a database.
    pub fn new(db: Database, config: EngineConfig) -> Self {
        CoordinationEngine {
            config,
            db: Arc::new(RwLock::new(db)),
            gen: VarGen::new(),
            next_id: 1,
            slots: Vec::new(),
            free_slots: Vec::new(),
            by_id: FastMap::default(),
            statuses: FastMap::default(),
            head_index: AtomIndex::new(),
            pc_index: AtomIndex::new(),
            adj: FastMap::default(),
            age_queue: VecDeque::new(),
            submissions_since_flush: 0,
        }
    }

    /// Shared handle to the engine's database (write to it between
    /// rounds to load data).
    pub fn db(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.by_id.len()
    }

    /// The status of a query, if known.
    pub fn status(&self, id: QueryId) -> Option<&QueryStatus> {
        self.statuses.get(&id)
    }

    /// Submits a query. Returns a handle delivering the terminal
    /// outcome; in incremental mode coordination is attempted before
    /// this returns, so the handle may already hold the outcome.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<QueryHandle, SubmitError> {
        query.validate().map_err(SubmitError::Invalid)?;
        self.expire_stale();

        let id = QueryId(self.next_id);
        let renamed = query.rename_apart(&self.gen).with_id(id);

        if self.config.admission_safety_check {
            self.check_admission_safety(&renamed)?;
        }
        self.next_id += 1;

        let (tx, rx) = sync_channel(1);
        let slot = self.allocate_slot();
        let now = Instant::now();

        // Index atoms and discover partners.
        let mut partners: FastSet<u32> = FastSet::default();
        let mut pc_satisfiers = vec![0u32; renamed.pc_count()];
        for (ai, atom) in renamed.head.iter().enumerate() {
            let aref = AtomRef {
                query: slot,
                atom: ai as u32,
            };
            // Existing postconditions this head satisfies.
            for cand in self.pc_index.candidates(atom) {
                if cand.query == slot {
                    continue;
                }
                let pc = self.pc_index.get(cand).expect("indexed");
                if eq_unify::mgu_atoms(atom, pc).is_some() {
                    partners.insert(cand.query);
                    if let Some(p) = self.slots[cand.query as usize].as_mut() {
                        p.pc_satisfiers[cand.atom as usize] += 1;
                    }
                }
            }
            self.head_index.insert(aref, atom);
        }
        for (ai, atom) in renamed.postconditions.iter().enumerate() {
            let aref = AtomRef {
                query: slot,
                atom: ai as u32,
            };
            for cand in self.head_index.candidates(atom) {
                if cand.query == slot {
                    continue;
                }
                let head = self.head_index.get(cand).expect("indexed");
                if eq_unify::mgu_atoms(head, atom).is_some() {
                    partners.insert(cand.query);
                    pc_satisfiers[ai] += 1;
                }
            }
            self.pc_index.insert(aref, atom);
        }
        for &p in &partners {
            self.adj.entry(slot).or_default().insert(p);
            self.adj.entry(p).or_default().insert(slot);
        }

        self.slots[slot as usize] = Some(PendingQuery {
            query: renamed,
            sender: tx,
            pc_satisfiers,
        });
        self.by_id.insert(id, slot);
        self.statuses.insert(id, QueryStatus::Pending);
        self.age_queue.push_back((now, id));

        match self.config.mode {
            EngineMode::Incremental => {
                let limit = self.config.incremental_partition_limit;
                match self.bounded_partition(slot, limit) {
                    Some(members) => {
                        self.process_slots(&members);
                    }
                    None => {
                        let mut ordered: Vec<u32> = partners.into_iter().collect();
                        ordered.sort_unstable();
                        self.eager_pair(slot, &ordered);
                    }
                }
            }
            EngineMode::SetAtATime { batch_size } => {
                self.submissions_since_flush += 1;
                if batch_size > 0 && self.submissions_since_flush >= batch_size {
                    self.flush();
                }
            }
        }

        Ok(QueryHandle { id, outcome: rx })
    }

    /// Admission safety check (Figure 9): reject the query if admitting
    /// it would give any postcondition (its own or a pending query's)
    /// two or more unifying heads.
    fn check_admission_safety(&self, q: &EntangledQuery) -> Result<(), SubmitError> {
        // Each of q's postconditions must unify with at most one pending
        // head.
        for pc in &q.postconditions {
            let mut hits = 0u32;
            for cand in self.head_index.candidates(pc) {
                let head = self.head_index.get(cand).expect("indexed");
                if eq_unify::mgu_atoms(head, pc).is_some() {
                    hits += 1;
                    if hits >= 2 {
                        return Err(SubmitError::Unsafe);
                    }
                }
            }
        }
        // Each of q's heads must not give a pending postcondition a
        // second satisfier.
        for head in &q.head {
            for cand in self.pc_index.candidates(head) {
                let pc = self.pc_index.get(cand).expect("indexed");
                if eq_unify::mgu_atoms(head, pc).is_none() {
                    continue;
                }
                let owner = self.slots[cand.query as usize]
                    .as_ref()
                    .expect("live slot");
                if owner.pc_satisfiers[cand.atom as usize] >= 1 {
                    return Err(SubmitError::Unsafe);
                }
            }
        }
        // Within-query ambiguity: two of q's own heads unifying one of
        // its postconditions is impossible to form (self-edges are
        // excluded), so nothing to check.
        Ok(())
    }

    /// Fails and removes every pending query older than the staleness
    /// bound.
    pub fn expire_stale(&mut self) -> usize {
        let Some(bound) = self.config.staleness else {
            return 0;
        };
        let now = Instant::now();
        let mut expired = 0;
        while let Some(&(t, id)) = self.age_queue.front() {
            if now.duration_since(t) < bound {
                break;
            }
            self.age_queue.pop_front();
            if let Some(&slot) = self.by_id.get(&id) {
                self.retire(slot, Err(FailReason::Stale));
                expired += 1;
            }
        }
        expired
    }

    /// Set-at-a-time evaluation over the whole pending pool: builds the
    /// unifiability graph, partitions it, and processes every component
    /// on the sharded worker pool (`flush_threads` workers; `0` = one
    /// per hardware thread; `1` = sequential). Unmatched queries remain
    /// pending.
    pub fn flush(&mut self) -> BatchReport {
        self.submissions_since_flush = 0;
        self.expire_stale();

        let live: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&s| self.slots[s as usize].is_some())
            .collect();
        self.process_slots(&live)
    }

    /// BFS over the incremental adjacency from `slot`, stopping early
    /// once the partition exceeds `limit`. Returns the member list, or
    /// `None` if the partition is larger than `limit`.
    fn bounded_partition(&self, slot: u32, limit: usize) -> Option<Vec<u32>> {
        let mut members = vec![slot];
        let mut seen: FastSet<u32> = FastSet::default();
        seen.insert(slot);
        let mut i = 0;
        while i < members.len() {
            let cur = members[i];
            i += 1;
            if let Some(next) = self.adj.get(&cur) {
                for &n in next {
                    if self.slots[n as usize].is_some() && seen.insert(n) {
                        members.push(n);
                        if members.len() > limit {
                            return None;
                        }
                    }
                }
            }
        }
        Some(members)
    }

    /// Eager pairing for oversized partitions: try the new query against
    /// each direct unification partner; the first pair that closes
    /// syntactically is evaluated immediately (the paper's
    /// nondeterministic choice among coordination options). On a database
    /// miss the pair is failed or kept per [`NoSolutionPolicy`].
    fn eager_pair(&mut self, slot: u32, partners: &[u32]) {
        let query = self.slots[slot as usize]
            .as_ref()
            .expect("live slot")
            .query
            .clone();
        // A query without postconditions coordinates alone.
        if query.postconditions.is_empty() {
            self.process_slots(&[slot]);
            return;
        }
        for &p in partners {
            if self.slots[p as usize].is_none() {
                continue;
            }
            let partner = self.slots[p as usize]
                .as_ref()
                .expect("live slot")
                .query
                .clone();
            let graph = MatchGraph::build(vec![query.clone(), partner]);
            let m = matching::match_component(&graph, &[0, 1]);
            if m.survivors.len() != 2 {
                continue; // the pair does not close; try the next partner
            }
            let Some(global) = m.global else {
                continue;
            };
            let combined = CombinedQuery::build(&graph, &m.survivors, &global);
            let solutions = {
                let db = self.db.read();
                combined.evaluate(&db, 1)
            };
            let locals = [slot, p];
            match solutions {
                Ok(sols) => match sols.into_iter().next() {
                    Some(answers) => {
                        for (&local, answer) in m.survivors.iter().zip(answers) {
                            self.retire(locals[local as usize], Ok(answer));
                        }
                        return;
                    }
                    None => {
                        if self.config.on_no_solution == NoSolutionPolicy::Reject {
                            for &l in &locals {
                                self.retire(
                                    l,
                                    Err(FailReason::Rejected(RejectReason::NoSolution)),
                                );
                            }
                            return;
                        }
                        // KeepPending: try the next partner.
                    }
                },
                Err(_) => {
                    for &l in &locals {
                        self.retire(l, Err(FailReason::Rejected(RejectReason::NoSolution)));
                    }
                    return;
                }
            }
        }
    }

    /// Matches and evaluates the given live slots. Builds a fresh
    /// `MatchGraph` over just those queries — partitions are small in
    /// realistic workloads (§5.3.4), which is what makes this cheap; for
    /// giant clusters, set-at-a-time mode amortizes the cost.
    fn process_slots(&mut self, slots: &[u32]) -> BatchReport {
        let mut report = BatchReport::default();
        if slots.is_empty() {
            report.pending = self.pending_count();
            return report;
        }
        let queries: Vec<EntangledQuery> = slots
            .iter()
            .map(|&s| self.slots[s as usize].as_ref().expect("live slot").query.clone())
            .collect();
        let graph = MatchGraph::build(queries);

        // Safety enforcement (§3.1.1) at matching time: ambiguous
        // queries sit out this round but stay pending — their ambiguity
        // may resolve when partners retire. (The admission-time check,
        // when enabled, makes this a no-op.)
        let mut live = vec![true; graph.len()];
        crate::safety::enforce(&graph, &mut live);
        let components = graph.components_live(&live);
        report.components = components.len();

        // Phase 1 (parallelizable, read-only): match + evaluate each
        // component on the sharded worker pool.
        let db = self.db.read();
        let threads = self
            .config
            .effective_flush_threads()
            .min(components.len().max(1));
        let outcomes: Vec<ComponentOutcome> = if threads > 1 {
            sharded_process(&graph, &components, &db, &self.config, threads)
        } else {
            components
                .iter()
                .map(|c| process_component(&graph, c, &db, &self.config))
                .collect()
        };
        drop(db);

        // Phase 2 (sequential): deliver outcomes and retire queries.
        for outcome in outcomes {
            report.stats.dequeues += outcome.stats.dequeues;
            report.stats.mgu_calls += outcome.stats.mgu_calls;
            report.stats.cleanups += outcome.stats.cleanups;
            for (local, answer) in outcome.answered {
                let slot = slots[local as usize];
                self.retire(slot, Ok(answer));
                report.answered += 1;
            }
            for (local, reason) in outcome.failed {
                let slot = slots[local as usize];
                self.retire(slot, Err(FailReason::Rejected(reason)));
                report.failed += 1;
            }
            // Unmatched stay pending.
        }
        report.pending = self.pending_count();
        report
    }

    fn allocate_slot(&mut self) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        let s = self.slots.len() as u32;
        self.slots.push(None);
        s
    }

    /// Removes a query from all engine state and delivers its outcome.
    fn retire(&mut self, slot: u32, outcome: Result<QueryAnswer, FailReason>) {
        let Some(pending) = self.slots[slot as usize].take() else {
            return;
        };
        let id = pending.query.id;
        self.by_id.remove(&id);
        for ai in 0..pending.query.head.len() as u32 {
            // A head leaving the pool frees up partner postconditions.
            let head = &pending.query.head[ai as usize];
            for cand in self.pc_index.candidates(head) {
                if cand.query == slot {
                    continue;
                }
                let pc = self.pc_index.get(cand).expect("indexed");
                if eq_unify::mgu_atoms(head, pc).is_some() {
                    if let Some(p) = self.slots[cand.query as usize].as_mut() {
                        let c = &mut p.pc_satisfiers[cand.atom as usize];
                        *c = c.saturating_sub(1);
                    }
                }
            }
            self.head_index.remove(AtomRef {
                query: slot,
                atom: ai,
            });
        }
        for ai in 0..pending.query.postconditions.len() as u32 {
            self.pc_index.remove(AtomRef {
                query: slot,
                atom: ai,
            });
        }
        if let Some(neighbors) = self.adj.remove(&slot) {
            for n in neighbors {
                if let Some(back) = self.adj.get_mut(&n) {
                    back.remove(&slot);
                }
            }
        }
        self.free_slots.push(slot);

        let (status, message) = match outcome {
            Ok(answer) => (QueryStatus::Answered, QueryOutcome::Answered(answer)),
            Err(reason) => (
                QueryStatus::Failed(reason.clone()),
                QueryOutcome::Failed(reason),
            ),
        };
        self.statuses.insert(id, status);
        let _ = pending.sender.try_send(message);
    }
}

impl EngineConfig {
    /// Resolves `flush_threads`: 0 means one worker per available
    /// hardware thread.
    pub fn effective_flush_threads(&self) -> usize {
        match self.flush_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Evaluates independent match-graph components (§4.1.2) on a sharded
/// `std::thread` worker pool. Workers claim components largest-first
/// from a shared atomic queue — dynamic load balancing matters because
/// component sizes are heavy-tailed (a giant cluster next to thousands
/// of pairs under the Figure 8 workloads would starve a static
/// chunking). Results are merged back in component order, so outcome
/// delivery is byte-for-byte identical to the sequential path.
fn sharded_process(
    graph: &MatchGraph,
    components: &[Vec<u32>],
    db: &Database,
    config: &EngineConfig,
    threads: usize,
) -> Vec<ComponentOutcome> {
    // Claim order: largest components first.
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(components[i].len()));
    let next = AtomicUsize::new(0);

    let mut merged: Vec<Option<ComponentOutcome>> = Vec::with_capacity(components.len());
    merged.resize_with(components.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let order = &order;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = order.get(k) else {
                            break;
                        };
                        produced
                            .push((idx, process_component(graph, &components[idx], db, config)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (idx, outcome) in h.join().expect("flush worker panicked") {
                merged[idx] = Some(outcome);
            }
        }
    });
    merged
        .into_iter()
        .map(|o| o.expect("every claimed component produced an outcome"))
        .collect()
}

/// Result of processing one component: outcomes keyed by *local* slot
/// (index into the `slots` array passed to `process_slots`).
struct ComponentOutcome {
    answered: Vec<(u32, QueryAnswer)>,
    failed: Vec<(u32, RejectReason)>,
    stats: MatchStats,
}

fn process_component(
    graph: &MatchGraph,
    members: &[u32],
    db: &Database,
    config: &EngineConfig,
) -> ComponentOutcome {
    let mut out = ComponentOutcome {
        answered: Vec::new(),
        failed: Vec::new(),
        stats: MatchStats::default(),
    };

    let m = matching::match_component(graph, members);
    out.stats = m.stats;
    if m.survivors.is_empty() {
        return out; // everyone stays pending
    }
    let Some(global) = m.global else {
        // Inconsistent component: reject survivors (removed stay
        // pending — their partners may still arrive).
        for &s in &m.survivors {
            out.failed.push((s, RejectReason::Unmatched));
        }
        return out;
    };

    // UCS on the survivor subgraph.
    if !config.evaluate_non_ucs {
        let mut alive = vec![false; graph.len()];
        for &s in &m.survivors {
            alive[s as usize] = true;
        }
        if !ucs::violations(graph, &alive).is_empty() {
            for &s in &m.survivors {
                out.failed.push((s, RejectReason::NonUcs));
            }
            return out;
        }
    }

    let combined = CombinedQuery::build(graph, &m.survivors, &global);
    match combined.evaluate(db, 1) {
        Ok(solutions) => match solutions.into_iter().next() {
            Some(answers) => {
                // `answers` is parallel to `m.survivors`.
                for (&slot, answer) in m.survivors.iter().zip(answers) {
                    out.answered.push((slot, answer));
                }
            }
            None => {
                if config.on_no_solution == NoSolutionPolicy::Reject {
                    for &s in &m.survivors {
                        out.failed.push((s, RejectReason::NoSolution));
                    }
                }
                // KeepPending: nothing to do.
            }
        },
        Err(e) => {
            // Unknown relation / arity error in some body: fail those
            // queries rather than poisoning the component forever.
            let _ = e;
            for &s in &m.survivors {
                out.failed.push((s, RejectReason::NoSolution));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [(122, "Paris"), (123, "Paris"), (134, "Paris"), (136, "Rome")] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn incremental_pair_coordinates_on_second_arrival() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        assert_eq!(engine.status(h1.id), Some(&QueryStatus::Pending));
        assert!(h1.outcome.try_recv().is_err());

        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)"))
            .unwrap();
        // Both answered synchronously inside the second submit.
        let o1 = h1.outcome.try_recv().unwrap();
        let o2 = h2.outcome.try_recv().unwrap();
        let (QueryOutcome::Answered(a1), QueryOutcome::Answered(a2)) = (o1, o2) else {
            panic!("expected both answered");
        };
        assert_eq!(a1.tuples[0][1], a2.tuples[0][1]);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.status(h1.id), Some(&QueryStatus::Answered));
    }

    #[test]
    fn set_at_a_time_waits_for_flush() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(engine.pending_count(), 2);
        assert!(h1.outcome.try_recv().is_err());
        let report = engine.flush();
        assert_eq!(report.answered, 2);
        assert_eq!(report.pending, 0);
        assert!(matches!(
            h2.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn auto_flush_on_batch_size() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 2 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        // Second submission hit the batch size and flushed.
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn unmatched_queries_stay_pending_across_flushes() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 0);
        assert_eq!(report.pending, 1);
        assert!(h.outcome.try_recv().is_err());
        // Partner arrives; next flush coordinates.
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 2);
    }

    #[test]
    fn admission_safety_check_rejects_second_satisfier() {
        // Two pending heads R(*, ITH); a new query whose pc unifies both
        // is rejected (Figure 9 semantics).
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        engine
            .submit(q("{R(Kramer, ITH)} R(Jerry, ITH) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Kramer, ITH)} R(Elaine, ITH) <- F(y, Paris)"))
            .unwrap();
        let err = engine
            .submit(q("{R(p, ITH)} R(Kramer, ITH) <- F(p, Paris)"))
            .unwrap_err();
        assert_eq!(err, SubmitError::Unsafe);

        // A head that would give a pending pc its second satisfier is
        // also rejected: both pending queries' pcs R(Kramer, ITH) already
        // have... none; give one a satisfier first.
        engine
            .submit(q("{R(Jerry, ITH)} R(Kramer, ITH) <- F(z, Paris)"))
            .unwrap();
        // Now R(Kramer, ITH) pcs of q1/q2 each have one satisfier; a new
        // provider of R(Kramer, ITH) would be a second one.
        let err = engine
            .submit(q("{} R(Kramer, ITH) <- F(w, Paris)"))
            .unwrap_err();
        assert_eq!(err, SubmitError::Unsafe);
    }

    #[test]
    fn staleness_fails_old_queries() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                staleness: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        let h = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let expired = engine.expire_stale();
        assert_eq!(expired, 1);
        assert_eq!(
            h.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Stale)
        );
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn no_solution_reject_policy() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
            .unwrap();
        assert_eq!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Failed(FailReason::Rejected(RejectReason::NoSolution))
        );
        assert!(matches!(h2.outcome.try_recv().unwrap(), QueryOutcome::Failed(_)));
    }

    #[test]
    fn no_solution_keep_pending_policy_retries_after_db_update() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                on_no_solution: NoSolutionPolicy::KeepPending,
                mode: EngineMode::SetAtATime { batch_size: 0 },
                ..Default::default()
            },
        );
        let h1 = engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"))
            .unwrap();
        let _h2 = engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"))
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 0);
        assert_eq!(report.pending, 2);
        // An Athens flight appears.
        engine
            .db()
            .write()
            .insert("F", vec![Value::int(200), Value::str("Athens")])
            .unwrap();
        let report = engine.flush();
        assert_eq!(report.answered, 2);
        assert!(matches!(
            h1.outcome.try_recv().unwrap(),
            QueryOutcome::Answered(_)
        ));
    }

    #[test]
    fn parallel_flush_matches_sequential() {
        let mk = |threads: usize| {
            let mut engine = CoordinationEngine::new(
                flight_db(),
                EngineConfig {
                    mode: EngineMode::SetAtATime { batch_size: 0 },
                    flush_threads: threads,
                    ..Default::default()
                },
            );
            for i in 0..20 {
                let a = format!("U{i}a");
                let b = format!("U{i}b");
                engine
                    .submit(q(&format!("{{R({b}, ITH)}} R({a}, ITH) <- F(x{i}, Paris)")))
                    .unwrap();
                engine
                    .submit(q(&format!("{{R({a}, ITH)}} R({b}, ITH) <- F(y{i}, Paris)")))
                    .unwrap();
            }
            engine.flush()
        };
        let seq = mk(1);
        let par = mk(4);
        assert_eq!(seq.answered, par.answered);
        assert_eq!(seq.answered, 40);
        assert_eq!(seq.components, par.components);
    }

    #[test]
    fn incremental_partition_isolation() {
        // Submitting a new pair must not re-trigger work on unrelated
        // pending queries (checked indirectly: unrelated pending query
        // remains pending and unanswered).
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let lonely = engine
            .submit(q("{R(Newman, z)} R(Frank, z) <- F(z, Rome)"))
            .unwrap();
        engine
            .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
            .unwrap();
        engine
            .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
            .unwrap();
        assert_eq!(engine.pending_count(), 1);
        assert!(lonely.outcome.try_recv().is_err());
    }

    #[test]
    fn invalid_query_rejected_at_submit() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let err = engine
            .submit(EntangledQuery::new(vec![], vec![], vec![]))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)));
    }

    #[test]
    fn slots_are_reused_after_retirement() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        for _ in 0..5 {
            let h1 = engine
                .submit(q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"))
                .unwrap();
            let _h2 = engine
                .submit(q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"))
                .unwrap();
            assert!(matches!(
                h1.outcome.try_recv().unwrap(),
                QueryOutcome::Answered(_)
            ));
        }
        // Ten queries processed, but only two slots ever allocated.
        assert!(engine.slots.len() <= 4, "slots: {}", engine.slots.len());
    }

    #[test]
    fn eager_pairing_kicks_in_for_oversized_partitions() {
        // Partition limit 1 forces the eager-pair path on every arrival.
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                incremental_partition_limit: 1,
                admission_safety_check: false,
                ..Default::default()
            },
        );
        engine
            .db()
            .write()
            .create_table("Buddy", &["a", "b"])
            .unwrap();
        for (a, b) in [("Jerry", "Kramer"), ("Kramer", "Jerry")] {
            engine
                .db()
                .write()
                .insert("Buddy", vec![Value::str(a), Value::str(b)])
                .unwrap();
        }
        let h1 = engine
            .submit(q("{R(x, ITH)} R(Jerry, ITH) <- Buddy(Jerry, x)"))
            .unwrap();
        // Jerry's pc R(x, ITH) unifies Kramer's head and vice versa; the
        // pair closes and evaluates eagerly.
        let h2 = engine
            .submit(q("{R(y, ITH)} R(Kramer, ITH) <- Buddy(Kramer, y)"))
            .unwrap();
        assert!(matches!(h1.outcome.try_recv().unwrap(), QueryOutcome::Answered(_)));
        assert!(matches!(h2.outcome.try_recv().unwrap(), QueryOutcome::Answered(_)));
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn eager_pairing_rejects_both_on_database_miss() {
        let mut engine = CoordinationEngine::new(
            flight_db(),
            EngineConfig {
                incremental_partition_limit: 1,
                admission_safety_check: false,
                ..Default::default()
            },
        );
        engine
            .db()
            .write()
            .create_table("Buddy", &["a", "b"])
            .unwrap();
        // No Buddy rows: the pair closes syntactically but the combined
        // query finds no tuples.
        let h1 = engine
            .submit(q("{R(x, ITH)} R(Jerry, ITH) <- Buddy(Jerry, x)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(y, ITH)} R(Kramer, ITH) <- Buddy(Kramer, y)"))
            .unwrap();
        assert!(matches!(h1.outcome.try_recv().unwrap(), QueryOutcome::Failed(_)));
        assert!(matches!(h2.outcome.try_recv().unwrap(), QueryOutcome::Failed(_)));
        assert_eq!(engine.pending_count(), 0);
    }

    #[test]
    fn three_way_incremental() {
        let mut engine = CoordinationEngine::new(flight_db(), EngineConfig::default());
        let h1 = engine
            .submit(q("{R(Kramer, IAH)} R(Jerry, IAH) <- F(x, Paris)"))
            .unwrap();
        let h2 = engine
            .submit(q("{R(Elaine, IAH)} R(Kramer, IAH) <- F(y, Paris)"))
            .unwrap();
        assert!(h1.outcome.try_recv().is_err());
        let h3 = engine
            .submit(q("{R(Jerry, IAH)} R(Elaine, IAH) <- F(z, Paris)"))
            .unwrap();
        assert!(matches!(h1.outcome.try_recv().unwrap(), QueryOutcome::Answered(_)));
        assert!(matches!(h2.outcome.try_recv().unwrap(), QueryOutcome::Answered(_)));
        assert!(matches!(h3.outcome.try_recv().unwrap(), QueryOutcome::Answered(_)));
    }
}
