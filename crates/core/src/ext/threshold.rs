//! Aggregation-constrained coordination — a prototype of the §6
//! aggregation extension.
//!
//! The paper's motivating example: *"Jerry wants to attend a party on
//! Friday subject to the constraint that more than five of his friends
//! attend this same party"*, expressed with a `COUNT(*)` subquery over
//! the ANSWER relation.
//!
//! This module implements a restricted but sound semantics for such
//! queries, as a post-pass over a coordination round:
//!
//! 1. the ordinary queries of the round are coordinated first (§4);
//! 2. each [`ThresholdQuery`] then looks for a grounding of its body
//!    under which **at least `k`** of the round's produced answer atoms
//!    unify with its counted template.
//!
//! The restriction is one-directional dependence: a threshold query can
//! depend on the round's answers, but ordinary queries cannot depend on
//! the threshold query's head within the same round (full mutual
//! aggregation would reintroduce the CSP of Theorem 2.1). This matches
//! the paper's example, where the friends' attendance stands on its own
//! and only Jerry's query aggregates over it.

use crate::combine::QueryAnswer;
use eq_db::{Database, DbError};
use eq_ir::{Atom, EntangledQuery, FastSet, QueryId, Symbol, Term, Value, Var};

/// An entangled query whose postcondition is an aggregate threshold:
/// "my head holds if at least `threshold` answer tuples match
/// `counted`" (`COUNT(*) ... >= threshold` in the paper's SQL sketch).
#[derive(Clone, Debug)]
pub struct ThresholdQuery {
    /// Query identity.
    pub id: QueryId,
    /// Head atoms contributed on success (over ANSWER relations).
    pub head: Vec<Atom>,
    /// The counted template: answer atoms unifying with it (under the
    /// chosen body valuation) are counted. Distinct tuples count once.
    pub counted: Atom,
    /// Minimum number of distinct matching answer tuples.
    pub threshold: usize,
    /// Body over database relations, binding the variables of `head`
    /// and `counted`.
    pub body: Vec<Atom>,
}

/// The outcome for one threshold query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThresholdOutcome {
    /// A grounding satisfied the threshold; the answer is attached.
    Satisfied(QueryAnswer),
    /// No grounding of the body reached the threshold; the best count
    /// seen is reported for diagnostics.
    NotSatisfied {
        /// Highest number of matching answer atoms over all groundings.
        best_count: usize,
    },
}

impl ThresholdQuery {
    /// Builds a threshold query.
    pub fn new(
        id: QueryId,
        head: Vec<Atom>,
        counted: Atom,
        threshold: usize,
        body: Vec<Atom>,
    ) -> Self {
        ThresholdQuery {
            id,
            head,
            counted,
            threshold,
            body,
        }
    }

    /// Evaluates the threshold query against the answers of a finished
    /// coordination round.
    ///
    /// For every valuation of the body (in database order) the counted
    /// template is instantiated and matched against the round's answer
    /// atoms; the first valuation reaching the threshold wins —
    /// mirroring the `CHOOSE 1` semantics of ordinary entangled queries.
    pub fn evaluate(
        &self,
        db: &Database,
        round_answers: &[QueryAnswer],
    ) -> Result<ThresholdOutcome, DbError> {
        // Collect the round's answer atoms once.
        let produced: Vec<(Symbol, &[Value])> = round_answers
            .iter()
            .flat_map(|a| {
                a.relations
                    .iter()
                    .zip(&a.tuples)
                    .map(|(r, t)| (*r, t.as_slice()))
            })
            .collect();

        let valuations = db.evaluate(&self.body, usize::MAX)?;
        let mut best = 0usize;
        for val in &valuations {
            let template = self
                .counted
                .apply(&|v: Var| val.get(&v).map(|c| Term::Const(*c)));
            let mut seen: FastSet<&[Value]> = FastSet::default();
            for &(rel, tuple) in &produced {
                if rel != template.relation || tuple.len() != template.arity() {
                    continue;
                }
                let matches = template.terms.iter().zip(tuple).all(|(t, v)| match t {
                    Term::Const(c) => c == v,
                    // Leftover variables (not bound by the body) match
                    // anything — but repeated leftovers must agree,
                    // which the simple positional check cannot see;
                    // range restriction below rules that out.
                    Term::Var(_) => true,
                });
                if matches {
                    seen.insert(tuple);
                }
            }
            let count = seen.len();
            best = best.max(count);
            if count >= self.threshold {
                let answer = QueryAnswer {
                    query: self.id,
                    relations: self.head.iter().map(|a| a.relation).collect(),
                    tuples: self
                        .head
                        .iter()
                        .map(|a| {
                            a.terms
                                .iter()
                                .map(|t| match t {
                                    Term::Const(c) => *c,
                                    Term::Var(v) => {
                                        *val.get(v).expect("range restriction binds head variables")
                                    }
                                })
                                .collect()
                        })
                        .collect(),
                };
                return Ok(ThresholdOutcome::Satisfied(answer));
            }
        }
        Ok(ThresholdOutcome::NotSatisfied { best_count: best })
    }

    /// Validates range restriction: all head variables and all repeated
    /// counted-template variables must occur in the body.
    pub fn validate(&self) -> Result<(), eq_ir::ValidationError> {
        let probe = EntangledQuery::new(self.head.clone(), vec![], self.body.clone());
        probe.validate()?;
        // Repeated variables in the counted template that the body does
        // not bind would need a join over the answer relation, which the
        // positional matcher above cannot express.
        let body_vars: FastSet<Var> = self.body.iter().flat_map(|a| a.vars()).collect();
        let mut seen: FastSet<Var> = FastSet::default();
        for v in self.counted.vars() {
            if !seen.insert(v) && !body_vars.contains(&v) {
                return Err(eq_ir::ValidationError::NotRangeRestricted {
                    var: v,
                    polarity: eq_ir::Polarity::Postcondition,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinate;
    use eq_sql::parse_ir_query;

    /// The party scenario of §6: parties, friendships, and unconditional
    /// attendees; Jerry attends only if ≥ 3 friends attend the same
    /// party.
    fn party_db() -> Database {
        let mut db = Database::new();
        db.create_table("Parties", &["pid", "pdate"]).unwrap();
        db.create_table("Friend", &["name1", "name2"]).unwrap();
        db.insert("Parties", vec![Value::int(1), Value::str("Friday")])
            .unwrap();
        db.insert("Parties", vec![Value::int(2), Value::str("Friday")])
            .unwrap();
        db.insert("Parties", vec![Value::int(3), Value::str("Saturday")])
            .unwrap();
        for f in ["elaine", "kramer", "george", "newman"] {
            db.insert("Friend", vec![Value::str("jerry"), Value::str(f)])
                .unwrap();
        }
        db
    }

    /// Unconditional attendance queries (no postconditions): friend `f`
    /// attends party `pid`.
    fn attend(f: &str, pid: i64) -> EntangledQuery {
        parse_ir_query(&format!("{{}} Attendance({pid}, \"{f}\") <-")).unwrap()
    }

    fn jerry(threshold: usize) -> ThresholdQuery {
        // {COUNT Attendance(p, friend-of-jerry) >= threshold}
        //   Attendance(p, jerry) <- Parties(p, Friday), Friend(jerry, x)
        // The counted template counts rows Attendance(p, x) for friends x.
        ThresholdQuery::new(
            QueryId(100),
            vec![Atom::new(
                "Attendance",
                vec![Term::var(Var(0)), Term::str("jerry")],
            )],
            Atom::new("Attendance", vec![Term::var(Var(0)), Term::var(Var(1))]),
            threshold,
            vec![Atom::new(
                "Parties",
                vec![Term::var(Var(0)), Term::str("Friday")],
            )],
        )
    }

    #[test]
    fn threshold_met_on_popular_party() {
        let db = party_db();
        // Three friends at party 1, one at party 2.
        let round = coordinate(
            &[
                attend("elaine", 1),
                attend("kramer", 1),
                attend("george", 1),
                attend("newman", 2),
            ],
            &db,
        )
        .unwrap();
        assert_eq!(round.answers.len(), 4);
        let q = jerry(3);
        q.validate().unwrap();
        let outcome = q.evaluate(&db, &round.all_answers()).unwrap();
        match outcome {
            ThresholdOutcome::Satisfied(answer) => {
                assert_eq!(answer.tuples[0][0], Value::int(1), "party 1 has 3 friends");
                assert_eq!(answer.tuples[0][1], Value::str("jerry"));
            }
            other => panic!("expected satisfied, got {other:?}"),
        }
    }

    #[test]
    fn threshold_not_met_reports_best_count() {
        let db = party_db();
        let round = coordinate(&[attend("elaine", 1), attend("kramer", 2)], &db).unwrap();
        let outcome = jerry(3).evaluate(&db, &round.all_answers()).unwrap();
        assert_eq!(outcome, ThresholdOutcome::NotSatisfied { best_count: 1 });
    }

    #[test]
    fn saturday_parties_do_not_count() {
        let db = party_db();
        // All friends at party 3 — but it's on Saturday, and Jerry's
        // body restricts to Friday parties.
        let round = coordinate(
            &[
                attend("elaine", 3),
                attend("kramer", 3),
                attend("george", 3),
            ],
            &db,
        )
        .unwrap();
        let outcome = jerry(3).evaluate(&db, &round.all_answers()).unwrap();
        assert_eq!(outcome, ThresholdOutcome::NotSatisfied { best_count: 0 });
    }

    #[test]
    fn duplicate_answers_count_once() {
        let db = party_db();
        let round = coordinate(
            &[
                attend("elaine", 1),
                attend("elaine", 1),
                attend("kramer", 1),
            ],
            &db,
        )
        .unwrap();
        // elaine's duplicate contribution is one distinct tuple.
        let outcome = jerry(3).evaluate(&db, &round.all_answers()).unwrap();
        assert_eq!(outcome, ThresholdOutcome::NotSatisfied { best_count: 2 });
    }

    #[test]
    fn zero_threshold_is_trivially_satisfied() {
        let db = party_db();
        let q = jerry(0);
        let outcome = q.evaluate(&db, &[]).unwrap();
        assert!(matches!(outcome, ThresholdOutcome::Satisfied(_)));
    }

    #[test]
    fn validation_rejects_unbound_head_variable() {
        let q = ThresholdQuery::new(
            QueryId(1),
            vec![Atom::new("A", vec![Term::var(Var(7))])],
            Atom::new("A", vec![Term::var(Var(0))]),
            1,
            vec![],
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_rejects_repeated_unbound_counted_variable() {
        // Counted template A(x, x) with x unbound: would need an
        // answer-relation self-join the matcher cannot express.
        let q = ThresholdQuery::new(
            QueryId(1),
            vec![Atom::new("H", vec![Term::int(1)])],
            Atom::new("A", vec![Term::var(Var(5)), Term::var(Var(5))]),
            1,
            vec![],
        );
        assert!(q.validate().is_err());
    }
}
