//! Extensions from the paper's future-work section (§6):
//!
//! * **Multi-answer semantics** (`CHOOSE k`): a component can return up
//!   to `k` coordinated solutions instead of one —
//!   [`coordinate_choose_k`];
//! * **Preferences / ranking**: instead of taking the first coordinated
//!   solution non-deterministically, sample up to `sample_limit`
//!   solutions and return the one maximizing a user-supplied ranking
//!   function — [`coordinate_with_preference`]. This also covers "soft"
//!   preferences: encode the soft constraint in the score rather than
//!   the WHERE clause, and coordination still succeeds when the
//!   preferred option is unavailable.

use crate::combine::{CombinedQuery, QueryAnswer};
use crate::coordinate::{CoordinateError, RejectReason};
use crate::graph::MatchGraph;
use crate::matching;
use crate::safety::{self};
use crate::ucs;
use eq_db::Database;
use eq_ir::{EntangledQuery, FastMap, QueryId, VarGen};

/// Outcome of a multi-answer coordination round: each answered query
/// carries up to `k` alternative coordinated answers (solution `i` of
/// one query goes with solution `i` of its partners).
#[derive(Debug, Default)]
pub struct MultiOutcome {
    /// Per query: the alternative answers, outermost index = solution.
    pub answers: FastMap<QueryId, Vec<QueryAnswer>>,
    /// Rejections, as in the core pipeline.
    pub rejected: Vec<(QueryId, RejectReason)>,
}

/// Like [`crate::coordinate()`], but each matched component returns up to
/// `k` coordinated solutions (the §6 multi-answer extension). All
/// answers within one solution index are mutually consistent.
pub fn coordinate_choose_k(
    queries: &[EntangledQuery],
    db: &Database,
    k: usize,
) -> Result<MultiOutcome, CoordinateError> {
    let mut outcome = MultiOutcome::default();
    run_components(
        queries,
        db,
        |survivor_ids, combined, outcome| {
            let solutions = combined.evaluate(db, k)?;
            if solutions.is_empty() {
                for id in survivor_ids {
                    outcome.rejected.push((*id, RejectReason::NoSolution));
                }
            } else {
                for answers in solutions {
                    for a in answers {
                        outcome.answers.entry(a.query).or_default().push(a);
                    }
                }
            }
            Ok(())
        },
        &mut outcome,
    )?;
    Ok(outcome)
}

/// A ranking function over one coordinated solution (the answers of all
/// queries in a component). Higher is better.
pub type Ranker<'a> = dyn Fn(&[QueryAnswer]) -> f64 + 'a;

/// Like [`crate::coordinate()`], but instead of the first coordinated
/// solution, each component samples up to `sample_limit` solutions and
/// keeps the one with the highest `ranker` score (the §6
/// preference-ranking extension).
pub fn coordinate_with_preference(
    queries: &[EntangledQuery],
    db: &Database,
    sample_limit: usize,
    ranker: &Ranker<'_>,
) -> Result<MultiOutcome, CoordinateError> {
    let mut outcome = MultiOutcome::default();
    run_components(
        queries,
        db,
        |survivor_ids, combined, outcome| {
            let solutions = combined.evaluate(db, sample_limit)?;
            match solutions
                .into_iter()
                .max_by(|a, b| ranker(a).total_cmp(&ranker(b)))
            {
                Some(best) => {
                    for a in best {
                        outcome.answers.entry(a.query).or_default().push(a);
                    }
                }
                None => {
                    for id in survivor_ids {
                        outcome.rejected.push((*id, RejectReason::NoSolution));
                    }
                }
            }
            Ok(())
        },
        &mut outcome,
    )?;
    Ok(outcome)
}

/// Shared scaffolding: validate, rename, build graph, enforce safety,
/// match each component, then hand the combined query to `eval`.
fn run_components<F>(
    queries: &[EntangledQuery],
    db: &Database,
    mut eval: F,
    outcome: &mut MultiOutcome,
) -> Result<(), CoordinateError>
where
    F: FnMut(&[QueryId], &CombinedQuery, &mut MultiOutcome) -> Result<(), CoordinateError>,
{
    let _ = db;
    let gen = VarGen::new();
    let mut admitted = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let id = QueryId(i as u64);
        match q.validate() {
            Ok(()) => admitted.push(q.rename_apart(&gen).with_id(id)),
            Err(e) => outcome.rejected.push((id, RejectReason::Invalid(e))),
        }
    }
    let graph = MatchGraph::build(admitted);
    let mut alive = vec![true; graph.len()];
    for slot in safety::enforce(&graph, &mut alive) {
        outcome
            .rejected
            .push((graph.queries()[slot as usize].id, RejectReason::Unsafe));
    }
    for component in graph.components() {
        let members: Vec<u32> = component
            .iter()
            .copied()
            .filter(|&m| alive[m as usize])
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut mask = vec![false; graph.len()];
        for &m in &members {
            mask[m as usize] = true;
        }
        if !ucs::violations(&graph, &mask).is_empty() {
            for &m in &members {
                outcome
                    .rejected
                    .push((graph.queries()[m as usize].id, RejectReason::NonUcs));
            }
            continue;
        }
        let m = matching::match_component(&graph, &members);
        for &slot in &m.removed {
            outcome
                .rejected
                .push((graph.queries()[slot as usize].id, RejectReason::Unmatched));
        }
        if m.survivors.is_empty() {
            continue;
        }
        let Some(global) = m.global else {
            for &slot in &m.survivors {
                outcome
                    .rejected
                    .push((graph.queries()[slot as usize].id, RejectReason::Unmatched));
            }
            continue;
        };
        let survivor_ids: Vec<QueryId> = m
            .survivors
            .iter()
            .map(|&s| graph.queries()[s as usize].id)
            .collect();
        let combined = CombinedQuery::build(&graph, &m.survivors, global);
        eval(&survivor_ids, &combined, outcome)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Value;
    use eq_sql::parse_ir_query;

    fn q(text: &str) -> EntangledQuery {
        parse_ir_query(text).unwrap()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn choose_k_returns_alternatives() {
        let db = flight_db();
        let outcome = coordinate_choose_k(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
            ],
            &db,
            2,
        )
        .unwrap();
        let kramer = &outcome.answers[&QueryId(0)];
        let jerry = &outcome.answers[&QueryId(1)];
        assert_eq!(kramer.len(), 2);
        assert_eq!(jerry.len(), 2);
        // Solution i is mutually consistent.
        for i in 0..2 {
            assert_eq!(kramer[i].tuples[0][1], jerry[i].tuples[0][1]);
        }
        // And the two solutions differ.
        assert_ne!(kramer[0].tuples[0][1], kramer[1].tuples[0][1]);
    }

    #[test]
    fn choose_k_caps_at_available_solutions() {
        let db = flight_db();
        let outcome = coordinate_choose_k(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Rome)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Rome)"),
            ],
            &db,
            10,
        )
        .unwrap();
        assert_eq!(outcome.answers[&QueryId(0)].len(), 1); // only flight 136
    }

    #[test]
    fn preference_picks_highest_scoring_solution() {
        let db = flight_db();
        // Prefer the highest flight number.
        let ranker = |answers: &[QueryAnswer]| -> f64 {
            answers[0].tuples[0][1].as_int().unwrap_or(0) as f64
        };
        let outcome = coordinate_with_preference(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
            ],
            &db,
            10,
            &ranker,
        )
        .unwrap();
        // Flights to Paris: 122, 123, 134 → prefer 134.
        assert_eq!(
            outcome.answers[&QueryId(0)][0].tuples[0][1],
            Value::int(134)
        );
        assert_eq!(
            outcome.answers[&QueryId(1)][0].tuples[0][1],
            Value::int(134)
        );
    }

    #[test]
    fn soft_preference_degrades_gracefully() {
        let db = flight_db();
        // Soft constraint: prefer Athens (unavailable); any Paris flight
        // still coordinates because the preference is only a score.
        let ranker = |_: &[QueryAnswer]| -> f64 { 0.0 };
        let outcome = coordinate_with_preference(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)"),
            ],
            &db,
            5,
            &ranker,
        )
        .unwrap();
        assert_eq!(outcome.answers.len(), 2);
    }

    #[test]
    fn no_solution_still_rejected() {
        let db = flight_db();
        let outcome = coordinate_choose_k(
            &[
                q("{R(Jerry, x)} R(Kramer, x) <- F(x, Athens)"),
                q("{R(Kramer, y)} R(Jerry, y) <- F(y, Athens)"),
            ],
            &db,
            3,
        )
        .unwrap();
        assert!(outcome.answers.is_empty());
        assert_eq!(outcome.rejected.len(), 2);
    }
}

pub mod threshold;

pub use threshold::{ThresholdOutcome, ThresholdQuery};
