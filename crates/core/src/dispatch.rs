//! Out-of-lock ordered event dispatch for the [`crate::Coordinator`].
//!
//! Shard critical sections **stage** events (append them to one global
//! FIFO queue, preserving log order = ack order and the
//! durability-sink-before-broadcast contract) and **drain** them only
//! after every service lock is released. Fan-out to subscribers —
//! including a [`crate::OverflowPolicy::Block`] subscriber that may
//! park the publisher indefinitely — therefore never extends a shard's
//! critical section: a stalled subscriber suspends at most the one
//! thread that happened to become the dispatcher, while every other
//! session keeps admitting, flushing, and staging.
//!
//! Ordering: the queue is FIFO and at most one thread drains at a time
//! (a compare-and-swap claims the drainer role), so subscribers observe
//! events in exactly the order shard critical sections staged them.
//! A thread that loses the claim simply returns — its events are
//! delivered by the incumbent, which rechecks the queue after
//! releasing the role so no staged event is ever stranded.

use crate::events::{bounded, EventSender, Events, OverflowPolicy};
use crate::service::Event;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct Queue {
    events: VecDeque<Arc<Event>>,
    /// High-water mark of staged-but-undrained events, surfaced as
    /// [`crate::BatchReport::dispatch_queue_peak`].
    peak: u64,
}

/// The service-wide dispatch queue plus the subscriber registry.
pub(crate) struct Dispatcher {
    queue: Mutex<Queue>,
    subscribers: Mutex<Vec<Arc<EventSender>>>,
    /// Mirror of `subscribers.len()`, readable without the lock —
    /// staging paths consult it on every retirement.
    subscriber_count: AtomicUsize,
    disconnected: AtomicU64,
    /// True while some thread holds the drainer role.
    draining: AtomicBool,
}

impl Dispatcher {
    pub(crate) fn new() -> Self {
        Dispatcher {
            queue: Mutex::new(Queue {
                events: VecDeque::new(),
                peak: 0,
            }),
            subscribers: Mutex::new(Vec::new()),
            subscriber_count: AtomicUsize::new(0),
            disconnected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// Registers a bounded subscription and returns the receiver half.
    pub(crate) fn subscribe(&self, capacity: usize, policy: OverflowPolicy) -> Events {
        let (tx, rx) = bounded(capacity, policy);
        let mut subs = self.subscribers.lock();
        subs.push(Arc::new(tx));
        self.subscriber_count.store(subs.len(), Ordering::Relaxed);
        rx
    }

    pub(crate) fn has_subscribers(&self) -> bool {
        self.subscriber_count.load(Ordering::Relaxed) > 0
    }

    pub(crate) fn subscriber_count(&self) -> usize {
        self.subscriber_count.load(Ordering::Relaxed)
    }

    pub(crate) fn disconnected(&self) -> u64 {
        self.disconnected.load(Ordering::Relaxed)
    }

    pub(crate) fn queue_peak(&self) -> u64 {
        self.queue.lock().peak
    }

    /// Stages one event for the next drain. Called from inside shard
    /// critical sections — this only appends to the FIFO (no subscriber
    /// I/O). With no live subscribers the event is dropped, matching
    /// pre-dispatch broadcast semantics (events published before the
    /// first subscription are not replayed).
    pub(crate) fn enqueue(&self, event: Event) {
        if !self.has_subscribers() {
            return;
        }
        let mut q = self.queue.lock();
        q.events.push_back(Arc::new(event));
        q.peak = q.peak.max(q.events.len() as u64);
    }

    /// Delivers every staged event to every subscriber, in staging
    /// order. Must be called with **no** service lock held: a `Block`
    /// subscriber may park this thread until it drains. If another
    /// thread already holds the drainer role this returns immediately
    /// (the incumbent delivers our events too).
    pub(crate) fn drain(&self) {
        loop {
            if self
                .draining
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                return;
            }
            loop {
                let batch: Vec<Arc<Event>> = {
                    let mut q = self.queue.lock();
                    if q.events.is_empty() {
                        break;
                    }
                    q.events.drain(..).collect()
                };
                self.deliver(&batch);
            }
            self.draining.store(false, Ordering::Release);
            // Recheck after releasing the role: an enqueue that saw
            // `draining == true` after we emptied the queue is relying
            // on us (or whoever wins the CAS below) to deliver it.
            if self.queue.lock().events.is_empty() {
                return;
            }
        }
    }

    fn deliver(&self, batch: &[Arc<Event>]) {
        let snapshot: Vec<Arc<EventSender>> = self.subscribers.lock().clone();
        if snapshot.is_empty() {
            return;
        }
        let mut dead: Vec<usize> = Vec::new();
        for event in batch {
            for (i, sub) in snapshot.iter().enumerate() {
                if dead.contains(&i) {
                    continue;
                }
                if sub.send(Arc::clone(event)).is_err() {
                    dead.push(i);
                }
            }
        }
        if !dead.is_empty() {
            let mut subs = self.subscribers.lock();
            subs.retain(|s| !dead.iter().any(|&i| Arc::ptr_eq(s, &snapshot[i])));
            self.subscriber_count.store(subs.len(), Ordering::Relaxed);
            self.disconnected
                .fetch_add(dead.len() as u64, Ordering::Relaxed);
        }
    }
}
