//! The unique-coordination-structure (UCS) condition of §3.1.2.
//!
//! A set of queries has the UCS property when "every node in its
//! simplified unifiability graph belongs to a strongly connected
//! component of the same graph" — read as: within each (weakly)
//! connected component, all nodes lie in one SCC. Equivalently: no edge
//! crosses between different SCCs. This excludes configurations such as
//! the paper's Figure 3(b), where Frank's query depends on Jerry's head
//! but nothing depends on Frank — so a proper subset (Jerry, Kramer)
//! could coordinate "locally" and the structure is not unique.
//!
//! The check runs Tarjan's algorithm over the live subgraph. All entry
//! points are member-scoped internally (state is sized by the member
//! set, not the slot space), so per-component checks on the engine's
//! resident graph cost O(|component|).

use crate::graph::MatchView;
use eq_ir::{FastMap, QueryId};

/// A UCS violation: an edge whose endpoints fall into different strongly
/// connected components, meaning the coordination structure is not
/// unique.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UcsViolation {
    /// Slot of the query whose head feeds across SCCs.
    pub from_slot: u32,
    /// Id of the source query.
    pub from: QueryId,
    /// Slot of the dependent query.
    pub to_slot: u32,
    /// Id of the dependent query.
    pub to: QueryId,
}

/// Computes SCC ids for the live slots of the graph (dead slots get
/// `None`). Ids are arbitrary but equal within an SCC.
pub fn scc_ids<V: MatchView>(graph: &V, alive: &[bool]) -> Vec<Option<u32>> {
    let members: Vec<u32> = (0..graph.slot_bound() as u32)
        .filter(|&s| alive[s as usize])
        .collect();
    let by_member = scc_ids_members(graph, &members);
    let mut out = vec![None; graph.slot_bound()];
    for (slot, id) in by_member {
        out[slot as usize] = Some(id);
    }
    out
}

/// Checks the UCS property on the live subgraph; returns all violating
/// edges (empty means UCS holds).
pub fn violations<V: MatchView>(graph: &V, alive: &[bool]) -> Vec<UcsViolation> {
    let members: Vec<u32> = (0..graph.slot_bound() as u32)
        .filter(|&s| alive[s as usize])
        .collect();
    violations_members(graph, &members)
}

/// Member-scoped SCC ids: a map from each member slot to its SCC id.
/// Edges to non-members are ignored.
///
/// **Contract** (relied on by `matching`'s SCC-condensed propagation,
/// and covered by `scc_ids_are_reverse_topological` below): ids are
/// assigned in Tarjan completion order, so they are
/// **reverse-topological** — for every edge `u → v` with `u` and `v`
/// in different SCCs, `id(u) > id(v)`. Any reimplementation must
/// preserve this (or matching's fast path must compute its own
/// topological order).
pub fn scc_ids_members<V: MatchView>(graph: &V, members: &[u32]) -> FastMap<u32, u32> {
    let local: FastMap<u32, u32> = members
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let n = members.len();
    let mut state = Tarjan {
        graph,
        members,
        local: &local,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        scc: vec![None; n],
        next_scc: 0,
    };
    for v in 0..n {
        if state.index[v].is_none() {
            state.strongconnect(v);
        }
    }
    members
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, state.scc[i].expect("visited")))
        .collect()
}

/// Member-scoped UCS check: returns every edge between `members` whose
/// endpoints fall into different SCCs (empty means UCS holds for the
/// member set).
pub fn violations_members<V: MatchView>(graph: &V, members: &[u32]) -> Vec<UcsViolation> {
    let scc = scc_ids_members(graph, members);
    let mut out = Vec::new();
    for &m in members {
        for &eid in graph.out_edges(m) {
            let e = graph.edge(eid);
            let (Some(from_scc), Some(to_scc)) = (scc.get(&e.from), scc.get(&e.to)) else {
                continue;
            };
            if from_scc != to_scc {
                out.push(UcsViolation {
                    from_slot: e.from,
                    from: graph.query(e.from).id,
                    to_slot: e.to,
                    to: graph.query(e.to).id,
                });
            }
        }
    }
    out.sort_by_key(|v| (v.from_slot, v.to_slot));
    out.dedup();
    out
}

struct Tarjan<'a, V: MatchView> {
    graph: &'a V,
    members: &'a [u32],
    local: &'a FastMap<u32, u32>,
    index: Vec<Option<u32>>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: u32,
    scc: Vec<Option<u32>>,
    next_scc: u32,
}

impl<V: MatchView> Tarjan<'_, V> {
    /// Iterative Tarjan (explicit stack) over *local* member indices, so
    /// giant-cluster workloads don't overflow the call stack and state
    /// stays proportional to the member set.
    fn strongconnect(&mut self, root: usize) {
        // Each frame: (local node, next out-edge cursor).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        self.index[root] = Some(self.next_index);
        self.low[root] = self.next_index;
        self.next_index += 1;
        self.stack.push(root);
        self.on_stack[root] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let out = self.graph.out_edges(self.members[v]);
            if *cursor < out.len() {
                let eid = out[*cursor];
                *cursor += 1;
                let to_slot = self.graph.edge(eid).to;
                let Some(&w) = self.local.get(&to_slot) else {
                    continue; // edge leaves the member set
                };
                let w = w as usize;
                match self.index[w] {
                    None => {
                        self.index[w] = Some(self.next_index);
                        self.low[w] = self.next_index;
                        self.next_index += 1;
                        self.stack.push(w);
                        self.on_stack[w] = true;
                        frames.push((w, 0));
                    }
                    Some(widx) => {
                        if self.on_stack[w] {
                            self.low[v] = self.low[v].min(widx);
                        }
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    self.low[parent] = self.low[parent].min(self.low[v]);
                }
                if Some(self.low[v]) == self.index[v] {
                    let id = self.next_scc;
                    self.next_scc += 1;
                    loop {
                        let w = self.stack.pop().expect("scc stack underflow");
                        self.on_stack[w] = false;
                        self.scc[w] = Some(id);
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraph;
    use eq_ir::{EntangledQuery, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    #[test]
    fn scc_ids_are_reverse_topological() {
        // The documented contract of `scc_ids_members`: cross-SCC edges
        // always point from a larger id to a smaller one. A mixed shape
        // — a 2-cycle feeding a chain that feeds a 3-cycle, plus a
        // stray source — exercises several completion orders.
        let g = build(&[
            "{R(B, x)} R(A, x) <- F(x)", // 2-cycle {0,1}
            "{R(A, y)} R(B, y) <- F(y)",
            "{R(D, z)} R(C, z) <- F(z)", // chain node, fed by A? no — standalone source
            "{R(E, u)} R(D, u) <- F(u)", // chain: 2 -> 3 -> cycle {4,5,6}
            "{R(G1, v)} R(E, v) <- F(v)",
            "{R(G2, w)} R(G1, w) <- F(w)",
            "{R(E, s)} R(G2, s) <- F(s)",
        ]);
        let members: Vec<u32> = (0..7).collect();
        let scc = scc_ids_members(&g, &members);
        // Same-cycle nodes share an id; the chain nodes do not.
        assert_eq!(scc[&0], scc[&1]);
        assert_eq!(scc[&4], scc[&5]);
        assert_eq!(scc[&5], scc[&6]);
        assert_ne!(scc[&2], scc[&3]);
        for e in g.edges() {
            let (from, to) = (scc[&e.from], scc[&e.to]);
            if from != to {
                assert!(
                    from > to,
                    "edge {} -> {} violates reverse-topological ids ({from} <= {to})",
                    e.from,
                    e.to
                );
            }
        }
    }

    #[test]
    fn paper_figure_3b_violates_ucs() {
        // Jerry↔Kramer cycle plus an edge Jerry→Frank: Frank is not in a
        // cycle, so the structure is not unique.
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
            "{R(Jerry, z)} R(Frank, z) <- F(z, Paris), A(z, United)",
        ]);
        let vs = violations(&g, &[true, true, true]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].to_slot, 2); // Frank's query is the dependent one
    }

    #[test]
    fn paper_figure_3a_satisfies_ucs_despite_unsafety() {
        // §3.1.2: "a set of queries could satisfy the UCS property even
        // though a query in the set is unsafe".
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Jerry, y)} R(Elaine, y) <- F(y, Athens)",
            "{R(f, z)} R(Jerry, z) <- F(z, w), Friend(Jerry, f)",
        ]);
        assert!(violations(&g, &[true, true, true]).is_empty());
        let scc = scc_ids(&g, &[true, true, true]);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[0], scc[2]);
    }

    #[test]
    fn two_cycle_is_ucs() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        assert!(violations(&g, &[true, true]).is_empty());
    }

    #[test]
    fn isolated_nodes_are_fine() {
        // A query with no edges is trivially its own SCC; the condition
        // constrains edges, not isolated nodes.
        let g = build(&["{} R(Kramer, ITH) <- F(Kramer, Jerry)"]);
        assert!(violations(&g, &[true]).is_empty());
    }

    #[test]
    fn dead_slots_ignored() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
            "{R(Jerry, z)} R(Frank, z) <- F(z, Paris), A(z, United)",
        ]);
        // With Frank's query dead, the remaining pair is UCS.
        assert!(violations(&g, &[true, true, false]).is_empty());
        let scc = scc_ids(&g, &[true, true, false]);
        assert_eq!(scc[2], None);
    }

    #[test]
    fn three_cycle_is_ucs() {
        // Triangle workload of §5.3.2: q0→q1→q2→q0 (heads feed the next
        // query's pc).
        let g = build(&[
            "{R(Kramer, IAH)} R(Jerry, IAH) <- F(Jerry, Kramer)",
            "{R(Elaine, IAH)} R(Kramer, IAH) <- F(Kramer, Elaine)",
            "{R(Jerry, IAH)} R(Elaine, IAH) <- F(Elaine, Jerry)",
        ]);
        assert_eq!(g.edges().len(), 3);
        assert!(violations(&g, &[true, true, true]).is_empty());
    }

    #[test]
    fn chain_violates_ucs() {
        // q0's head feeds q1's pc, q1's head feeds q2's pc; no cycles.
        let g = build(&[
            "{} X0(C) <- T(C)",
            "{X0(a)} X1(a) <- T(a)",
            "{X1(b)} X2(b) <- T(b)",
        ]);
        let vs = violations(&g, &[true, true, true]);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn member_scoped_check_ignores_edges_leaving_the_member_set() {
        // Restricted to the two-cycle, the Frank edge is invisible.
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
            "{R(Jerry, z)} R(Frank, z) <- F(z, Paris), A(z, United)",
        ]);
        assert!(violations_members(&g, &[0, 1]).is_empty());
        let scc = scc_ids_members(&g, &[0, 1]);
        assert_eq!(scc[&0], scc[&1]);
    }
}
