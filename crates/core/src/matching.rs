//! Query matching: Algorithm 1 of §4.1.3–4.1.4 — unifier propagation
//! with cascading cleanup.
//!
//! Given one connected component of a *safe* unifiability graph, matching
//!
//! 1. seeds each node's unifier with the MGUs of its in-edges (the local
//!    constraint that its postconditions be satisfied by the matched
//!    heads);
//! 2. removes nodes with an unsatisfied postcondition (`INDEGREE(q) <
//!    PCCOUNT(q)`), cascading the removal to all descendants (CLEANUP);
//! 3. propagates unifiers along edges until fixpoint. The propagation
//!    has two tiers:
//!    * the **SCC-condensed fast path**: at the fixpoint, every node of
//!      a strongly connected component provably carries the same
//!      unifier — the merge of its SCC's seeds with the unifiers of all
//!      predecessor SCCs — so the fast path runs one merge pass over
//!      the condensation DAG in topological order instead of
//!      re-propagating ever-growing unifiers node by node. On a
//!      shared-variable entanglement ring (one big SCC whose global
//!      unifier chains *n* variables) this is the difference between
//!      O(n) unifier work and the naive fixpoint's O(n³);
//!    * the **naive worklist fixpoint** (`U(child) := MGU(U(parent),
//!      U(child))`, enqueue on growth): the exact Algorithm 1 loop,
//!      used as the fallback whenever the fast path hits *any* MGU
//!      conflict — conflicts trigger per-node CLEANUP whose outcome
//!      depends on where the conflict materializes, which only the
//!      faithful per-node propagation reproduces. The fast path never
//!      commits a partial result, so the two tiers are observationally
//!      identical: conflict-free components take the fast path, every
//!      other component is re-run through the naive loop untouched.
//! 4. folds the survivors' unifiers into a single global unifier for the
//!    component (§4.2); if that fails, the whole component is rejected.

use crate::graph::MatchView;
use eq_ir::{FastMap, FastSet};
use eq_unify::{Snapshot, Unifier};
use std::collections::VecDeque;

/// Counters for one matching run, reported by the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Nodes dequeued from the updates queue.
    pub dequeues: u64,
    /// MGU merge operations performed.
    pub mgu_calls: u64,
    /// Nodes removed by CLEANUP (unsatisfiable queries).
    pub cleanups: u64,
}

/// Result of matching one component. (Per-node unifiers are an
/// internal artifact of the propagation; only the survivors and the
/// global unifier flow into combined-query construction, and the
/// SCC-condensed fast path deliberately never materializes n copies of
/// an n-entry unifier.)
#[derive(Debug)]
pub struct ComponentMatch {
    /// Slots that survived matching: every postcondition is satisfied
    /// and all constraints are mutually consistent along edges.
    pub survivors: Vec<u32>,
    /// Slots removed as unanswerable.
    pub removed: Vec<u32>,
    /// The component-wide unifier `U = mgu({U(qi)})` of §4.2; `None`
    /// when no survivors remain or when the global MGU does not exist
    /// (in which case the component must be rejected).
    pub global: Option<Unifier>,
    /// Run counters.
    pub stats: MatchStats,
}

impl ComponentMatch {
    /// True if matching produced an evaluable combined query.
    pub fn is_answerable(&self) -> bool {
        self.global.is_some() && !self.survivors.is_empty()
    }
}

/// Runs matching on the component `members` of `graph`. Slots outside
/// `members` are treated as absent; `members` must be closed under the
/// graph's edges (i.e. be a full connected component, as produced by
/// [`crate::graph::MatchGraph::components`] or taken from the engine's
/// resident graph) — edges to non-members are ignored.
///
/// State is keyed by member slot (not dense over `slot_bound`), so the
/// cost of matching a component depends on the component's size alone —
/// the property that makes dirty-component-only flushes O(dirty), not
/// O(pending).
pub fn match_component<V: MatchView>(graph: &V, members: &[u32]) -> ComponentMatch {
    let in_component: FastSet<u32> = members.iter().copied().collect();
    // Step 1+2 (seed phase): per-member, independent of every other
    // member — the parallel entry point chunks exactly this loop.
    let seeds: Vec<Seed> = members
        .iter()
        .map(|&m| seed_member(graph, &in_component, m))
        .collect();
    finish_match(graph, members, in_component, seeds)
}

/// [`match_component`] with the seed phase (in-edge MGU folding — the
/// per-member, embarrassingly parallel part of Algorithm 1) run on
/// `threads` scoped workers. Produces bit-identical results to the
/// sequential entry point: each member's seed depends only on its own
/// in-edges, chunks are merged back in member order, and the
/// propagation fixpoint that follows is the same sequential worklist.
/// Used by the engine for components at or above
/// [`crate::EngineConfig::intra_component_threshold`].
pub fn match_component_threads<V: MatchView + Sync>(
    graph: &V,
    members: &[u32],
    threads: usize,
) -> ComponentMatch {
    let threads = threads.min(members.len().max(1));
    if threads <= 1 {
        return match_component(graph, members);
    }
    let in_component: FastSet<u32> = members.iter().copied().collect();
    // Contiguous chunks claimed off the shared pool (chunking keeps the
    // per-claim work coarse: one seed is a handful of MGU merges), then
    // reassembled in chunk order so seeds line up with `members`.
    let chunk = members.len().div_ceil(threads);
    let chunk_order: Vec<usize> = (0..members.len().div_ceil(chunk)).collect();
    let mut produced = crate::pool::parallel_claim(&chunk_order, threads, None, |c| {
        members[c * chunk..((c + 1) * chunk).min(members.len())]
            .iter()
            .map(|&m| seed_member(graph, &in_component, m))
            .collect::<Vec<Seed>>()
    });
    produced.sort_by_key(|&(c, _)| c);
    let seeds: Vec<Seed> = produced.into_iter().flat_map(|(_, s)| s).collect();
    finish_match(graph, members, in_component, seeds)
}

/// Result of seeding one member: its in-edge MGUs folded into a local
/// unifier, whether the member is already unanswerable (a postcondition
/// with no in-component satisfier, or conflicting in-edge MGUs), and the
/// MGU merges performed.
struct Seed {
    unifier: Unifier,
    doomed: bool,
    mgu_calls: u64,
}

fn seed_member<V: MatchView>(graph: &V, in_component: &FastSet<u32>, m: u32) -> Seed {
    let q = graph.query(m);
    let mut satisfied = vec![false; q.pc_count()];
    let mut unifier = Unifier::new();
    let mut conflict = false;
    let mut mgu_calls = 0u64;
    for &eid in graph.in_edges(m) {
        let e = graph.edge(eid);
        if !in_component.contains(&e.from) {
            continue;
        }
        satisfied[e.pc_idx as usize] = true;
        mgu_calls += 1;
        if unifier.merge_from(&e.mgu).is_err() {
            conflict = true;
            break;
        }
    }
    Seed {
        doomed: conflict || satisfied.iter().any(|&s| !s),
        unifier,
        mgu_calls,
    }
}

/// Steps 2b–4 of Algorithm 1 over precomputed seeds: cascade the doomed
/// removals, run the propagation fixpoint (SCC-condensed fast path,
/// naive worklist fallback on conflict), fold the global unifier.
fn finish_match<V: MatchView>(
    graph: &V,
    members: &[u32],
    in_component: FastSet<u32>,
    seeds: Vec<Seed>,
) -> ComponentMatch {
    let mut stats = MatchStats::default();
    let mut alive = in_component;
    let mut unifiers: FastMap<u32, Unifier> = FastMap::default();
    let mut removed = Vec::new();
    let mut doomed: Vec<u32> = Vec::new();
    for (&m, seed) in members.iter().zip(seeds) {
        stats.mgu_calls += seed.mgu_calls;
        unifiers.insert(m, seed.unifier);
        if seed.doomed {
            doomed.push(m);
        }
    }
    for d in doomed {
        cleanup(graph, d, &mut alive, &mut removed, &mut stats);
    }
    let live: Vec<u32> = members
        .iter()
        .copied()
        .filter(|m| alive.contains(m))
        .collect();

    // Step 3, fast path: SCC-condensed propagation riding the seeds
    // in place (each is moved out and speculated on under a snapshot;
    // a conflict rolls every seed back exactly). Commits only when
    // conflict-free, in which case nothing is cleaned up and the
    // returned unifier is exactly the step-4 global.
    if let Some(global) = scc_propagate(graph, &live, &mut unifiers, &mut stats) {
        return ComponentMatch {
            survivors: live,
            removed,
            global: Some(global),
            stats,
        };
    }

    // Step 3, fallback: Algorithm 1's per-node worklist — propagate
    // unifiers along edges, cleaning up on conflict.
    let mut queue: VecDeque<u32> = live.iter().copied().collect();
    let mut queued: FastSet<u32> = queue.iter().copied().collect();
    while let Some(parent) = queue.pop_front() {
        queued.remove(&parent);
        if !alive.contains(&parent) {
            continue;
        }
        stats.dequeues += 1;
        // Move the parent's unifier out of the map for the fan-out
        // instead of cloning it — sound because the graph has no
        // self-edges (`discover_edges_for_pc` skips self-coordination),
        // so no child lookup can hit the parent's vacated entry.
        let Some(parent_unifier) = unifiers.remove(&parent) else {
            continue; // unreachable: every live member has a seed
        };
        for &eid in graph.out_edges(parent) {
            let child = graph.edge(eid).to;
            if !alive.contains(&child) {
                continue;
            }
            stats.mgu_calls += 1;
            let Some(child_unifier) = unifiers.get_mut(&child) else {
                continue; // unreachable: every live member has a seed
            };
            match child_unifier.merge_from(&parent_unifier) {
                Ok(true) => {
                    if queued.insert(child) {
                        queue.push_back(child);
                    }
                }
                Ok(false) => {}
                Err(_) => {
                    cleanup(graph, child, &mut alive, &mut removed, &mut stats);
                }
            }
        }
        unifiers.insert(parent, parent_unifier);
    }

    // Step 4: global unifier over survivors. The fold is clone-free by
    // construction (a fresh table absorbs each survivor's classes); it
    // deliberately does NOT move the first survivor's table in, because
    // the global's representatives — and hence every resolved term in
    // the combined query — depend on the fold building the forest from
    // canonical class lists, smallest variable first.
    let survivors: Vec<u32> = members
        .iter()
        .copied()
        .filter(|m| alive.contains(m))
        .collect();
    let mut global = None;
    if !survivors.is_empty() {
        let mut folded = Unifier::new();
        let mut conflicted = false;
        for &s in &survivors {
            stats.mgu_calls += 1;
            if folded.merge_from(&unifiers[&s]).is_err() {
                conflicted = true;
                break;
            }
        }
        if !conflicted {
            global = Some(folded);
        }
    }

    ComponentMatch {
        survivors,
        removed,
        global,
        stats,
    }
}

/// The SCC-condensed propagation fast path. At the fixpoint of
/// Algorithm 1's step 3, every node of a strongly connected component
/// carries the same unifier: the merge of all its SCC's seeds with the
/// unifiers of all DAG-predecessor SCCs (information flows freely
/// around a cycle, so SCC members are indistinguishable). This
/// computes exactly that, one merge pass over the condensation in
/// topological order, and folds the step-4 global unifier in the same
/// pass.
///
/// Returns `None` on *any* MGU conflict — including one that only the
/// final global fold would hit — with `seeds` restored exactly to its
/// pre-call state; the caller then reruns the naive per-node fixpoint,
/// whose conflict-cleanup semantics (which node is removed depends on
/// where the conflict materializes) must not be second-guessed here.
/// Also returns `None` for an empty live set (step 4 defines that as an
/// unanswerable component, which the fallback reproduces trivially).
///
/// # Speculation discipline
///
/// Each SCC *rides* one of its seeds instead of rebuilding an n-entry
/// unifier: the first member's table is moved out of the seed map, a
/// snapshot is opened on it, and every other seed / predecessor SCC is
/// merged into it in place. On success every snapshot is committed
/// before the ridden tables drop — bookkeeping only (the caller never
/// reuses the seed map after a fast-path commit), but it samples the
/// undo high-water counter and keeps the no-open-snapshots invariant
/// on drop. On conflict every ridden table — including the
/// half-merged current one — is rolled back to its snapshot and
/// reinserted, so the fallback sees pristine seeds. This halves the
/// fast path's peak table count (the old code held every seed *plus* a
/// rebuilt per-SCC copy) and makes rejection cost the logged writes,
/// not a rebuild. The global's construction is unchanged: it still
/// absorbs each SCC unifier's canonical class list in the same order,
/// so its forest — and hence every downstream representative — is
/// bit-identical to the pre-riding implementation.
fn scc_propagate<V: MatchView>(
    graph: &V,
    live: &[u32],
    seeds: &mut FastMap<u32, Unifier>,
    stats: &mut MatchStats,
) -> Option<Unifier> {
    if live.is_empty() {
        return None;
    }
    let scc_of = crate::ucs::scc_ids_members(graph, live);
    let nscc = scc_of.values().copied().max().map_or(0, |m| m as usize + 1);
    let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); nscc];
    for &m in live {
        members_of[scc_of[&m] as usize].push(m);
    }
    // Condensation predecessors. Tarjan ids are assigned at SCC
    // completion, so every successor SCC has a smaller id than its
    // predecessors — descending id order is a topological order.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nscc];
    for &m in live {
        let from = scc_of[&m] as usize;
        for &eid in graph.out_edges(m) {
            let child = graph.edge(eid).to;
            let Some(&to) = scc_of.get(&child) else {
                continue; // edge out of the live set
            };
            if from != to as usize {
                preds[to as usize].push(from);
            }
        }
    }
    let mut scc_unifier: Vec<Option<Unifier>> = Vec::with_capacity(nscc);
    scc_unifier.resize_with(nscc, || None);
    // One (scc id, seed owner, snapshot) entry per committed SCC, kept
    // so a later conflict can restore every moved seed exactly.
    let mut marks: Vec<(usize, u32, Snapshot)> = Vec::with_capacity(nscc);
    let mut global = Unifier::new();
    for id in (0..nscc).rev() {
        // `members_of[id]` is never empty: every id was assigned to at
        // least one live member.
        let Some((&first, rest)) = members_of[id].split_first() else {
            restore_seeds(seeds, &mut scc_unifier, &mut marks, None);
            return None;
        };
        let Some(mut u) = seeds.remove(&first) else {
            // Unreachable: every live member has a seed.
            restore_seeds(seeds, &mut scc_unifier, &mut marks, None);
            return None;
        };
        let snap = u.snapshot();
        stats.dequeues += 1;
        let mut conflicted = false;
        for &m in rest {
            stats.dequeues += 1;
            stats.mgu_calls += 1;
            if u.merge_from(&seeds[&m]).is_err() {
                conflicted = true;
                break;
            }
        }
        if !conflicted {
            preds[id].sort_unstable();
            preds[id].dedup();
            for &p in &preds[id] {
                stats.mgu_calls += 1;
                let Some(pred_unifier) = scc_unifier[p].as_ref() else {
                    // Unreachable (descending-id order is topological,
                    // so every predecessor was filled first); bailing
                    // to the per-node fallback is the safe degradation.
                    conflicted = true;
                    break;
                };
                if u.merge_from(pred_unifier).is_err() {
                    conflicted = true;
                    break;
                }
            }
        }
        if !conflicted {
            // Fold into the global as we go (step 4, same information).
            stats.mgu_calls += 1;
            conflicted = global.merge_from(&u).is_err();
        }
        if conflicted {
            restore_seeds(seeds, &mut scc_unifier, &mut marks, Some((first, u, snap)));
            return None;
        }
        marks.push((id, first, snap));
        scc_unifier[id] = Some(u);
    }
    for (id, _owner, snap) in marks.drain(..) {
        if let Some(u) = scc_unifier[id].as_mut() {
            let closed = u.commit(snap);
            debug_assert!(closed.is_ok(), "seed snapshot discipline violated");
        }
    }
    Some(global)
}

/// Unwinds [`scc_propagate`]'s speculation: rolls every ridden seed —
/// the half-merged `current` one and every committed SCC's — back to
/// its snapshot and reinserts it under its owner, leaving the seed map
/// bit-identical to the fast path's entry state.
fn restore_seeds(
    seeds: &mut FastMap<u32, Unifier>,
    scc_unifier: &mut [Option<Unifier>],
    marks: &mut Vec<(usize, u32, Snapshot)>,
    current: Option<(u32, Unifier, Snapshot)>,
) {
    if let Some((owner, mut u, snap)) = current {
        let rolled = u.rollback_to(snap);
        debug_assert!(rolled.is_ok(), "seed snapshot discipline violated");
        seeds.insert(owner, u);
    }
    for (id, owner, snap) in marks.drain(..) {
        if let Some(mut u) = scc_unifier[id].take() {
            let rolled = u.rollback_to(snap);
            debug_assert!(rolled.is_ok(), "seed snapshot discipline violated");
            seeds.insert(owner, u);
        }
    }
}

/// CLEANUP(n) from §4.1.3: removes `n` and all its descendants (via
/// out-edges) from the live set. Safety guarantees each postcondition has
/// at most one satisfier, so a descendant losing its parent is
/// unanswerable and must go too. Since `alive` is a subset of the
/// component's members, nodes outside the component are never touched.
fn cleanup<V: MatchView>(
    graph: &V,
    start: u32,
    alive: &mut FastSet<u32>,
    removed: &mut Vec<u32>,
    stats: &mut MatchStats,
) {
    if !alive.remove(&start) {
        return;
    }
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        removed.push(v);
        stats.cleanups += 1;
        for &eid in graph.out_edges(v) {
            let w = graph.edge(eid).to;
            if alive.remove(&w) {
                stack.push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraph;
    use eq_ir::{EntangledQuery, QueryId, Value, VarGen};
    use eq_sql::parse_ir_query;

    fn build(texts: &[&str]) -> MatchGraph {
        let gen = VarGen::new();
        let queries: Vec<EntangledQuery> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect();
        MatchGraph::build(queries)
    }

    fn run_all(graph: &MatchGraph) -> ComponentMatch {
        let members: Vec<u32> = (0..graph.len() as u32).collect();
        match_component(graph, &members)
    }

    #[test]
    fn kramer_jerry_match() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        assert_eq!(m.survivors, vec![0, 1]);
        // The global unifier forces x = y.
        let global = m.global.unwrap();
        let x = g.queries()[0].head[0].terms[1].as_var().unwrap();
        let y = g.queries()[1].head[0].terms[1].as_var().unwrap();
        assert!(global.same_class(x, y));
    }

    #[test]
    fn running_example_figure_4_full_run() {
        // §4.1.4 running example. Expected final unifier:
        // {{x1, y1}, {x2, z2}, {x3, z1, 1}}.
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(z1)} S(z2) <- D3(z1, z2)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        assert_eq!(m.survivors, vec![0, 1, 2]);

        // Identify the renamed variables by structural position.
        let q = g.queries();
        let x1 = q[0].postconditions[0].terms[0].as_var().unwrap();
        let x2 = q[0].postconditions[1].terms[0].as_var().unwrap();
        let x3 = q[0].head[0].terms[0].as_var().unwrap();
        let y1 = q[1].head[0].terms[0].as_var().unwrap();
        let z1 = q[2].postconditions[0].terms[0].as_var().unwrap();
        let z2 = q[2].head[0].terms[0].as_var().unwrap();

        let u = m.global.unwrap();
        assert!(u.same_class(x1, y1));
        assert!(u.same_class(x2, z2));
        assert!(u.same_class(x3, z1));
        assert_eq!(u.constant_of(x3), Some(Value::int(1)));
        // And the classes are distinct.
        assert!(!u.same_class(x1, x2));
        assert!(!u.same_class(x1, x3));
    }

    #[test]
    fn figure_4_variant_with_conflicting_constant_fails() {
        // §4.1.4: if q3's postcondition is T(2) rather than T(z1), x3
        // would need to equal 1 and 2 simultaneously; matching eliminates
        // q1 and its children q2 and q3.
        let g = build(&[
            "{R(x1) & S(x2)} T(x3) <- D1(x1, x2, x3)",
            "{T(1)} R(y1) <- D2(y1)",
            "{T(2)} S(z2) <- D3(z2)",
        ]);
        let m = run_all(&g);
        assert!(!m.is_answerable());
        assert!(m.survivors.is_empty());
        assert_eq!(m.removed.len(), 3);
    }

    #[test]
    fn unmatched_postcondition_cascades() {
        // q0 needs X(v) but nothing provides X; q1 depends on q0's head.
        let g = build(&["{X(v)} Y(v) <- T(v)", "{Y(w)} Z(w) <- T(w)"]);
        let m = run_all(&g);
        assert!(m.survivors.is_empty());
        assert_eq!(m.removed, vec![0, 1]);
        assert_eq!(m.stats.cleanups, 2);
    }

    #[test]
    fn independent_provider_survives_dependent_removal() {
        // q0 is a pure provider (no postconditions); q1 consumes q0's
        // head; q2 needs a head nobody provides. Removing q2 must not
        // remove q0 or q1.
        let g = build(&[
            "{} A(C1) <- T(C1)",
            "{A(v)} B(v) <- T(v)",
            "{Missing(w)} D(w) <- T(w)",
        ]);
        let m = run_all(&g);
        assert_eq!(m.survivors, vec![0, 1]);
        assert_eq!(m.removed, vec![2]);
    }

    #[test]
    fn ground_pairs_need_no_propagation_rounds() {
        // Fully specified pair (best-case workload §5.3.1): unifiers stay
        // empty, matching is pure graph work.
        let g = build(&[
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(Jerry, Kramer)",
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(Kramer, Jerry)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        assert!(m.global.unwrap().is_empty());
    }

    #[test]
    fn three_way_cycle_matches() {
        let g = build(&[
            "{R(Kramer, IAH)} R(Jerry, IAH) <- F(Jerry, Kramer)",
            "{R(Elaine, IAH)} R(Kramer, IAH) <- F(Kramer, Elaine)",
            "{R(Jerry, IAH)} R(Elaine, IAH) <- F(Elaine, Jerry)",
        ]);
        let m = run_all(&g);
        assert_eq!(m.survivors, vec![0, 1, 2]);
    }

    #[test]
    fn variable_pair_unifier_binds_partner_names() {
        // Random workload of §5.3.1: {R(x, ITH)} R(Jerry, ITH) and the
        // symmetric query; matching must bind x = Kramer and y = Jerry.
        let g = build(&[
            "{R(x, ITH)} R(Jerry, ITH) <- F(Jerry, x)",
            "{R(y, ITH)} R(Kramer, ITH) <- F(Kramer, y)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        let u = m.global.unwrap();
        let x = g.queries()[0].postconditions[0].terms[0].as_var().unwrap();
        let y = g.queries()[1].postconditions[0].terms[0].as_var().unwrap();
        assert_eq!(u.constant_of(x), Some(Value::str("Kramer")));
        assert_eq!(u.constant_of(y), Some(Value::str("Jerry")));
    }

    #[test]
    fn per_component_isolation() {
        // Two disjoint pairs; matching one component must not touch the
        // other.
        let g = build(&[
            "{R(Jerry, ITH)} R(Kramer, ITH) <- F(Kramer, Jerry)",
            "{R(Kramer, ITH)} R(Jerry, ITH) <- F(Jerry, Kramer)",
            "{R(Frank, SBN)} R(Elaine, SBN) <- F(Elaine, Frank)",
            "{R(Elaine, SBN)} R(Frank, SBN) <- F(Frank, Elaine)",
        ]);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        let m0 = match_component(&g, &comps[0]);
        assert_eq!(m0.survivors, comps[0]);
        let m1 = match_component(&g, &comps[1]);
        assert_eq!(m1.survivors, comps[1]);
    }

    #[test]
    fn stats_are_populated() {
        let g = build(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        let m = run_all(&g);
        assert!(m.stats.dequeues >= 2);
        assert!(m.stats.mgu_calls >= 2);
        assert_eq!(m.stats.cleanups, 0);
    }

    #[test]
    fn multi_postcondition_clique() {
        // §5.3.3 clique workload with two postconditions per query.
        let g = build(&[
            "{R(Jerry, SBN) & R(Kramer, SBN)} R(Elaine, SBN) <- F(Elaine, Jerry) & F(Elaine, Kramer)",
            "{R(Elaine, SBN) & R(Kramer, SBN)} R(Jerry, SBN) <- F(Jerry, Elaine) & F(Jerry, Kramer)",
            "{R(Elaine, SBN) & R(Jerry, SBN)} R(Kramer, SBN) <- F(Kramer, Elaine) & F(Kramer, Jerry)",
        ]);
        let m = run_all(&g);
        assert_eq!(m.survivors, vec![0, 1, 2]);
    }

    #[test]
    fn partial_clique_fails() {
        // Only two of the three clique queries arrive: each is missing
        // one postcondition satisfier, so nothing survives.
        let g = build(&[
            "{R(Jerry, SBN) & R(Kramer, SBN)} R(Elaine, SBN) <- F(Elaine, Jerry) & F(Elaine, Kramer)",
            "{R(Elaine, SBN) & R(Kramer, SBN)} R(Jerry, SBN) <- F(Jerry, Elaine) & F(Jerry, Kramer)",
        ]);
        let m = run_all(&g);
        assert!(m.survivors.is_empty());
    }

    #[test]
    fn empty_component() {
        let g = build(&["{} A(C) <- T(C)"]);
        let m = match_component(&g, &[]);
        assert!(m.survivors.is_empty());
        assert!(m.global.is_none());
    }

    #[test]
    fn constants_propagate_down_a_dag_chain() {
        // Three singleton SCCs in a line: q0's ground head binds q1's
        // variable, and that constant must flow through q1's unifier
        // into q2's — the cross-SCC leg of the condensed fast path.
        let g = build(&[
            "{} A(1) <- D(w)",
            "{A(u)} B(u) <- D(u)",
            "{B(z)} C(z) <- D(z)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        assert_eq!(m.survivors, vec![0, 1, 2]);
        let u = m.global.unwrap();
        let q1_u = g.queries()[1].head[0].terms[0].as_var().unwrap();
        let q2_z = g.queries()[2].head[0].terms[0].as_var().unwrap();
        assert_eq!(u.constant_of(q1_u), Some(Value::int(1)));
        assert_eq!(u.constant_of(q2_z), Some(Value::int(1)));
    }

    #[test]
    fn threaded_seed_phase_matches_sequential() {
        // A mixed component: a ring that closes, a doomed node with an
        // unsatisfied postcondition, and variable chains — every branch
        // of the seed phase. The parallel entry point must agree
        // bit-for-bit with the sequential one.
        let g = build(&[
            "{R(B, x)} R(A, x) <- F(x)",
            "{R(C, y)} R(B, y) <- F(y)",
            "{R(A, z)} R(C, z) <- F(z)",
            "{Missing(w)} R(D, w) <- F(w)",
        ]);
        let members: Vec<u32> = (0..4).collect();
        let seq = match_component(&g, &members);
        for threads in [2, 3, 8] {
            let par = match_component_threads(&g, &members, threads);
            assert_eq!(par.survivors, seq.survivors);
            assert_eq!(par.removed, seq.removed);
            assert_eq!(par.stats, seq.stats);
            assert_eq!(par.global.is_some(), seq.global.is_some());
            if let (Some(a), Some(b)) = (&par.global, &seq.global) {
                assert!(a.equivalent(b));
            }
        }
    }

    #[test]
    fn var_to_var_chain_collapses_classes() {
        // Heads and postconditions chain variables across three queries
        // in a cycle; all flight variables must end up in one class.
        let g = build(&[
            "{R(B, x)} R(A, x) <- F(x)",
            "{R(C, y)} R(B, y) <- F(y)",
            "{R(A, z)} R(C, z) <- F(z)",
        ]);
        let m = run_all(&g);
        assert!(m.is_answerable());
        let u = m.global.unwrap();
        let x = g.queries()[0].head[0].terms[1].as_var().unwrap();
        let z = g.queries()[2].head[0].terms[1].as_var().unwrap();
        assert!(u.same_class(x, z));
    }
}
