//! The unified error hierarchy of the coordination API.
//!
//! Before the `Coordinator` service existed, the public surface carried
//! three disjoint error shapes: [`SubmitError`] from
//! [`crate::CoordinationEngine::submit`], [`RejectReason`] /
//! [`FailReason`] as per-query failure payloads, and a stringly
//! `Result<(), String>` from the invariant checkers.
//! [`CoordinationError`] folds all of them (plus database and
//! validation errors) into one typed enum, so service callers match on
//! a single hierarchy and every legacy shape converts in with `?`.
//!
//! ```
//! use eq_core::{Coordinator, CoordinationError, EngineConfig};
//! use eq_db::Database;
//! use eq_ir::QueryId;
//!
//! let coordinator = Coordinator::new(Database::new(), EngineConfig::default());
//! // Every refusal is one typed enum — no stringly errors.
//! match coordinator.cancel(QueryId(42)) {
//!     Err(CoordinationError::UnknownQuery(id)) => assert_eq!(id, QueryId(42)),
//!     other => panic!("expected UnknownQuery, got {other:?}"),
//! }
//! // Display renders an actionable message for logs.
//! assert!(CoordinationError::UnsafeAdmission.to_string().contains("unsafe"));
//! ```

use crate::coordinate::RejectReason;
use crate::engine::{FailReason, SubmitError};
use eq_db::DbError;
use eq_ir::{QueryId, ValidationError};
use std::fmt;

/// A structural invariant of the engine's resident state that did not
/// hold, as reported by
/// [`crate::CoordinationEngine::check_invariants`]. Each variant names
/// the piece of state that drifted; [`fmt::Display`] renders the full
/// diagnostic, so test harnesses can assert on typed variants while
/// still printing an actionable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The resident match graph is internally inconsistent (edge slab,
    /// component registry, or dirty set out of sync); the payload is
    /// the graph checker's diagnostic.
    Resident(String),
    /// `by_id` does not map a live slot's query id back to that slot.
    IdMapMismatch {
        /// The slot whose id round-trip failed.
        slot: u32,
    },
    /// A live slot's head atom is missing from the sharded head index
    /// (dangling or lost `AtomRef` after slot reuse).
    MissingHeadAtom {
        /// Owning slot.
        slot: u32,
        /// Head atom index within the query.
        atom: u32,
    },
    /// A live slot's postcondition atom is missing from the sharded
    /// postcondition index.
    MissingPcAtom {
        /// Owning slot.
        slot: u32,
        /// Postcondition atom index within the query.
        atom: u32,
    },
    /// A slot's admission-time satisfier counters disagree with its
    /// resident in-edges.
    SatisfierDrift {
        /// The slot whose counters drifted.
        slot: u32,
        /// The counters held by the pending query.
        counters: Vec<u32>,
        /// The per-postcondition in-edge counts of the resident graph.
        in_edges: Vec<u32>,
    },
    /// An atom index holds a different number of atoms than the live
    /// slots contribute.
    IndexSizeMismatch {
        /// `"head"` or `"postcondition"`.
        index: &'static str,
        /// Atoms currently indexed.
        indexed: usize,
        /// Atoms owned by live slots.
        live: usize,
    },
    /// `by_id` holds a different number of entries than there are live
    /// slots.
    IdMapSizeMismatch {
        /// Entries in `by_id`.
        ids: usize,
        /// Live slots.
        live: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Resident(msg) => write!(f, "resident graph: {msg}"),
            InvariantViolation::IdMapMismatch { slot } => {
                write!(f, "by_id out of sync for slot {slot}")
            }
            InvariantViolation::MissingHeadAtom { slot, atom } => {
                write!(f, "head {slot}/{atom} missing from index")
            }
            InvariantViolation::MissingPcAtom { slot, atom } => {
                write!(f, "pc {slot}/{atom} missing from index")
            }
            InvariantViolation::SatisfierDrift {
                slot,
                counters,
                in_edges,
            } => write!(
                f,
                "pc_satisfiers out of sync for slot {slot}: {counters:?} vs in-edges {in_edges:?}"
            ),
            InvariantViolation::IndexSizeMismatch {
                index,
                indexed,
                live,
            } => write!(
                f,
                "{index} index holds {indexed} atoms, live slots have {live}"
            ),
            InvariantViolation::IdMapSizeMismatch { ids, live } => {
                write!(f, "by_id holds {ids} entries for {live} live slots")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// The one error type of the `Coordinator` service API.
///
/// Everything the coordination stack can report — submission refusals,
/// per-query terminal failures, database errors, invariant violations —
/// converts into this enum, replacing the pre-service split across
/// [`SubmitError`], [`RejectReason`], [`FailReason`], and
/// `Result<(), String>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordinationError {
    /// The query is structurally invalid (empty head, not
    /// range-restricted, ...); refused at submission.
    Invalid(ValidationError),
    /// The admission safety check (§3.1.1 / Figure 9) refused the
    /// query: admitting it would give some postcondition two or more
    /// unifying heads.
    UnsafeAdmission,
    /// The query was admitted but reached a terminal failure: rejected
    /// during a round ([`FailReason::Rejected`]), expired
    /// ([`FailReason::Stale`]), or withdrawn
    /// ([`FailReason::Cancelled`]).
    Failed(FailReason),
    /// The operation named a query id the service does not know (never
    /// submitted, or already drained from a closed session).
    UnknownQuery(QueryId),
    /// The operation (e.g. cancel) targeted a query that already
    /// reached the enclosed terminal status.
    AlreadyTerminal(crate::engine::QueryStatus),
    /// A database-layer error (unknown relation, arity mismatch).
    Db(DbError),
    /// An engine structural invariant did not hold.
    Invariant(InvariantViolation),
}

impl fmt::Display for CoordinationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinationError::Invalid(e) => write!(f, "invalid query: {e}"),
            CoordinationError::UnsafeAdmission => {
                write!(
                    f,
                    "admission refused: query would make the pending set unsafe"
                )
            }
            CoordinationError::Failed(FailReason::Rejected(r)) => write!(f, "rejected: {r}"),
            CoordinationError::Failed(FailReason::Stale) => {
                write!(
                    f,
                    "expired: exceeded its staleness bound without coordinating"
                )
            }
            CoordinationError::Failed(FailReason::Cancelled) => {
                write!(f, "cancelled by the application")
            }
            CoordinationError::UnknownQuery(id) => write!(f, "unknown query {id}"),
            CoordinationError::AlreadyTerminal(status) => {
                write!(f, "query already terminal: {status:?}")
            }
            CoordinationError::Db(e) => write!(f, "database error: {e}"),
            CoordinationError::Invariant(v) => write!(f, "invariant violated: {v}"),
        }
    }
}

impl std::error::Error for CoordinationError {}

impl From<SubmitError> for CoordinationError {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Invalid(v) => CoordinationError::Invalid(v),
            SubmitError::Unsafe => CoordinationError::UnsafeAdmission,
        }
    }
}

impl From<FailReason> for CoordinationError {
    fn from(r: FailReason) -> Self {
        CoordinationError::Failed(r)
    }
}

impl From<RejectReason> for CoordinationError {
    fn from(r: RejectReason) -> Self {
        CoordinationError::Failed(FailReason::Rejected(r))
    }
}

impl From<ValidationError> for CoordinationError {
    fn from(e: ValidationError) -> Self {
        CoordinationError::Invalid(e)
    }
}

impl From<DbError> for CoordinationError {
    fn from(e: DbError) -> Self {
        CoordinationError::Db(e)
    }
}

impl From<InvariantViolation> for CoordinationError {
    fn from(v: InvariantViolation) -> Self {
        CoordinationError::Invariant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_legacy_shape_converts_in() {
        let e: CoordinationError = SubmitError::Unsafe.into();
        assert_eq!(e, CoordinationError::UnsafeAdmission);
        let e: CoordinationError = FailReason::Stale.into();
        assert_eq!(e, CoordinationError::Failed(FailReason::Stale));
        let e: CoordinationError = RejectReason::NoSolution.into();
        assert_eq!(
            e,
            CoordinationError::Failed(FailReason::Rejected(RejectReason::NoSolution))
        );
        let e: CoordinationError = DbError::UnknownRelation(eq_ir::Symbol::new("T")).into();
        assert!(matches!(e, CoordinationError::Db(_)));
        let e: CoordinationError = InvariantViolation::IdMapMismatch { slot: 3 }.into();
        assert!(matches!(e, CoordinationError::Invariant(_)));
    }

    #[test]
    fn display_is_informative() {
        assert!(CoordinationError::UnsafeAdmission
            .to_string()
            .contains("unsafe"));
        assert!(CoordinationError::UnknownQuery(QueryId(7))
            .to_string()
            .contains('7'));
        let v = InvariantViolation::SatisfierDrift {
            slot: 2,
            counters: vec![1],
            in_edges: vec![0],
        };
        assert!(v.to_string().contains("slot 2"));
        assert!(CoordinationError::from(v).to_string().contains("invariant"));
    }
}
