//! Brute-force coordinated answering — the generic semantics of §2.3.
//!
//! This module implements coordinated query answering directly from the
//! definition: ground every query against the database, then search for a
//! *coordinating set* — at most one grounding per query such that the
//! union of the chosen groundings' head atoms contains every chosen
//! grounding's postcondition atoms.
//!
//! This is the NP-hard search of Theorem 2.1 (exponential in the number
//! of queries). It exists as:
//!
//! * a **correctness oracle**: on safe + UCS workloads its answer must
//!   agree with the fast matching pipeline (property-tested);
//! * an **ablation baseline** for the benchmarks, quantifying what the
//!   safety condition buys.

use eq_db::{Database, DbError, Tuple};
use eq_ir::{Atom, EntangledQuery, FastSet, QueryId, Symbol, Term, Value};

/// One grounding of a query: its grounded head and postcondition atoms
/// (§2.3 — "the bodies of the groundings are no longer needed").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grounding {
    /// The query this grounds.
    pub query: QueryId,
    /// Grounded head atoms as `(relation, tuple)`.
    pub head: Vec<(Symbol, Tuple)>,
    /// Grounded postcondition atoms as `(relation, tuple)`.
    pub postconditions: Vec<(Symbol, Tuple)>,
}

/// A coordinating set: for each input query, the index of its chosen
/// grounding (or `None` if the query is left unanswered).
pub type Choice = Vec<Option<usize>>;

/// A successful search result: the grounding tables of every query plus
/// the chosen coordinating set.
pub type Solution = (Vec<Vec<Grounding>>, Choice);

/// Enumerates all groundings of `query` on `db` (§2.3 "valuations").
pub fn groundings(query: &EntangledQuery, db: &Database) -> Result<Vec<Grounding>, DbError> {
    let valuations = db.evaluate_filtered(&query.body, &query.constraints, usize::MAX)?;
    let ground = |atom: &Atom, val: &eq_db::Valuation| -> (Symbol, Tuple) {
        (
            atom.relation,
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => val[v],
                })
                .collect(),
        )
    };
    Ok(valuations
        .iter()
        .map(|val| Grounding {
            query: query.id,
            head: query.head.iter().map(|a| ground(a, val)).collect(),
            postconditions: query
                .postconditions
                .iter()
                .map(|a| ground(a, val))
                .collect(),
        })
        .collect())
}

/// Checks the defining property of a coordinating set: every chosen
/// grounding's postconditions appear among the union of chosen heads.
pub fn is_coordinating(all: &[Vec<Grounding>], choice: &Choice) -> bool {
    let mut heads: FastSet<(Symbol, &[Value])> = FastSet::default();
    for (q, c) in choice.iter().enumerate() {
        if let Some(gi) = c {
            for (rel, tup) in &all[q][*gi].head {
                heads.insert((*rel, tup.as_slice()));
            }
        }
    }
    for (q, c) in choice.iter().enumerate() {
        if let Some(gi) = c {
            for (rel, tup) in &all[q][*gi].postconditions {
                if !heads.contains(&(*rel, tup.as_slice())) {
                    return false;
                }
            }
        }
    }
    true
}

/// Searches for a coordinating set over `queries` on `db`.
///
/// With `require_all = true`, every query must receive a grounding (the
/// decision problem of Theorem 2.1 restricted to total answers); with
/// `require_all = false`, the search maximizes the number of answered
/// queries and returns the best found (ties broken arbitrarily), which
/// may be the empty choice.
///
/// Exponential; intended for small instances only.
pub fn find_coordinating_set(
    queries: &[EntangledQuery],
    db: &Database,
    require_all: bool,
) -> Result<Option<Solution>, DbError> {
    let all: Vec<Vec<Grounding>> = queries
        .iter()
        .map(|q| groundings(q, db))
        .collect::<Result<_, _>>()?;

    let n = queries.len();
    let mut best: Option<Choice> = None;
    let mut best_count = 0usize;
    let mut current: Choice = vec![None; n];

    fn dfs(
        all: &[Vec<Grounding>],
        require_all: bool,
        q: usize,
        current: &mut Choice,
        best: &mut Option<Choice>,
        best_count: &mut usize,
    ) {
        let n = all.len();
        if q == n {
            let count = current.iter().flatten().count();
            if require_all && count < n {
                return;
            }
            if is_coordinating(all, current) && (best.is_none() || count > *best_count) {
                *best = Some(current.clone());
                *best_count = count;
            }
            return;
        }
        // Stop early once a total solution was found in require_all mode.
        if require_all && best.is_some() {
            return;
        }
        for gi in 0..all[q].len() {
            current[q] = Some(gi);
            dfs(all, require_all, q + 1, current, best, best_count);
        }
        current[q] = None;
        if !require_all {
            dfs(all, require_all, q + 1, current, best, best_count);
        } else if all[q].is_empty() {
            // No groundings: a total solution is impossible.
        }
    }

    dfs(
        &all,
        require_all,
        0,
        &mut current,
        &mut best,
        &mut best_count,
    );
    Ok(best.map(|choice| (all, choice)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::VarGen;
    use eq_sql::parse_ir_query;

    fn queries(texts: &[&str]) -> Vec<EntangledQuery> {
        let gen = VarGen::new();
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| {
                parse_ir_query(t)
                    .unwrap()
                    .rename_apart(&gen)
                    .with_id(QueryId(i as u64))
            })
            .collect()
    }

    fn flight_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["fno", "dest"]).unwrap();
        db.create_table("A", &["fno", "airline"]).unwrap();
        for (fno, dest) in [
            (122, "Paris"),
            (123, "Paris"),
            (134, "Paris"),
            (136, "Rome"),
        ] {
            db.insert("F", vec![Value::int(fno), Value::str(dest)])
                .unwrap();
        }
        for (fno, al) in [
            (122, "United"),
            (123, "United"),
            (134, "Lufthansa"),
            (136, "Alitalia"),
        ] {
            db.insert("A", vec![Value::int(fno), Value::str(al)])
                .unwrap();
        }
        db
    }

    #[test]
    fn kramer_has_three_groundings() {
        // Paper §2.3: "Kramer's query has three valuations".
        let qs = queries(&["{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)"]);
        let g = groundings(&qs[0], &flight_db()).unwrap();
        assert_eq!(g.len(), 3);
        let mut fnos: Vec<Value> = g.iter().map(|gr| gr.head[0].1[1]).collect();
        fnos.sort();
        assert_eq!(
            fnos,
            vec![Value::int(122), Value::int(123), Value::int(134)]
        );
    }

    #[test]
    fn figure_2b_coordinating_sets() {
        // Groundings 1+4 and 2+5 of Figure 2(b) are the coordinating
        // sets: flights 122 and 123.
        let qs = queries(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)",
        ]);
        let db = flight_db();
        let (all, choice) = find_coordinating_set(&qs, &db, true).unwrap().unwrap();
        assert!(is_coordinating(&all, &choice));
        let k = &all[0][choice[0].unwrap()];
        let j = &all[1][choice[1].unwrap()];
        // Shared flight number, and it must be a United flight.
        assert_eq!(k.head[0].1[1], j.head[0].1[1]);
        let fno = k.head[0].1[1];
        assert!(fno == Value::int(122) || fno == Value::int(123));
    }

    #[test]
    fn no_total_solution_when_constraint_unsatisfiable() {
        let qs = queries(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Rome)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        let db = flight_db();
        assert!(find_coordinating_set(&qs, &db, true).unwrap().is_none());
        // Without require_all, the empty choice coordinates vacuously.
        let (_, choice) = find_coordinating_set(&qs, &db, false).unwrap().unwrap();
        assert!(choice.iter().all(Option::is_none));
    }

    #[test]
    fn partial_coordination_maximizes_answered() {
        // Three queries; only the first two can coordinate.
        let qs = queries(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
            "{R(Newman, z)} R(Frank, z) <- F(z, Paris)",
        ]);
        let db = flight_db();
        let (_, choice) = find_coordinating_set(&qs, &db, false).unwrap().unwrap();
        assert!(choice[0].is_some());
        assert!(choice[1].is_some());
        assert!(choice[2].is_none());
    }

    #[test]
    fn self_satisfaction_within_one_grounding() {
        // A query whose postcondition matches its own head is satisfied
        // by its own grounding under the raw §2.3 semantics.
        let qs = queries(&["{R(Kramer, x)} R(Kramer, x) <- F(x, Paris)"]);
        let db = flight_db();
        let (_, choice) = find_coordinating_set(&qs, &db, true).unwrap().unwrap();
        assert!(choice[0].is_some());
    }

    #[test]
    fn empty_query_set() {
        let db = flight_db();
        let res = find_coordinating_set(&[], &db, true).unwrap();
        assert!(res.is_some());
    }

    #[test]
    fn is_coordinating_rejects_unsatisfied_pc() {
        let qs = queries(&[
            "{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)",
            "{R(Kramer, y)} R(Jerry, y) <- F(y, Paris)",
        ]);
        let db = flight_db();
        let all: Vec<Vec<Grounding>> = qs.iter().map(|q| groundings(q, &db).unwrap()).collect();
        // Kramer picks flight 122 but Jerry picks 123: not coordinating.
        let k122 = all[0]
            .iter()
            .position(|g| g.head[0].1[1] == Value::int(122))
            .unwrap();
        let j123 = all[1]
            .iter()
            .position(|g| g.head[0].1[1] == Value::int(123))
            .unwrap();
        assert!(!is_coordinating(&all, &vec![Some(k122), Some(j123)]));
        let j122 = all[1]
            .iter()
            .position(|g| g.head[0].1[1] == Value::int(122))
            .unwrap();
        assert!(is_coordinating(&all, &vec![Some(k122), Some(j122)]));
    }
}
