//! AST for the entangled-SQL dialect (§2.1).

use eq_ir::Value;

/// A literal constant in SQL surface syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
}

impl Literal {
    /// Converts to an interned IR value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Str(s) => Value::str(s),
            Literal::Int(i) => Value::int(*i),
        }
    }
}

/// A scalar expression: a literal or a named scalar (an implicitly
/// existentially quantified variable shared across the whole statement,
/// like `fno` in the paper's examples).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScalarExpr {
    /// Literal constant.
    Lit(Literal),
    /// A name; every occurrence of the same name in one statement denotes
    /// the same value.
    Name(String),
}

/// A table reference in a subquery's FROM list: `Flights F` or `Flights`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// Relation name.
    pub table: String,
    /// Alias; defaults to the table name.
    pub alias: String,
}

/// A condition inside a subquery's WHERE clause. Only conjunctive
/// equality conditions are supported, per the paper's restriction to
/// select-project-join subqueries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimpleCondition {
    /// `alias.col = literal` (or reversed).
    ColEqLit {
        /// Column reference `(alias, column)`; alias may be empty when the
        /// FROM list has a single table.
        col: (String, String),
        /// The literal.
        lit: Literal,
    },
    /// `alias1.col1 = alias2.col2` — a join condition.
    ColEqCol {
        /// Left column reference.
        left: (String, String),
        /// Right column reference.
        right: (String, String),
    },
    /// `alias.col = name` — binds an outer scalar name.
    ColEqName {
        /// Column reference.
        col: (String, String),
        /// The outer name.
        name: String,
    },
}

/// `SELECT col FROM tables WHERE conds` — the database subquery shape
/// allowed inside `IN (...)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubSelect {
    /// The single projected column, as `(alias, column)`; alias may be
    /// empty.
    pub column: (String, String),
    /// FROM list.
    pub tables: Vec<TableRef>,
    /// Conjunctive WHERE conditions (possibly empty).
    pub conditions: Vec<SimpleCondition>,
}

/// `(e1, ..., en) IN ANSWER R` — a postcondition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerMembership {
    /// The tuple of scalar expressions.
    pub tuple: Vec<ScalarExpr>,
    /// The ANSWER relation name.
    pub answer: String,
}

/// One conjunct of the outer WHERE clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// `name IN (SELECT ...)` — binds `name` through a database subquery;
    /// lowers to body atoms.
    InSubquery {
        /// The bound name.
        name: String,
        /// The subquery.
        sub: SubSelect,
    },
    /// `(e, ...) IN ANSWER R` — lowers to a postcondition atom.
    InAnswer(AnswerMembership),
    /// `e1 = e2` — an equality constraint between scalars.
    Equality(ScalarExpr, ScalarExpr),
    /// `R(e, ...)` — direct membership of a tuple in a database relation;
    /// shorthand lowering to one body atom (used heavily by workloads:
    /// `Friends('Jerry', x)`).
    DbAtom {
        /// Relation name.
        relation: String,
        /// Argument tuple.
        tuple: Vec<ScalarExpr>,
    },
}

/// A full entangled-SQL statement:
/// `SELECT items INTO ANSWER r1 [, ANSWER r2 ...] [WHERE conds] CHOOSE k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntangledSelect {
    /// The SELECT list.
    pub items: Vec<ScalarExpr>,
    /// Target ANSWER relations (≥ 1); the same tuple is contributed to
    /// each.
    pub into: Vec<String>,
    /// WHERE conjuncts.
    pub conditions: Vec<Condition>,
    /// `CHOOSE k`.
    pub choose: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_to_value() {
        assert_eq!(Literal::Str("Paris".into()).to_value(), Value::str("Paris"));
        assert_eq!(Literal::Int(5).to_value(), Value::int(5));
    }
}
