//! Lowering entangled-SQL to the intermediate representation (§2.2):
//! SELECT-INTO becomes the head `H`, `IN ANSWER` conjuncts become the
//! postcondition `C`, and `IN (SELECT ...)` subqueries plus direct
//! database atoms become the body `B`.

use crate::ast::*;
use crate::catalog::Catalog;
use crate::error::ParseError;
use eq_ir::{Atom, EntangledQuery, FastMap, Symbol, Term, Var};

/// Lowers a parsed statement, resolving column names through `catalog`.
///
/// Scalar *names* (e.g. `fno`) become variables scoped to the whole
/// statement. Each subquery's `(alias, column)` pairs get their own fresh
/// variables, constrained by the subquery's WHERE conditions and tied to
/// the outer name by the `IN` binding. Equalities are applied as
/// substitutions, so the output query contains no explicit equality atoms
/// — mirroring the simplification step of §4.2.
pub fn lower_select(
    stmt: &EntangledSelect,
    catalog: &Catalog,
) -> Result<EntangledQuery, ParseError> {
    let mut cx = Lowering::default();

    // Head atoms: one per ANSWER target, sharing the SELECT tuple.
    let head_terms: Vec<Term> = stmt.items.iter().map(|e| cx.scalar(e)).collect();
    let head: Vec<Atom> = stmt
        .into
        .iter()
        .map(|r| Atom::new(r.as_str(), head_terms.clone()))
        .collect();

    let mut postconditions = Vec::new();
    let mut body = Vec::new();

    for cond in &stmt.conditions {
        match cond {
            Condition::InAnswer(m) => {
                let terms = m.tuple.iter().map(|e| cx.scalar(e)).collect();
                postconditions.push(Atom::new(m.answer.as_str(), terms));
            }
            Condition::DbAtom { relation, tuple } => {
                let rel = Symbol::new(relation);
                let arity = catalog
                    .arity(rel)
                    .ok_or_else(|| ParseError::general(format!("unknown relation {relation}")))?;
                if arity != tuple.len() {
                    return Err(ParseError::general(format!(
                        "relation {relation} has {arity} columns, got {}",
                        tuple.len()
                    )));
                }
                let terms = tuple.iter().map(|e| cx.scalar(e)).collect();
                body.push(Atom::new(rel, terms));
            }
            Condition::Equality(a, b) => {
                let ta = cx.scalar(a);
                let tb = cx.scalar(b);
                cx.equate(ta, tb)?;
            }
            Condition::InSubquery { name, sub } => {
                cx.lower_subquery(name, sub, catalog, &mut body)?;
            }
        }
    }

    // Apply the accumulated substitution and renumber densely.
    let resolve_all = |atoms: Vec<Atom>, cx: &Lowering| -> Vec<Atom> {
        atoms
            .into_iter()
            .map(|a| Atom {
                relation: a.relation,
                terms: a.terms.iter().map(|&t| cx.resolve(t)).collect(),
            })
            .collect()
    };
    let head = resolve_all(head, &cx);
    let postconditions = resolve_all(postconditions, &cx);
    let body = resolve_all(body, &cx);

    let q = renumber(EntangledQuery {
        id: eq_ir::QueryId(0),
        head,
        postconditions,
        body,
        constraints: Vec::new(),
        choose: stmt.choose,
    });
    q.validate()
        .map_err(|e| ParseError::general(e.to_string()))?;
    Ok(q)
}

#[derive(Default)]
struct Lowering {
    names: FastMap<String, Var>,
    subst: FastMap<Var, Term>,
    next_var: u32,
}

impl Lowering {
    fn fresh(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    fn name_var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.names.get(name) {
            return v;
        }
        let v = self.fresh();
        self.names.insert(name.to_owned(), v);
        v
    }

    fn scalar(&mut self, e: &ScalarExpr) -> Term {
        match e {
            ScalarExpr::Lit(l) => Term::Const(l.to_value()),
            ScalarExpr::Name(n) => Term::Var(self.name_var(n)),
        }
    }

    /// Follows the substitution chain to a fixpoint.
    fn resolve(&self, t: Term) -> Term {
        let mut cur = t;
        loop {
            match cur {
                Term::Var(v) => match self.subst.get(&v) {
                    Some(&next) if next != cur => cur = next,
                    _ => return cur,
                },
                Term::Const(_) => return cur,
            }
        }
    }

    /// Records `a = b`, substituting one side by the other.
    fn equate(&mut self, a: Term, b: Term) -> Result<(), ParseError> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Const(x), Term::Const(y)) => {
                if x == y {
                    Ok(())
                } else {
                    Err(ParseError::general(format!(
                        "contradictory equality: {x} = {y}"
                    )))
                }
            }
            (Term::Var(v), other) | (other, Term::Var(v)) => {
                if Term::Var(v) != other {
                    self.subst.insert(v, other);
                }
                Ok(())
            }
        }
    }

    fn lower_subquery(
        &mut self,
        outer_name: &str,
        sub: &SubSelect,
        catalog: &Catalog,
        body: &mut Vec<Atom>,
    ) -> Result<(), ParseError> {
        // Fresh variables for each (alias, column).
        let mut cols: FastMap<(String, String), Var> = FastMap::default();
        for tref in &sub.tables {
            let rel = Symbol::new(&tref.table);
            let columns = catalog
                .columns(rel)
                .ok_or_else(|| ParseError::general(format!("unknown relation {}", tref.table)))?;
            let mut terms = Vec::with_capacity(columns.len());
            for &col in columns {
                let v = self.fresh();
                cols.insert((tref.alias.clone(), col.as_str().to_owned()), v);
                terms.push(Term::Var(v));
            }
            body.push(Atom::new(rel, terms));
        }

        let lookup = |cols: &FastMap<(String, String), Var>,
                      (alias, column): &(String, String)|
         -> Result<Var, ParseError> {
            if alias.is_empty() {
                // Unqualified column: resolve if unambiguous.
                let matches: Vec<Var> = cols
                    .iter()
                    .filter(|((_, c), _)| c == column)
                    .map(|(_, &v)| v)
                    .collect();
                match matches.len() {
                    1 => Ok(matches[0]),
                    0 => Err(ParseError::general(format!("unknown column {column}"))),
                    _ => Err(ParseError::general(format!(
                        "ambiguous column {column}; qualify with an alias"
                    ))),
                }
            } else {
                cols.get(&(alias.clone(), column.clone()))
                    .copied()
                    .ok_or_else(|| ParseError::general(format!("unknown column {alias}.{column}")))
            }
        };

        for cond in &sub.conditions {
            match cond {
                SimpleCondition::ColEqLit { col, lit } => {
                    let v = lookup(&cols, col)?;
                    self.equate(Term::Var(v), Term::Const(lit.to_value()))?;
                }
                SimpleCondition::ColEqCol { left, right } => {
                    let lv = lookup(&cols, left)?;
                    let rv = lookup(&cols, right)?;
                    self.equate(Term::Var(lv), Term::Var(rv))?;
                }
                SimpleCondition::ColEqName { col, name } => {
                    let v = lookup(&cols, col)?;
                    let n = self.name_var(name);
                    self.equate(Term::Var(v), Term::Var(n))?;
                }
            }
        }

        // Tie the projected column to the outer name.
        let proj = lookup(&cols, &sub.column)?;
        let outer = self.name_var(outer_name);
        self.equate(Term::Var(outer), Term::Var(proj))
    }
}

/// Renumbers variables densely in first-occurrence order (head, then
/// postconditions, then body) so lowering output is deterministic.
fn renumber(q: EntangledQuery) -> EntangledQuery {
    let mut map: FastMap<Var, Var> = FastMap::default();
    let mut next = 0u32;
    let rename = |atom: &Atom, map: &mut FastMap<Var, Var>, next: &mut u32| Atom {
        relation: atom.relation,
        terms: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(*map.entry(*v).or_insert_with(|| {
                    let nv = Var(*next);
                    *next += 1;
                    nv
                })),
                Term::Const(_) => *t,
            })
            .collect(),
    };
    let head = q
        .head
        .iter()
        .map(|a| rename(a, &mut map, &mut next))
        .collect();
    let postconditions = q
        .postconditions
        .iter()
        .map(|a| rename(a, &mut map, &mut next))
        .collect();
    let body = q
        .body
        .iter()
        .map(|a| rename(a, &mut map, &mut next))
        .collect();
    EntangledQuery {
        id: q.id,
        head,
        postconditions,
        body,
        constraints: q.constraints,
        choose: q.choose,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("Flights", &["fno", "dest"]);
        c.add_table("Airlines", &["fno", "airline"]);
        c.add_table("Friends", &["name1", "name2"]);
        c.add_table("User", &["name", "home"]);
        c
    }

    fn lower(sql: &str) -> EntangledQuery {
        lower_select(&parse_select(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn kramer_lowers_to_paper_ir() {
        // Expect: {Reservation(Jerry, x)} Reservation(Kramer, x)
        //         <- Flights(x, Paris)
        let q = lower(
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        );
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.head[0].relation, Symbol::new("Reservation"));
        assert_eq!(q.head[0].terms[0], Term::str("Kramer"));
        let x = q.head[0].terms[1].as_var().expect("head var");
        assert_eq!(q.postconditions.len(), 1);
        assert_eq!(q.postconditions[0].terms[0], Term::str("Jerry"));
        assert_eq!(q.postconditions[0].terms[1], Term::Var(x));
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.body[0].relation, Symbol::new("Flights"));
        assert_eq!(q.body[0].terms[0], Term::Var(x));
        assert_eq!(q.body[0].terms[1], Term::str("Paris"));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn jerry_lowers_with_join() {
        // Expect body: Flights(y, Paris) & Airlines(y, United).
        let q = lower(
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT F.fno FROM Flights F, Airlines A \
                           WHERE F.dest='Paris' AND F.fno=A.fno AND A.airline='United') \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        );
        assert_eq!(q.body.len(), 2);
        let y = q.head[0].terms[1].as_var().unwrap();
        // Both body atoms constrain the same variable y in column fno.
        assert_eq!(q.body[0].terms[0], Term::Var(y));
        assert_eq!(q.body[1].terms[0], Term::Var(y));
        assert_eq!(q.body[0].terms[1], Term::str("Paris"));
        assert_eq!(q.body[1].terms[1], Term::str("United"));
    }

    #[test]
    fn direct_db_atom_and_equality() {
        // The two-way workload query of §5.3.1, written with direct atoms:
        // {R(x, ITH)} R(Jerry, ITH) <- Friends(Jerry, x), User(Jerry, c), User(x, c)
        let q = lower(
            "SELECT x, 'ITH' INTO ANSWER R \
             WHERE Friends('Jerry', x) AND User('Jerry', c) AND User(x, c) \
             AND (Jerry1, 'ITH') IN ANSWER R AND Jerry1 = 'Jerry'",
        );
        assert_eq!(q.body.len(), 3);
        assert_eq!(q.postconditions[0].terms[0], Term::str("Jerry"));
        assert_eq!(q.head[0].terms[1], Term::str("ITH"));
    }

    #[test]
    fn multiple_answer_targets_share_tuple() {
        let q = lower("SELECT x INTO ANSWER R, ANSWER S WHERE Friends('a', x)");
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.head[0].terms, q.head[1].terms);
        assert_ne!(q.head[0].relation, q.head[1].relation);
    }

    #[test]
    fn unknown_relation_rejected() {
        let err = lower_select(
            &parse_select("SELECT x INTO ANSWER R WHERE Bogus(x)").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("unknown relation"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = lower_select(
            &parse_select("SELECT x INTO ANSWER R WHERE Friends(x)").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("columns"));
    }

    #[test]
    fn contradictory_equality_rejected() {
        let err = lower_select(
            &parse_select("SELECT 'a' INTO ANSWER R WHERE 'x' = 'y'").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("contradictory"));
    }

    #[test]
    fn range_restriction_enforced_after_lowering() {
        // `x` appears in the head but nothing binds it.
        let err =
            lower_select(&parse_select("SELECT x INTO ANSWER R").unwrap(), &catalog()).unwrap_err();
        assert!(err.message.contains("range restriction"), "{err}");
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let err = lower_select(
            &parse_select(
                "SELECT x INTO ANSWER R \
                 WHERE x IN (SELECT fno FROM Flights, Airlines WHERE dest='Paris')",
            )
            .unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn variables_renumbered_densely() {
        let q = lower(
            "SELECT x, 'ITH' INTO ANSWER R \
             WHERE Friends('Jerry', x) AND ('Jerry', 'ITH') IN ANSWER R",
        );
        let vars = q.variables();
        assert_eq!(vars, vec![Var(0)]);
    }
}
