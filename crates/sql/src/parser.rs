//! Recursive-descent parser for the entangled-SQL dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := SELECT scalar (',' scalar)*
//!               INTO ANSWER ident (',' ANSWER ident)*
//!               [WHERE cond (AND cond)*]
//!               [CHOOSE int]                          -- default 1
//! cond       := ident IN '(' subselect ')'
//!             | '(' scalar (',' scalar)* ')' IN ANSWER ident
//!             | scalar IN ANSWER ident                -- 1-tuple sugar
//!             | scalar '=' scalar
//!             | ident '(' scalar (',' scalar)* ')'    -- direct db atom
//! subselect  := SELECT colref FROM tableref (',' tableref)*
//!               [WHERE simple (AND simple)*]
//! tableref   := ident [ident]                          -- name [alias]
//! simple     := colref '=' (literal | colref | ident)
//! colref     := [ident '.'] ident
//! scalar     := literal | ident
//! ```

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses one entangled-SQL statement.
pub fn parse_select(input: &str) -> Result<EntangledSelect, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.peek().offset, msg)
    }

    /// True if the current token is the given keyword (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}, found {}", self.peek().kind)))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error_here(format!("trailing input: {}", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    fn statement(&mut self) -> Result<EntangledSelect, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.scalar()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            items.push(self.scalar()?);
        }
        self.expect_keyword("INTO")?;
        self.expect_keyword("ANSWER")?;
        let mut into = vec![self.ident()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            self.expect_keyword("ANSWER")?;
            into.push(self.ident()?);
        }
        let mut conditions = Vec::new();
        if self.at_keyword("WHERE") {
            self.bump();
            conditions.push(self.condition()?);
            while self.at_keyword("AND") {
                self.bump();
                conditions.push(self.condition()?);
            }
        }
        let choose = if self.at_keyword("CHOOSE") {
            self.bump();
            match self.bump().kind {
                TokenKind::Int(k) if k > 0 => u32::try_from(k)
                    .map_err(|_| ParseError::general("CHOOSE count out of range"))?,
                _ => return Err(ParseError::general("CHOOSE expects a positive integer")),
            }
        } else {
            1
        };
        Ok(EntangledSelect {
            items,
            into,
            conditions,
            choose,
        })
    }

    fn scalar(&mut self) -> Result<ScalarExpr, ParseError> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(ScalarExpr::Lit(Literal::Str(s)))
            }
            TokenKind::Int(i) => {
                let i = *i;
                self.bump();
                Ok(ScalarExpr::Lit(Literal::Int(i)))
            }
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(ScalarExpr::Name(s))
            }
            other => Err(self.error_here(format!("expected scalar, found {other}"))),
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        // Tuple postcondition: '(' scalar, ... ')' IN ANSWER r
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            let mut tuple = vec![self.scalar()?];
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                tuple.push(self.scalar()?);
            }
            self.expect(&TokenKind::RParen)?;
            self.expect_keyword("IN")?;
            self.expect_keyword("ANSWER")?;
            let answer = self.ident()?;
            return Ok(Condition::InAnswer(AnswerMembership { tuple, answer }));
        }

        // Direct db atom: ident '(' ... ')' — lookahead for '(' after ident.
        if matches!(self.peek().kind, TokenKind::Ident(_))
            && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen)
            && !self.at_keyword("SELECT")
        {
            let relation = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut tuple = vec![self.scalar()?];
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                tuple.push(self.scalar()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Condition::DbAtom { relation, tuple });
        }

        let left = self.scalar()?;
        if self.at_keyword("IN") {
            self.bump();
            if self.at_keyword("ANSWER") {
                self.bump();
                let answer = self.ident()?;
                return Ok(Condition::InAnswer(AnswerMembership {
                    tuple: vec![left],
                    answer,
                }));
            }
            self.expect(&TokenKind::LParen)?;
            let sub = self.subselect()?;
            self.expect(&TokenKind::RParen)?;
            let name = match left {
                ScalarExpr::Name(n) => n,
                ScalarExpr::Lit(_) => {
                    return Err(ParseError::general(
                        "left side of IN (SELECT ...) must be a name",
                    ))
                }
            };
            return Ok(Condition::InSubquery { name, sub });
        }
        self.expect(&TokenKind::Eq)?;
        let right = self.scalar()?;
        Ok(Condition::Equality(left, right))
    }

    fn subselect(&mut self) -> Result<SubSelect, ParseError> {
        self.expect_keyword("SELECT")?;
        let column = self.colref()?;
        self.expect_keyword("FROM")?;
        let mut tables = vec![self.tableref()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            tables.push(self.tableref()?);
        }
        let mut conditions = Vec::new();
        if self.at_keyword("WHERE") {
            self.bump();
            conditions.push(self.simple_condition()?);
            while self.at_keyword("AND") {
                self.bump();
                conditions.push(self.simple_condition()?);
            }
        }
        Ok(SubSelect {
            column,
            tables,
            conditions,
        })
    }

    fn tableref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = if matches!(self.peek().kind, TokenKind::Ident(_))
            && !self.at_keyword("WHERE")
            && !self.at_keyword("AND")
        {
            self.ident()?
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    fn colref(&mut self) -> Result<(String, String), ParseError> {
        let first = self.ident()?;
        if self.peek().kind == TokenKind::Dot {
            self.bump();
            let col = self.ident()?;
            Ok((first, col))
        } else {
            Ok((String::new(), first))
        }
    }

    fn simple_condition(&mut self) -> Result<SimpleCondition, ParseError> {
        let col = self.colref()?;
        self.expect(&TokenKind::Eq)?;
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let lit = Literal::Str(s.clone());
                self.bump();
                Ok(SimpleCondition::ColEqLit { col, lit })
            }
            TokenKind::Int(i) => {
                let lit = Literal::Int(*i);
                self.bump();
                Ok(SimpleCondition::ColEqLit { col, lit })
            }
            TokenKind::Ident(_) => {
                let save = self.pos;
                let name_or_col = self.ident()?;
                if self.peek().kind == TokenKind::Dot {
                    self.pos = save;
                    let right = self.colref()?;
                    Ok(SimpleCondition::ColEqCol { left: col, right })
                } else {
                    Ok(SimpleCondition::ColEqName {
                        col,
                        name: name_or_col,
                    })
                }
            }
            other => Err(self.error_here(format!("expected literal or column, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kramer's query from the paper's introduction, §1.1.
    const KRAMER: &str = "SELECT 'Kramer', fno INTO ANSWER Reservation \
        WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
        AND ('Jerry', fno) IN ANSWER Reservation \
        CHOOSE 1";

    #[test]
    fn parses_kramer() {
        let q = parse_select(KRAMER).unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.items[0], ScalarExpr::Lit(Literal::Str("Kramer".into())));
        assert_eq!(q.items[1], ScalarExpr::Name("fno".into()));
        assert_eq!(q.into, vec!["Reservation".to_string()]);
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.choose, 1);
        match &q.conditions[0] {
            Condition::InSubquery { name, sub } => {
                assert_eq!(name, "fno");
                assert_eq!(sub.column, (String::new(), "fno".to_string()));
                assert_eq!(sub.tables.len(), 1);
                assert_eq!(sub.conditions.len(), 1);
            }
            other => panic!("unexpected condition {other:?}"),
        }
        match &q.conditions[1] {
            Condition::InAnswer(m) => {
                assert_eq!(m.answer, "Reservation");
                assert_eq!(m.tuple.len(), 2);
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn parses_jerry_with_join_subquery() {
        // Jerry's query, §1.1: join of Flights and Airlines with aliases.
        let q = parse_select(
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT F.fno FROM Flights F, Airlines A \
                           WHERE F.dest='Paris' AND F.fno=A.fno AND A.airline='United') \
             AND ('Kramer', fno) IN ANSWER Reservation \
             CHOOSE 1",
        )
        .unwrap();
        match &q.conditions[0] {
            Condition::InSubquery { sub, .. } => {
                assert_eq!(sub.tables.len(), 2);
                assert_eq!(sub.tables[0].alias, "F");
                assert_eq!(sub.conditions.len(), 3);
                assert!(matches!(
                    sub.conditions[1],
                    SimpleCondition::ColEqCol { .. }
                ));
            }
            other => panic!("unexpected condition {other:?}"),
        }
    }

    #[test]
    fn choose_defaults_to_one() {
        let q = parse_select("SELECT 'a' INTO ANSWER R").unwrap();
        assert_eq!(q.choose, 1);
        assert!(q.conditions.is_empty());
    }

    #[test]
    fn multiple_answer_targets() {
        let q = parse_select("SELECT x INTO ANSWER R, ANSWER S WHERE T(x)").unwrap();
        assert_eq!(q.into, vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn direct_db_atom_condition() {
        let q = parse_select("SELECT x INTO ANSWER R WHERE Friends('Jerry', x)").unwrap();
        match &q.conditions[0] {
            Condition::DbAtom { relation, tuple } => {
                assert_eq!(relation, "Friends");
                assert_eq!(tuple.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_scalar_in_answer_sugar() {
        let q = parse_select("SELECT x INTO ANSWER R WHERE x IN ANSWER S AND T(x)").unwrap();
        assert!(matches!(&q.conditions[0], Condition::InAnswer(m) if m.answer == "S"));
    }

    #[test]
    fn equality_condition() {
        let q = parse_select("SELECT x INTO ANSWER R WHERE x = 'ITH' AND T(x)").unwrap();
        assert!(matches!(&q.conditions[0], Condition::Equality(..)));
    }

    #[test]
    fn choose_k() {
        let q = parse_select("SELECT x INTO ANSWER R WHERE T(x) CHOOSE 3").unwrap();
        assert_eq!(q.choose, 3);
    }

    #[test]
    fn errors_are_located() {
        let err = parse_select("SELECT").unwrap_err();
        assert!(err.offset.is_some());
        assert!(parse_select("SELECT 'x' INTO R").is_err()); // missing ANSWER
        assert!(parse_select("SELECT 'x' INTO ANSWER R CHOOSE 0").is_err());
        assert!(parse_select("SELECT 'x' INTO ANSWER R extra").is_err());
        assert!(parse_select("SELECT 'a' INTO ANSWER R WHERE 'l' IN (SELECT c FROM T)").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_select("select x into answer R where T(x) choose 2").unwrap();
        assert_eq!(q.choose, 2);
    }
}
