//! Schema catalog used to resolve column names during lowering.

use eq_ir::{FastMap, Symbol};

/// A lightweight relation → column-names map.
///
/// The SQL crate deliberately does not depend on the database crate; the
/// facade provides `Catalog::from` adapters, and callers can also build
/// one by hand for parsing without a live database.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: FastMap<Symbol, Vec<Symbol>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table's columns.
    pub fn add_table(&mut self, name: &str, columns: &[&str]) -> &mut Self {
        self.tables.insert(
            Symbol::new(name),
            columns.iter().map(|c| Symbol::new(c)).collect(),
        );
        self
    }

    /// The columns of a table, if registered.
    pub fn columns(&self, name: Symbol) -> Option<&[Symbol]> {
        self.tables.get(&name).map(Vec::as_slice)
    }

    /// Position of `column` within `table`.
    pub fn column_index(&self, table: Symbol, column: Symbol) -> Option<usize> {
        self.columns(table)?.iter().position(|&c| c == column)
    }

    /// Arity of a table.
    pub fn arity(&self, table: Symbol) -> Option<usize> {
        self.columns(table).map(<[Symbol]>::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut c = Catalog::new();
        c.add_table("Flights", &["fno", "dest"]);
        let t = Symbol::new("Flights");
        assert_eq!(c.arity(t), Some(2));
        assert_eq!(c.column_index(t, Symbol::new("dest")), Some(1));
        assert_eq!(c.column_index(t, Symbol::new("bogus")), None);
        assert_eq!(c.columns(Symbol::new("Nope")), None);
    }
}
