//! Surface syntax for entangled queries.
//!
//! Two parsers, both lowering to [`eq_ir::EntangledQuery`]:
//!
//! * **Entangled SQL** (§2.1 of the paper): the `SELECT ... INTO ANSWER
//!   ... WHERE ... CHOOSE k` dialect. Lowering subqueries over database
//!   relations to body atoms requires column-name → position resolution,
//!   so [`parse_entangled_sql`] takes a [`Catalog`].
//!
//! * **IR text format** (§2.2): the Datalog-like notation used throughout
//!   the paper's figures, e.g.
//!   `{R(Jerry, x)} R(Kramer, x) <- Flights(x, Paris)`.
//!   Identifiers starting with an uppercase letter (or quoted strings,
//!   or integers) are constants; lowercase identifiers are variables —
//!   matching the paper's typography. Parsed by [`parse_ir_query`].
//!
//! Both parsers produce queries with locally-numbered variables starting
//! at `?0`; the engine renames queries apart at admission.

#![forbid(unsafe_code)]

mod ast;
mod catalog;
mod error;
mod ir_text;
mod lexer;
mod lower;
mod parser;

pub use ast::{
    AnswerMembership, Condition, EntangledSelect, Literal, ScalarExpr, SimpleCondition, SubSelect,
    TableRef,
};
pub use catalog::Catalog;
pub use error::ParseError;
pub use ir_text::{parse_ir_query, render_ir_query};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower_select;
pub use parser::parse_select;

use eq_ir::EntangledQuery;

/// Parses an entangled-SQL statement and lowers it to the intermediate
/// representation, resolving column names through `catalog`.
pub fn parse_entangled_sql(sql: &str, catalog: &Catalog) -> Result<EntangledQuery, ParseError> {
    let ast = parse_select(sql)?;
    lower_select(&ast, catalog)
}
