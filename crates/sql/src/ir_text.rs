//! Parser for the paper's Datalog-style intermediate representation
//! (§2.2):
//!
//! ```text
//! {R(Jerry, x)} R(Kramer, x) <- Flights(x, Paris) [choose k]
//! ```
//!
//! Conventions, matching the paper's typography:
//!
//! * identifiers starting with an **uppercase** letter are string
//!   constants (`Jerry`, `Paris`);
//! * identifiers starting with a **lowercase** letter or `_` are
//!   variables (`x`, `f`);
//! * quoted strings and integers are constants of the respective kinds;
//! * atoms are separated by `,` or `&`;
//! * the postcondition block `{...}` may be empty; the body after `<-`
//!   may be empty for fully ground queries.

use crate::error::ParseError;
use crate::lexer::{Lexer, Token, TokenKind};
use eq_ir::{Atom, CmpOp, Constraint, EntangledQuery, FastMap, QueryId, Term, Value, Var};
use std::fmt::Write as _;

/// Renders a query in IR text format such that
/// [`parse_ir_query`]`(render_ir_query(q))` reproduces `q` up to dense
/// variable renumbering. Variables print as `v{n}` (lowercase ⇒
/// variable), string constants are always quoted, integers print bare.
pub fn render_ir_query(q: &EntangledQuery) -> String {
    let mut out = String::new();
    let atom_list = |atoms: &[Atom], out: &mut String| {
        for (i, a) in atoms.iter().enumerate() {
            if i > 0 {
                out.push_str(" & ");
            }
            let _ = write!(out, "{}(", a.relation);
            for (j, t) in a.terms.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match t {
                    Term::Var(v) => {
                        let _ = write!(out, "v{}", v.index());
                    }
                    Term::Const(Value::Int(n)) => {
                        let _ = write!(out, "{n}");
                    }
                    Term::Const(Value::Str(s)) => {
                        let _ = write!(out, "\"{}\"", s.as_str());
                    }
                }
            }
            out.push(')');
        }
    };
    out.push('{');
    atom_list(&q.postconditions, &mut out);
    out.push_str("} ");
    atom_list(&q.head, &mut out);
    out.push_str(" <- ");
    atom_list(&q.body, &mut out);
    let term_text = |t: Term| -> String {
        match t {
            Term::Var(v) => format!("v{}", v.index()),
            Term::Const(Value::Int(n)) => format!("{n}"),
            Term::Const(Value::Str(s)) => format!("\"{}\"", s.as_str()),
        }
    };
    for c in &q.constraints {
        if out.ends_with("<- ") {
            let _ = write!(out, "{} {} {}", term_text(c.lhs), c.op, term_text(c.rhs));
        } else {
            let _ = write!(out, " & {} {} {}", term_text(c.lhs), c.op, term_text(c.rhs));
        }
    }
    if q.choose != 1 {
        let _ = write!(out, " choose {}", q.choose);
    }
    out
}

/// Parses one query in IR text format. Variables are numbered densely in
/// first-occurrence order.
pub fn parse_ir_query(input: &str) -> Result<EntangledQuery, ParseError> {
    let tokens = Lexer::tokenize(input)?;
    let mut p = IrParser {
        tokens,
        pos: 0,
        vars: FastMap::default(),
        next_var: 0,
    };
    let q = p.query()?;
    p.expect_eof()?;
    q.validate()
        .map_err(|e| ParseError::general(e.to_string()))?;
    Ok(q)
}

struct IrParser {
    tokens: Vec<Token>,
    pos: usize,
    vars: FastMap<String, Var>,
    next_var: u32,
}

impl IrParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.peek().offset, msg)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error_here(format!("trailing input: {}", self.peek().kind)))
        }
    }

    fn query(&mut self) -> Result<EntangledQuery, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let postconditions = if self.peek().kind == TokenKind::RBrace {
            Vec::new()
        } else {
            self.atom_list(|k| *k == TokenKind::RBrace)?
        };
        self.expect(&TokenKind::RBrace)?;
        let head = self.atom_list(|k| *k == TokenKind::Arrow || *k == TokenKind::Eof)?;
        let mut body = Vec::new();
        let mut constraints = Vec::new();
        if self.peek().kind == TokenKind::Arrow {
            self.bump();
            if !self.at_end_or_choose() {
                self.body_items(&mut body, &mut constraints)?;
            }
        }
        let choose = if self.at_keyword("choose") {
            self.bump();
            match self.bump().kind {
                TokenKind::Int(k) if k > 0 => u32::try_from(k)
                    .map_err(|_| ParseError::general("choose count out of range"))?,
                _ => return Err(ParseError::general("choose expects a positive integer")),
            }
        } else {
            1
        };
        Ok(EntangledQuery {
            id: QueryId(0),
            head,
            postconditions,
            body,
            constraints,
            choose,
        })
    }

    /// Parses `item ((',' | '&') item)*` where an item is either a
    /// relational atom or a comparison constraint `term op term`.
    fn body_items(
        &mut self,
        body: &mut Vec<Atom>,
        constraints: &mut Vec<Constraint>,
    ) -> Result<(), ParseError> {
        loop {
            // Lookahead: Ident '(' means a relational atom.
            let is_atom = matches!(self.peek().kind, TokenKind::Ident(_))
                && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen);
            if is_atom {
                body.push(self.atom()?);
            } else {
                let lhs = self.term()?;
                let op = match self.bump().kind {
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    TokenKind::Ne => CmpOp::Ne,
                    other => {
                        return Err(
                            self.error_here(format!("expected comparison operator, found {other}"))
                        )
                    }
                };
                let rhs = self.term()?;
                constraints.push(Constraint::new(lhs, op, rhs));
            }
            match &self.peek().kind {
                TokenKind::Comma | TokenKind::Amp => {
                    self.bump();
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn at_end_or_choose(&self) -> bool {
        self.peek().kind == TokenKind::Eof || self.at_keyword("choose")
    }

    /// Parses `atom ((',' | '&') atom)*`, stopping before `stop` tokens or
    /// a `choose` keyword.
    fn atom_list(&mut self, stop: impl Fn(&TokenKind) -> bool) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = vec![self.atom()?];
        loop {
            match &self.peek().kind {
                TokenKind::Comma | TokenKind::Amp => {
                    self.bump();
                    atoms.push(self.atom()?);
                }
                k if stop(k) || self.at_keyword("choose") => break,
                _ => break,
            }
        }
        Ok(atoms)
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let relation = match self.bump().kind {
            TokenKind::Ident(s) => s,
            other => return Err(self.error_here(format!("expected relation name, found {other}"))),
        };
        self.expect(&TokenKind::LParen)?;
        let mut terms = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            terms.push(self.term()?);
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                terms.push(self.term()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Atom::new(relation.as_str(), terms))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump().kind {
            TokenKind::Str(s) => Ok(Term::str(&s)),
            TokenKind::Int(i) => Ok(Term::int(i)),
            TokenKind::Ident(s) => {
                let first = s.chars().next().expect("idents are non-empty");
                if first.is_ascii_uppercase() {
                    Ok(Term::str(&s))
                } else {
                    let next_var = &mut self.next_var;
                    let v = *self.vars.entry(s).or_insert_with(|| {
                        let v = Var(*next_var);
                        *next_var += 1;
                        v
                    });
                    Ok(Term::Var(v))
                }
            }
            other => Err(self.error_here(format!("expected term, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eq_ir::Symbol;

    #[test]
    fn kramer_paper_figure_2a() {
        let q = parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap();
        assert_eq!(q.postconditions.len(), 1);
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.head[0].terms[0], Term::str("Kramer"));
        assert_eq!(q.head[0].terms[1], Term::Var(Var(0)));
        assert_eq!(q.postconditions[0].terms[1], Term::Var(Var(0)));
        assert_eq!(q.choose, 1);
    }

    #[test]
    fn jerry_with_conjunctive_body() {
        let q = parse_ir_query("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris) & A(y, United)").unwrap();
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.body[1].relation, Symbol::new("A"));
    }

    #[test]
    fn comma_conjunction_also_accepted() {
        let q = parse_ir_query("{R(Kramer, y)} R(Jerry, y) <- F(y, Paris), A(y, United)").unwrap();
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn empty_postconditions() {
        let q = parse_ir_query("{} R(Kramer, x) <- F(x, Paris)").unwrap();
        assert!(q.postconditions.is_empty());
    }

    #[test]
    fn ground_query_without_body() {
        let q = parse_ir_query("{R(Kramer, ITH)} R(Jerry, ITH) <-").unwrap();
        assert!(q.body.is_empty());
        assert!(q.head[0].is_ground());
        // Arrow fully omitted also works.
        let q2 = parse_ir_query("{R(Kramer, ITH)} R(Jerry, ITH)").unwrap();
        assert_eq!(q2.head, q.head);
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let q = parse_ir_query("{} R(\"lower case const\", 42) <- T('x y', 7)").unwrap();
        assert_eq!(q.head[0].terms[0], Term::str("lower case const"));
        assert_eq!(q.head[0].terms[1], Term::int(42));
        assert_eq!(q.body[0].terms[0], Term::str("x y"));
    }

    #[test]
    fn case_convention_distinguishes_vars_and_consts() {
        let q = parse_ir_query("{} R(Paris, paris) <- T(paris)").unwrap();
        assert_eq!(q.head[0].terms[0], Term::str("Paris"));
        assert!(q.head[0].terms[1].is_var());
    }

    #[test]
    fn shared_variable_names_map_to_same_var() {
        let q = parse_ir_query("{R(f, z)} R(Jerry, z) <- F(z, w) & Friend(Jerry, f)").unwrap();
        // f occurs in postcondition and body; z in all three parts.
        let z_pc = q.postconditions[0].terms[1];
        let z_head = q.head[0].terms[1];
        let z_body = q.body[0].terms[0];
        assert_eq!(z_pc, z_head);
        assert_eq!(z_pc, z_body);
    }

    #[test]
    fn choose_clause() {
        let q = parse_ir_query("{} R(x) <- T(x) choose 3").unwrap();
        assert_eq!(q.choose, 3);
        assert!(parse_ir_query("{} R(x) <- T(x) choose 0").is_err());
    }

    #[test]
    fn multi_head_multi_postcondition() {
        // Fig 7 workload shape: 2 postconditions.
        let q = parse_ir_query(
            "{R(Jerry, SBN) & R(Kramer, SBN)} R(Elaine, SBN) <- \
             F(Elaine, Jerry) & F(Elaine, Kramer)",
        )
        .unwrap();
        assert_eq!(q.pc_count(), 2);
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn range_restriction_checked() {
        let err = parse_ir_query("{} R(x) <- T(y)").unwrap_err();
        assert!(err.message.contains("range restriction"));
    }

    #[test]
    fn nullary_atom() {
        let q = parse_ir_query("{} R() <- ").unwrap();
        assert_eq!(q.head[0].arity(), 0);
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(parse_ir_query("R(x) <- T(x)").is_err()); // missing {..}
        assert!(parse_ir_query("{} R(x <- T(x)").is_err());
        assert!(parse_ir_query("{} R(x) <- T(x) trailing(y)").is_err());
    }

    #[test]
    fn display_roundtrip() {
        // Pretty-printed queries parse back to the same structure (modulo
        // the `?N` variable names, which the printer emits and the parser
        // treats as fresh lowercase-style identifiers — so compare shape).
        let q = parse_ir_query("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)").unwrap();
        let printed = q.to_string().replace('?', "v");
        let q2 = parse_ir_query(&printed.replace(" & ", ", ")).unwrap();
        assert_eq!(q2.head[0].relation, q.head[0].relation);
        assert_eq!(q2.pc_count(), q.pc_count());
        assert_eq!(q2.body.len(), q.body.len());
    }
}
