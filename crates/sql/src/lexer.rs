//! Shared lexer for the entangled-SQL dialect and the IR text format.

use crate::error::ParseError;
use std::fmt;

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the input.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively by the SQL
/// parser on top of `Ident`; the lexer itself keeps them as identifiers so
/// the IR text format can use e.g. `Select` as a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`SELECT`, `Reservation`, `fno`, `x`).
    Ident(String),
    /// Single-quoted or double-quoted string literal, unescaped.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<-` (the IR text format's "is derived from")
    Arrow,
    /// `&` (IR text conjunction; `,` also works)
    Amp,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Arrow => write!(f, "'<-'"),
            TokenKind::Amp => write!(f, "'&'"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexer over a string input. Produces the full token vector up front —
/// inputs are single statements, so there is no need to stream.
pub struct Lexer;

impl Lexer {
    /// Tokenizes `input`, appending an [`TokenKind::Eof`] sentinel.
    pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
        let bytes = input.as_bytes();
        let mut tokens = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    i += 1;
                }
                '-' if bytes.get(i + 1) == Some(&b'-') => {
                    // SQL line comment.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                '(' => {
                    tokens.push(Token {
                        kind: TokenKind::LParen,
                        offset: i,
                    });
                    i += 1;
                }
                ')' => {
                    tokens.push(Token {
                        kind: TokenKind::RParen,
                        offset: i,
                    });
                    i += 1;
                }
                '{' => {
                    tokens.push(Token {
                        kind: TokenKind::LBrace,
                        offset: i,
                    });
                    i += 1;
                }
                '}' => {
                    tokens.push(Token {
                        kind: TokenKind::RBrace,
                        offset: i,
                    });
                    i += 1;
                }
                ',' => {
                    tokens.push(Token {
                        kind: TokenKind::Comma,
                        offset: i,
                    });
                    i += 1;
                }
                '.' => {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        offset: i,
                    });
                    i += 1;
                }
                '=' => {
                    tokens.push(Token {
                        kind: TokenKind::Eq,
                        offset: i,
                    });
                    i += 1;
                }
                '&' => {
                    tokens.push(Token {
                        kind: TokenKind::Amp,
                        offset: i,
                    });
                    i += 1;
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(Token {
                            kind: TokenKind::Ge,
                            offset: i,
                        });
                        i += 2;
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Gt,
                            offset: i,
                        });
                        i += 1;
                    }
                }
                '<' => match bytes.get(i + 1) {
                    Some(&b'-') => {
                        tokens.push(Token {
                            kind: TokenKind::Arrow,
                            offset: i,
                        });
                        i += 2;
                    }
                    Some(&b'=') => {
                        tokens.push(Token {
                            kind: TokenKind::Le,
                            offset: i,
                        });
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token {
                            kind: TokenKind::Lt,
                            offset: i,
                        });
                        i += 1;
                    }
                },
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(Token {
                            kind: TokenKind::Ne,
                            offset: i,
                        });
                        i += 2;
                    } else {
                        return Err(ParseError::at(i, "expected '!='"));
                    }
                }
                '\'' | '"' => {
                    let quote = bytes[i];
                    let start = i;
                    i += 1;
                    let mut s = String::new();
                    loop {
                        match bytes.get(i) {
                            None => {
                                return Err(ParseError::at(start, "unterminated string literal"))
                            }
                            Some(&b) if b == quote => {
                                i += 1;
                                break;
                            }
                            Some(&b) => {
                                s.push(b as char);
                                i += 1;
                            }
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str(s),
                        offset: start,
                    });
                }
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let value: i64 = text
                        .parse()
                        .map_err(|_| ParseError::at(start, "integer literal out of range"))?;
                    tokens.push(Token {
                        kind: TokenKind::Int(value),
                        offset: start,
                    });
                }
                '-' if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    let value: i64 = text
                        .parse()
                        .map_err(|_| ParseError::at(start, "integer literal out of range"))?;
                    tokens.push(Token {
                        kind: TokenKind::Int(value),
                        offset: start,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(input[start..i].to_owned()),
                        offset: start,
                    });
                }
                other => {
                    return Err(ParseError::at(i, format!("unexpected character '{other}'")));
                }
            }
        }
        tokens.push(Token {
            kind: TokenKind::Eof,
            offset: input.len(),
        });
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_sql_fragment() {
        let ks = kinds("SELECT 'Kramer', fno INTO ANSWER R CHOOSE 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Str("Kramer".into()),
                TokenKind::Comma,
                TokenKind::Ident("fno".into()),
                TokenKind::Ident("INTO".into()),
                TokenKind::Ident("ANSWER".into()),
                TokenKind::Ident("R".into()),
                TokenKind::Ident("CHOOSE".into()),
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_ir_fragment() {
        let ks = kinds("{R(Jerry, x)} R(Kramer, x) <- F(x, Paris)");
        assert!(ks.contains(&TokenKind::LBrace));
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Ident("Jerry".into())));
    }

    #[test]
    fn double_quoted_strings() {
        assert_eq!(
            kinds("\"Paris\""),
            vec![TokenKind::Str("Paris".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn negative_integers() {
        assert_eq!(kinds("-42"), vec![TokenKind::Int(-42), TokenKind::Eof]);
    }

    #[test]
    fn line_comments_skipped() {
        let ks = kinds("a -- comment here\n b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = Lexer::tokenize("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, Some(0));
    }

    #[test]
    fn stray_character_is_error() {
        assert!(Lexer::tokenize("a @ b").is_err());
        assert!(Lexer::tokenize("a ! b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
