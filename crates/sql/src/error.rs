//! Parse and lowering errors.

use std::fmt;

/// An error produced while parsing or lowering surface syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where the error was detected, if known.
    pub offset: Option<usize>,
}

impl ParseError {
    /// An error at a byte offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// An error with no specific location (e.g. raised during lowering).
    pub fn general(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "parse error at byte {o}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_offset() {
        assert_eq!(
            ParseError::at(5, "unexpected ','").to_string(),
            "parse error at byte 5: unexpected ','"
        );
        assert_eq!(
            ParseError::general("unknown column").to_string(),
            "parse error: unknown column"
        );
    }
}
