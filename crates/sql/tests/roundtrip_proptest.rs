//! Property test: `parse_ir_query ∘ render_ir_query` is the identity up
//! to dense variable renumbering, for arbitrary well-formed queries.

use eq_ir::{Atom, EntangledQuery, Term, Var};
use eq_sql::{parse_ir_query, render_ir_query};
use proptest::prelude::*;

const RELS: [&str; 3] = ["R", "S", "LongRelationName"];
const STRS: [&str; 4] = ["Paris", "ITH", "United Air", "x-y"];

fn arb_term(num_vars: u32) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..num_vars).prop_map(|i| Term::var(Var(i))),
        (0..STRS.len()).prop_map(|i| Term::str(STRS[i])),
        (-5i64..100).prop_map(Term::int),
    ]
}

fn arb_atom(num_vars: u32) -> impl Strategy<Value = Atom> {
    (
        0..RELS.len(),
        proptest::collection::vec(arb_term(num_vars), 0..4),
    )
        .prop_map(|(r, terms)| Atom::new(RELS[r], terms))
}

/// A well-formed query: range restriction is established by appending a
/// body atom containing every variable used anywhere.
fn arb_query() -> impl Strategy<Value = EntangledQuery> {
    (
        proptest::collection::vec(arb_atom(3), 1..3), // head
        proptest::collection::vec(arb_atom(3), 0..3), // postconditions
        proptest::collection::vec(arb_atom(3), 0..2), // body extras
        1u32..4,                                      // choose
    )
        .prop_map(|(head, pcs, mut body, choose)| {
            let mut vars: Vec<Var> = head
                .iter()
                .chain(&pcs)
                .chain(&body)
                .flat_map(|a| a.vars())
                .collect();
            vars.sort_unstable();
            vars.dedup();
            if !vars.is_empty() {
                body.push(Atom::new("Bind", vars.into_iter().map(Term::var).collect()));
            }
            EntangledQuery::new(head, pcs, body).with_choose(choose)
        })
}

/// Dense renumbering in first-occurrence order, for comparison.
fn canonical(q: &EntangledQuery) -> EntangledQuery {
    let gen = eq_ir::VarGen::new();
    q.rename_apart(&gen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_roundtrip(q in arb_query()) {
        let text = render_ir_query(&q);
        let parsed = parse_ir_query(&text)
            .unwrap_or_else(|e| panic!("rendered text failed to parse: {e}\n{text}"));
        let a = canonical(&q);
        let b = canonical(&parsed);
        prop_assert_eq!(a.head, b.head, "{}", text);
        prop_assert_eq!(a.postconditions, b.postconditions, "{}", text);
        prop_assert_eq!(a.body, b.body, "{}", text);
        prop_assert_eq!(a.choose, b.choose, "{}", text);
    }
}
