//! Property checks for the resident match graph under churn: heavy
//! interleavings of submit / flush / cancel / expire must leave the
//! engine's resident state internally consistent (no dangling
//! `AtomRef`s in the sharded indexes, satisfier counters equal to
//! resident in-edges, component registry in sync), must reuse freed
//! slots instead of growing the slot table, and must stay
//! observationally identical between sequential and parallel flushes.
//! Invariant failures surface as typed
//! [`eq_core::InvariantViolation`]s, rendered into the panic message.

use eq_core::engine::QueryOutcome;
use eq_core::{CoordinationEngine, EngineConfig, EngineMode, FailReason};
use eq_workload::{churn_script, ChurnConfig, ChurnOp, SocialGraph, SocialGraphConfig};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

fn engine(threads: usize, staleness: Option<Duration>) -> CoordinationEngine {
    CoordinationEngine::new(
        eq_workload::build_database(graph()),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: false,
            flush_threads: threads,
            staleness,
            ..Default::default()
        },
    )
}

/// Runs a churn script, checking engine invariants at every flush.
/// Returns per-submission terminal outcomes (None = still pending) and
/// the final slot capacity.
fn drive(mut engine: CoordinationEngine, ops: &[ChurnOp]) -> (Vec<Option<QueryOutcome>>, usize) {
    let mut handles = Vec::new();
    for op in ops {
        match op {
            ChurnOp::Submit(q) => handles.push(engine.submit(q.clone()).unwrap()),
            ChurnOp::Cancel(idx) => {
                engine.cancel(handles[*idx].id);
            }
            ChurnOp::Flush => {
                engine.flush();
                engine.check_invariants().unwrap_or_else(
                    |violation: eq_core::InvariantViolation| {
                        panic!("resident invariants after flush: {violation} ({violation:?})")
                    },
                );
            }
        }
    }
    engine
        .check_invariants()
        .unwrap_or_else(|violation| panic!("final resident invariants: {violation}"));
    let capacity = engine.slot_capacity();
    (
        handles
            .into_iter()
            .map(|h| h.outcome.try_recv().ok())
            .collect(),
        capacity,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn churn_preserves_invariants_and_reuses_slots(
        queries in 40usize..160,
        flush_every in 10usize..40,
        solo_permille in 100u32..600,
        seed in 0u64..1_000,
        threads in 1usize..5,
    ) {
        let ops = churn_script(
            graph(),
            &ChurnConfig { queries, flush_every, solo_permille, seed },
        );
        let (outcomes, capacity) = drive(engine(threads, None), &ops);
        prop_assert_eq!(outcomes.len(), queries);
        // Cancel + answer churn retires queries throughout the run, so
        // the slot table must stay well below one slot per submission.
        prop_assert!(
            capacity <= queries,
            "slot table never shrank: capacity {} for {} submissions",
            capacity, queries
        );
        // Every cancelled query reports Cancelled.
        for (op_idx, op) in ops.iter().enumerate() {
            if let ChurnOp::Cancel(idx) = op {
                prop_assert_eq!(
                    outcomes[*idx].as_ref(),
                    Some(&QueryOutcome::Failed(FailReason::Cancelled)),
                    "cancel op {} (submission {}) not honored", op_idx, idx
                );
            }
        }
    }

    #[test]
    fn sequential_and_parallel_churn_flushes_agree(
        queries in 40usize..120,
        flush_every in 10usize..30,
        seed in 0u64..1_000,
        threads in 2usize..7,
    ) {
        let ops = churn_script(
            graph(),
            &ChurnConfig { queries, flush_every, solo_permille: 300, seed },
        );
        let (seq, _) = drive(engine(1, None), &ops);
        let (par, _) = drive(engine(threads, None), &ops);
        prop_assert_eq!(seq, par, "threads={}", threads);
    }

    #[test]
    fn zero_staleness_expires_everything_and_reuses_all_slots(
        queries in 30usize..100,
        flush_every in 5usize..25,
        seed in 0u64..1_000,
    ) {
        // With a zero staleness bound, every pending query expires at
        // the next submission or flush — maximal slot churn.
        let ops = churn_script(
            graph(),
            &ChurnConfig { queries, flush_every, solo_permille: 400, seed },
        );
        let (outcomes, capacity) = drive(engine(1, Some(Duration::ZERO)), &ops);
        // Everything reaches a terminal state (stale, cancelled, or an
        // answer in the same-submit window), nothing stays pending.
        for (i, o) in outcomes.iter().enumerate() {
            prop_assert!(o.is_some(), "submission {} still pending", i);
        }
        // The pool never holds more than one query (each submission
        // expires its predecessor), so the slot table stays tiny.
        prop_assert!(capacity <= 2, "capacity {}", capacity);
    }
}
