//! Engine-level equivalence properties for the undo-log unifier core:
//! the clone-free speculative paths (worklist propagation without
//! per-edge copies, SCC seed riding with snapshot/rollback, batch-probe
//! speculation) must leave every observable result bit-for-bit
//! unchanged — across thread counts and between batched and sequential
//! admission — and the process-global clone counter proves no
//! production path deep-copied a `Unifier` along the way. (These tests
//! never clone a `Unifier` themselves, so a nonzero delta in this
//! binary can only come from a regression in the engine.)

use eq_core::engine::QueryOutcome;
use eq_core::matching::{match_component, match_component_threads, ComponentMatch, MatchStats};
use eq_core::{
    CoordinationEngine, EngineConfig, EngineMode, MatchGraph, NoSolutionPolicy, SubmitOptions,
};
use eq_db::Database;
use eq_ir::{EntangledQuery, Value, Var, VarGen};
use eq_workload::{
    build_database, chains, clique_groups, giant_cluster, three_way_triangles, two_way_pairs,
    PairStyle, SocialGraph, SocialGraphConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

fn workload(kind: usize, n: usize, seed: u64) -> Vec<EntangledQuery> {
    match kind {
        0 => two_way_pairs(graph(), n, PairStyle::BestCase, seed),
        1 => two_way_pairs(graph(), n, PairStyle::Random, seed),
        2 => three_way_triangles(graph(), n, seed),
        3 => clique_groups(graph(), n.max(8), 2, seed),
        4 => chains(n, 6, seed),
        _ => giant_cluster(graph(), n, seed),
    }
}

/// The observable projection of a [`ComponentMatch`]: everything a
/// downstream consumer reads. The global unifier is compared through
/// its canonical class list — the representative forest is an internal
/// artifact, but `classes()` (and hence every term `resolve` produces)
/// must be identical.
type ObservedMatch = (
    Vec<u32>,
    Vec<u32>,
    MatchStats,
    Option<Vec<(Vec<Var>, Option<Value>)>>,
);

fn observe(m: &ComponentMatch) -> ObservedMatch {
    (
        m.survivors.clone(),
        m.removed.clone(),
        m.stats,
        m.global.as_ref().map(|g| g.classes()),
    )
}

/// Submits everything as one batch (or sequentially), flushes once with
/// the given worker count, and returns each query's terminal outcome in
/// submission order.
fn flush_outcomes(
    db: Database,
    queries: &[EntangledQuery],
    threads: usize,
    batched: bool,
) -> Vec<Option<QueryOutcome>> {
    let mut engine = CoordinationEngine::new(
        db,
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads: threads,
            ..Default::default()
        },
    );
    let handles: Vec<_> = if batched {
        engine
            .submit_batch(
                queries
                    .iter()
                    .map(|q| (q.clone(), SubmitOptions::default()))
                    .collect(),
            )
            .into_iter()
            .map(|r| r.unwrap())
            .collect()
    } else {
        queries
            .iter()
            .map(|q| engine.submit(q.clone()).unwrap())
            .collect()
    };
    engine.flush();
    handles
        .into_iter()
        .map(|h| h.outcome.try_recv().ok())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The seed-parallel matching entry point is bit-identical to the
    /// sequential one at every thread count — survivors, removals,
    /// counters, and the global unifier's classes — and neither path
    /// clones a unifier.
    #[test]
    fn threaded_matching_is_bit_identical(
        kind in 0usize..6,
        n in 8usize..32,
        seed in 0u64..1_000,
    ) {
        let queries = workload(kind, n, seed);
        prop_assume!(!queries.is_empty());
        let gen = VarGen::new();
        let renamed: Vec<EntangledQuery> = queries
            .iter()
            .map(|q| q.rename_apart(&gen).with_id(q.id))
            .collect();
        let mg = MatchGraph::build(renamed);
        let before = eq_unify::ops::global();
        for component in mg.components() {
            let base = observe(&match_component(&mg, &component));
            for threads in [2usize, 4, 8] {
                let threaded = observe(&match_component_threads(&mg, &component, threads));
                prop_assert_eq!(
                    &base, &threaded,
                    "kind={} n={} seed={} threads={}", kind, n, seed, threads
                );
            }
        }
        let delta = eq_unify::ops::global().delta_since(&before);
        prop_assert_eq!(delta.clones, 0, "matching cloned a Unifier");
    }

    /// Batched admission + flush equals sequential admission + flush at
    /// every thread count (same terminal outcomes, answers bit-for-bit),
    /// and the whole engine pipeline — probes, matching, SCC
    /// propagation, combined-query assembly — performs zero unifier
    /// clones.
    #[test]
    fn batch_flush_is_thread_stable_and_clone_free(
        kind in 0usize..6,
        n in 8usize..24,
        seed in 0u64..1_000,
    ) {
        let queries = workload(kind, n, seed);
        prop_assume!(!queries.is_empty());
        let before = eq_unify::ops::global();
        let sequential = flush_outcomes(build_database(graph()), &queries, 1, false);
        for threads in [1usize, 2, 4, 8] {
            let batched = flush_outcomes(build_database(graph()), &queries, threads, true);
            prop_assert_eq!(
                &sequential, &batched,
                "kind={} n={} seed={} threads={}", kind, n, seed, threads
            );
        }
        let delta = eq_unify::ops::global().delta_since(&before);
        prop_assert_eq!(delta.clones, 0, "engine pipeline cloned a Unifier");
    }
}
