//! Property checks for the `Coordinator` service layer.
//!
//! 1. **Event totality**: under interleaved submit / flush / cancel
//!    churn, every submitted query receives *exactly one* terminal
//!    [`Event`], and that event matches the query's final
//!    [`QueryStatus`] (answers ↔ `Answered`, rejections ↔ `Failed`,
//!    cancellations ↔ `Cancelled`; still-pending queries receive no
//!    terminal event).
//! 2. **Batch/sequential equivalence**: driving the same script with
//!    burst submissions through `submit_batch` is observationally
//!    identical to sequential `submit` calls — same admission results,
//!    same ids, same terminal statuses after each flush — with the
//!    admission safety check both off and on.

use eq_core::{
    Coordinator, EngineConfig, EngineMode, Event, FailReason, QueryStatus, SubmitRequest,
};
use eq_ir::QueryId;
use eq_workload::{service_script, ServiceConfig, ServiceOp, SocialGraph, SocialGraphConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

fn coordinator(safety: bool) -> Coordinator {
    Coordinator::new(
        eq_workload::build_database(graph()),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: safety,
            ..Default::default()
        },
    )
}

/// Per-submission observation: the admission result (engine id or
/// error string) and the query's final status.
type Observed = (Result<QueryId, String>, Option<QueryStatus>);

/// Drives a service script; `batched` selects burst submission via
/// `submit_batch` versus per-query `submit`. Returns one [`Observed`]
/// per submission index, plus the session (kept open so still-pending
/// queries are not withdrawn by its drop).
fn drive(
    coordinator: &Coordinator,
    ops: &[ServiceOp],
    batched: bool,
) -> (Vec<Observed>, eq_core::Session) {
    let mut session = coordinator.session();
    let mut admissions: Vec<Result<QueryId, String>> = Vec::new();
    for op in ops {
        match op {
            ServiceOp::SubmitBatch(queries) => {
                if batched {
                    let results = session.submit_batch(
                        queries
                            .iter()
                            .map(|q| SubmitRequest::new(q.clone()))
                            .collect(),
                    );
                    for r in results {
                        admissions.push(r.map(|h| h.id).map_err(|e| e.to_string()));
                    }
                } else {
                    for q in queries {
                        admissions.push(
                            session
                                .submit(SubmitRequest::new(q.clone()))
                                .map(|h| h.id)
                                .map_err(|e| e.to_string()),
                        );
                    }
                }
            }
            ServiceOp::Cancel(idx) => {
                if let Ok(id) = &admissions[*idx] {
                    let _ = session.cancel(*id);
                }
            }
            ServiceOp::Flush => {
                coordinator.flush();
                coordinator
                    .check_invariants()
                    .unwrap_or_else(|v| panic!("invariant violated after flush: {v}"));
            }
            // scale_service_script ops, not produced by service_script.
            ServiceOp::SubmitBatchWith(_) | ServiceOp::Load { .. } => {
                unreachable!("service_script emits no scale ops")
            }
        }
    }
    let out = admissions
        .into_iter()
        .map(|r| {
            let status = r.as_ref().ok().and_then(|&id| coordinator.status(id));
            (r, status)
        })
        .collect();
    (out, session)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_query_gets_exactly_one_matching_terminal_event(
        queries in 40usize..140,
        burst in 1usize..30,
        flush_every_bursts in 1usize..5,
        solo_permille in 100u32..600,
        seed in 0u64..1_000,
    ) {
        let ops = service_script(
            graph(),
            &ServiceConfig { queries, burst, flush_every_bursts, solo_permille, seed },
        );
        let coordinator = coordinator(false);
        let events = coordinator.subscribe();
        let (outcomes, _session) = drive(&coordinator, &ops, true);

        // Tally terminal events per query id.
        let mut terminal: std::collections::HashMap<QueryId, Vec<std::sync::Arc<Event>>> =
            std::collections::HashMap::new();
        for event in events.drain() {
            if let Some(id) = event.id() {
                prop_assert!(event.is_terminal());
                terminal.entry(id).or_default().push(event);
            }
        }

        for (admission, status) in &outcomes {
            let Ok(id) = admission else { continue };
            let got = terminal.remove(id).unwrap_or_default();
            match status {
                Some(QueryStatus::Pending) => prop_assert!(
                    got.is_empty(),
                    "pending query {id} received terminal events {got:?}"
                ),
                Some(QueryStatus::Answered) => {
                    prop_assert_eq!(got.len(), 1, "query {} events {:?}", id, got);
                    prop_assert!(matches!(*got[0], Event::Answered { .. }));
                }
                Some(QueryStatus::Failed(FailReason::Cancelled)) => {
                    prop_assert_eq!(got.len(), 1);
                    prop_assert!(matches!(*got[0], Event::Cancelled { .. }));
                }
                Some(QueryStatus::Failed(FailReason::Stale)) => {
                    prop_assert_eq!(got.len(), 1);
                    prop_assert!(matches!(*got[0], Event::Expired { .. }));
                }
                Some(QueryStatus::Failed(FailReason::Rejected(_))) => {
                    prop_assert_eq!(got.len(), 1);
                    prop_assert!(matches!(*got[0], Event::Failed { .. }));
                }
                None => prop_assert!(false, "admitted query {} has no status", id),
            }
        }
        // No terminal events for ids we never admitted.
        prop_assert!(terminal.is_empty(), "stray events: {terminal:?}");
    }

    #[test]
    fn submit_batch_is_equivalent_to_sequential_submits(
        queries in 40usize..120,
        burst in 2usize..40,
        flush_every_bursts in 1usize..4,
        solo_permille in 100u32..600,
        seed in 0u64..1_000,
        safety_bit in 0u8..2,
    ) {
        let safety = safety_bit == 1;
        let ops = service_script(
            graph(),
            &ServiceConfig { queries, burst, flush_every_bursts, solo_permille, seed },
        );
        let sequential = coordinator(safety);
        let batched = coordinator(safety);
        let (seq, _s1) = drive(&sequential, &ops, false);
        let (bat, _s2) = drive(&batched, &ops, true);
        prop_assert_eq!(seq.len(), bat.len());
        for (i, (s, b)) in seq.iter().zip(&bat).enumerate() {
            prop_assert_eq!(s, b, "submission {} diverges (safety={})", i, safety);
        }
        sequential
            .check_invariants()
            .unwrap_or_else(|v| panic!("sequential invariants: {v}"));
        batched
            .check_invariants()
            .unwrap_or_else(|v| panic!("batched invariants: {v}"));
    }
}
