//! Property checks for the partitioned intra-component evaluation
//! path: on giant-ring and generator workloads, an engine that
//! partitions every component into work units (threshold 1) and
//! evaluates them on several workers must be **answer-for-answer
//! identical** to the plain sequential engine (threshold ∞, one
//! worker) — same terminal statuses, same answer tuples — in both
//! engine modes (§5.1).

use eq_core::engine::{NoSolutionPolicy, QueryOutcome};
use eq_core::{CoordinationEngine, EngineConfig, EngineMode};
use eq_db::Database;
use eq_ir::{EntangledQuery, QueryId};
use eq_workload::{
    giant_component, two_way_pairs, GiantBody, GiantComponentConfig, PairStyle, SocialGraph,
    SocialGraphConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

/// Drives the same workload through one engine configuration and
/// returns each query's terminal outcome in submission order (None =
/// still pending). Chain bodies only for the sequential engine —
/// triangle rings thrash the one-combined-join evaluator by design.
fn outcomes(
    db: Database,
    queries: &[EntangledQuery],
    mode: EngineMode,
    threshold: usize,
    threads: usize,
    split_min: usize,
    streaming: bool,
) -> Vec<(QueryId, Option<QueryOutcome>)> {
    let mut engine = CoordinationEngine::new(
        db,
        EngineConfig {
            mode,
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads: threads,
            intra_component_threshold: threshold,
            intra_split_min_atoms: split_min,
            // The tests force the split at small ring sizes; the
            // production crossover gate would keep these units whole.
            intra_split_crossover: 0,
            intra_split_streaming: streaming,
            // Incremental mode must re-match whole rings, not
            // eager-pair them.
            incremental_partition_limit: usize::MAX,
            ..Default::default()
        },
    );
    let handles: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    if matches!(mode, EngineMode::SetAtATime { .. }) {
        engine.flush();
    }
    engine.check_invariants().unwrap();
    handles
        .into_iter()
        .map(|h| (h.id, h.outcome.try_recv().ok()))
        .collect()
}

/// A giant chain ring, optionally sabotaged: `break_at` (when set)
/// points one query's body anchor at a name absent from the Friends
/// table, making that work unit unsatisfiable — the whole component
/// becomes a no-solution case (the empty posting list also means the
/// sequential join fails at its root, no thrashing).
fn ring(n: usize, k: usize, break_at: Option<usize>) -> (Database, Vec<EntangledQuery>) {
    let (db, mut queries) = giant_component(&GiantComponentConfig {
        queries: n,
        friends_per_user: k,
        body: GiantBody::Chain,
    });
    if let Some(i) = break_at {
        let i = i % queries.len();
        let q = &queries[i];
        let mut body = q.body.clone();
        body[0].terms[0] = eq_ir::Term::str("NOBODY");
        queries[i] =
            EntangledQuery::new(q.head.clone(), q.postconditions.clone(), body).with_id(q.id);
    }
    (db, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn intra_parallel_equals_sequential_on_giant_rings(
        n in 6usize..48,
        k in 1usize..5,
        threads in 2usize..9,
        break_at in proptest::option::of(0usize..48),
        batch in 0usize..2,
    ) {
        prop_assume!(n > 4 * k);
        let (db, queries) = ring(n, k, break_at);
        let mode = if batch == 1 {
            EngineMode::SetAtATime { batch_size: 0 }
        } else {
            EngineMode::Incremental
        };
        let seq = outcomes(db.snapshot(), &queries, mode, usize::MAX, 1, usize::MAX, true);
        let par = outcomes(db.snapshot(), &queries, mode, 1, threads, usize::MAX, true);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn region_split_equals_sequential_on_unique_shared_chains(
        n in 6usize..40,
        threads in 2usize..9,
        break_at in proptest::option::of(0usize..40),
        batch in 0usize..2,
    ) {
        // friends_per_user = 1 makes the shared-variable chain's
        // solution unique, so the biconnected-region split must agree
        // with the sequential combined join answer-for-answer — and a
        // sabotaged body turns one region unsatisfiable, which must
        // fail the whole ring identically in both engines.
        let (db, mut queries) = giant_component(&GiantComponentConfig {
            queries: n,
            friends_per_user: 1,
            body: GiantBody::SharedChain,
        });
        if let Some(i) = break_at {
            let i = i % queries.len();
            let q = &queries[i];
            let mut body = q.body.clone();
            body[0].terms[0] = eq_ir::Term::str("NOBODY");
            queries[i] =
                EntangledQuery::new(q.head.clone(), q.postconditions.clone(), body).with_id(q.id);
        }
        let mode = if batch == 1 {
            EngineMode::SetAtATime { batch_size: 0 }
        } else {
            EngineMode::Incremental
        };
        let seq = outcomes(db.snapshot(), &queries, mode, usize::MAX, 1, usize::MAX, true);
        let split = outcomes(db.snapshot(), &queries, mode, 1, threads, 2, true);
        prop_assert_eq!(seq, split);
    }

    #[test]
    fn region_split_is_deterministic_across_thread_counts(
        n in 9usize..36,
        k in 2usize..5,
        threads in 2usize..9,
    ) {
        // Larger k: many local solutions per region. The split answer
        // may legitimately differ from the sequential join's first
        // choice, but it must be identical for every worker count.
        prop_assume!(n > 4 * k);
        let (db, queries) = giant_component(&GiantComponentConfig {
            queries: n,
            friends_per_user: k,
            body: GiantBody::SharedChain,
        });
        let mode = EngineMode::SetAtATime { batch_size: 0 };
        let one = outcomes(db.snapshot(), &queries, mode, 1, 1, 2, true);
        let many = outcomes(db.snapshot(), &queries, mode, 1, threads, 2, true);
        prop_assert_eq!(&one, &many);
        // And the ring coordinates: every outcome is an answer.
        for (id, outcome) in &one {
            prop_assert!(
                matches!(outcome, Some(QueryOutcome::Answered(_))),
                "query {:?} did not coordinate", id
            );
        }
    }

    #[test]
    fn streaming_equals_materialized_region_evaluation(
        n in 9usize..36,
        k in 1usize..5,
        threads in 2usize..9,
        break_at in proptest::option::of(0usize..36),
        batch in 0usize..2,
        wide in 0usize..2,
    ) {
        // The streaming articulation projection must be
        // answer-for-answer identical to the materialized semi-join it
        // replaced — for every k (many local solutions per region),
        // in both engine modes, on satisfiable and sabotaged rings,
        // and on the wide flavor whose pendant regions carry Θ(k²)
        // local solutions.
        prop_assume!(n > 4 * k);
        let (db, mut queries) = giant_component(&GiantComponentConfig {
            queries: n,
            friends_per_user: k,
            body: if wide == 1 { GiantBody::SharedWide } else { GiantBody::SharedChain },
        });
        if let Some(i) = break_at {
            let i = i % queries.len();
            let q = &queries[i];
            let mut body = q.body.clone();
            body[0].terms[0] = eq_ir::Term::str("NOBODY");
            queries[i] =
                EntangledQuery::new(q.head.clone(), q.postconditions.clone(), body).with_id(q.id);
        }
        let mode = if batch == 1 {
            EngineMode::SetAtATime { batch_size: 0 }
        } else {
            EngineMode::Incremental
        };
        let streamed = outcomes(db.snapshot(), &queries, mode, 1, threads, 2, true);
        let materialized = outcomes(db.snapshot(), &queries, mode, 1, threads, 2, false);
        prop_assert_eq!(streamed, materialized);
    }

    #[test]
    fn intra_parallel_equals_sequential_on_generator_workloads(
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 2usize..9,
        style in 0usize..2,
    ) {
        let style = if style == 1 { PairStyle::Random } else { PairStyle::BestCase };
        let queries = two_way_pairs(graph(), n, style, seed);
        prop_assume!(!queries.is_empty());
        let db = eq_workload::build_database(graph());
        let mode = EngineMode::SetAtATime { batch_size: 0 };
        let seq = outcomes(db.snapshot(), &queries, mode, usize::MAX, 1, usize::MAX, true);
        let par = outcomes(db.snapshot(), &queries, mode, 1, threads, usize::MAX, true);
        prop_assert_eq!(seq, par);
    }
}
