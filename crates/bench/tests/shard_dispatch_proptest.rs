//! Property checks for the sharded `Coordinator` and its out-of-lock
//! event dispatcher.
//!
//! 1. **Shard-count transparency**: driving one multi-session,
//!    multi-group [`scale_service_script`] through coordinators with 1,
//!    2, and 4 engine shards yields identical admission ids and
//!    identical final statuses per query, every terminal event exactly
//!    once, the answered events of each flush drained *before* that
//!    flush's [`Event::Flushed`] report (the dispatch queue preserves
//!    staging order), and per-session `Expired` events in submission
//!    order.
//! 2. **Kill + recover exactly-once**: a `DurableCoordinator` killed
//!    after its sink recorded outcomes that no subscriber ever drained
//!    (the crash window between WAL append and dispatch delivery)
//!    reopens with every acknowledged id accounted for exactly once,
//!    terminal outcomes preserved, and recovery idempotent across a
//!    second reopen.

use eq_core::{
    Coordinator, DurableCoordinator, EngineConfig, EngineMode, Event, NoSolutionPolicy,
    QueryOutcome, QueryStatus, SubmitRequest,
};
use eq_ir::QueryId;
use eq_workload::{
    scale_service_script, ScaleServiceConfig, ServiceOp, SocialGraph, SocialGraphConfig,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

fn coordinator(service_shards: usize) -> Coordinator {
    Coordinator::new(
        eq_workload::build_database(graph()),
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            on_no_solution: NoSolutionPolicy::Reject,
            service_shards,
            ..Default::default()
        },
    )
}

fn to_request(sub: &eq_workload::ScriptSubmission) -> SubmitRequest {
    let mut request = SubmitRequest::new(sub.query.clone());
    if let Some(bound) = sub.staleness {
        request = request.staleness(bound);
    }
    if sub.keep_pending {
        request = request.on_no_solution(NoSolutionPolicy::KeepPending);
    }
    request
}

/// Per-submission observation: `(id, session, final status)`.
type Observed = Vec<(QueryId, usize, Option<QueryStatus>)>;

/// Drives a scale script through `service_shards` shards, draining the
/// event stream after every op. Returns per-submission observations
/// and the drained event log in arrival order.
fn drive(
    script: &eq_workload::ScaleScript,
    service_shards: usize,
) -> (Observed, Vec<std::sync::Arc<Event>>) {
    let coordinator = coordinator(service_shards);
    let bound: usize = script
        .ops
        .iter()
        .map(|op| match op {
            ServiceOp::SubmitBatchWith(subs) => subs.len(),
            ServiceOp::SubmitBatch(queries) => queries.len(),
            ServiceOp::Cancel(_) | ServiceOp::Flush => 1,
            ServiceOp::Load { .. } => 0,
        })
        .sum::<usize>()
        + 8;
    let events = coordinator.subscribe_with(bound, eq_core::OverflowPolicy::Block);
    let mut sessions: Vec<eq_core::Session> = (0..script.sessions)
        .map(|_| coordinator.session())
        .collect();
    let mut submitted: Vec<(QueryId, usize)> = Vec::new();
    let mut log: Vec<std::sync::Arc<Event>> = Vec::new();
    for op in &script.ops {
        match op {
            ServiceOp::SubmitBatchWith(subs) => {
                for sub in subs {
                    let handle = sessions[sub.session]
                        .submit(to_request(sub))
                        .expect("valid scale query");
                    submitted.push((handle.id, sub.session));
                }
            }
            ServiceOp::Load { relation, rows } => {
                coordinator
                    .load(relation, rows.clone())
                    .expect("known relation");
            }
            ServiceOp::Flush => {
                coordinator.flush();
                coordinator
                    .check_invariants()
                    .unwrap_or_else(|v| panic!("invariants after flush: {v}"));
            }
            ServiceOp::SubmitBatch(_) | ServiceOp::Cancel(_) => {
                unreachable!("scale scripts only use SubmitBatchWith/Load/Flush")
            }
        }
        log.extend(events.drain());
    }
    let observed = submitted
        .into_iter()
        .map(|(id, session)| (id, session, coordinator.status(id)))
        .collect();
    // Sessions stay open until after the status reads so their drop
    // does not cancel still-pending queries first.
    drop(sessions);
    (observed, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shard_counts_are_observationally_identical(
        queries in 60usize..160,
        burst in 10usize..40,
        sessions in 2usize..24,
        locality_groups in 1usize..9,
        cross_permille in 0u32..120,
        seed in 0u64..1_000,
    ) {
        let script = scale_service_script(
            graph(),
            &ScaleServiceConfig {
                queries,
                burst,
                flush_every_bursts: 2,
                sessions,
                locality_groups,
                cross_permille,
                seed,
                ..Default::default()
            },
        );
        let mut baseline: Option<Vec<(QueryId, usize, Option<QueryStatus>)>> = None;
        for shards in [1usize, 2, 4] {
            let (observed, log) = drive(&script, shards);

            // Terminal events: exactly one per terminated query, none
            // for pending ones, none for unknown ids.
            let mut terminals: HashMap<QueryId, usize> = HashMap::new();
            for event in &log {
                if let Some(id) = event.id() {
                    prop_assert!(event.is_terminal());
                    *terminals.entry(id).or_default() += 1;
                }
            }
            for (id, _, status) in &observed {
                let n = terminals.remove(id).unwrap_or(0);
                match status {
                    Some(QueryStatus::Pending) => prop_assert_eq!(
                        n, 0, "pending {:?} got {} terminal events ({} shards)", id, n, shards
                    ),
                    Some(_) => prop_assert_eq!(
                        n, 1, "{:?} got {} terminal events ({} shards)", id, n, shards
                    ),
                    None => prop_assert!(false, "admitted {id:?} has no status"),
                }
            }
            prop_assert!(terminals.is_empty(), "stray terminal events: {terminals:?}");

            // Dispatch order: in SetAtATime mode answers retire only at
            // flushes, and terminals are staged before their flush's
            // report, so at every Flushed event the answered events
            // drained so far equal the cumulative reported count.
            let mut answered_seen = 0u64;
            let mut answered_reported = 0u64;
            for event in &log {
                match **event {
                    Event::Answered { .. } => answered_seen += 1,
                    Event::Flushed(report) => {
                        answered_reported += report.answered as u64;
                        prop_assert_eq!(
                            answered_seen, answered_reported,
                            "terminals must drain before their Flushed report ({} shards)",
                            shards
                        );
                    }
                    _ => {}
                }
            }

            // Per-session expiry order: staleness sweeps walk each
            // shard's age queue (and migrations re-sort by id), so one
            // session's Expired events arrive in submission order.
            let session_of: HashMap<QueryId, usize> = observed
                .iter()
                .map(|&(id, session, _)| (id, session))
                .collect();
            let mut last_expired: HashMap<usize, QueryId> = HashMap::new();
            for event in &log {
                if let Event::Expired { id, .. } = **event {
                    let session = session_of[&id];
                    if let Some(prev) = last_expired.insert(session, id) {
                        prop_assert!(
                            prev < id,
                            "session {} expiries out of order: {:?} then {:?} ({} shards)",
                            session, prev, id, shards
                        );
                    }
                }
            }

            // Outcome accounting is shard-count invariant.
            match &baseline {
                None => baseline = Some(observed),
                Some(single) => {
                    prop_assert_eq!(single.len(), observed.len());
                    for (a, b) in single.iter().zip(&observed) {
                        prop_assert_eq!(a, b, "{} shards diverge from single-shard", shards);
                    }
                }
            }
        }
    }

    #[test]
    fn kill_with_undrained_events_recovers_exactly_once(
        pairs in 2usize..8,
        lonely in 0usize..3,
        service_shards_bit in 0u8..3,
        drop_bit in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let drop_subscriber_early = drop_bit == 1;
        let service_shards = 1usize << service_shards_bit;
        let dir = eq_store::scratch_dir(&format!("shard-dispatch-kill-{seed}-{service_shards}"));
        let config = EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            service_shards,
            ..Default::default()
        };

        // Phase 1: submit, flush, record outcomes in the WAL — then
        // "crash" with events still undelivered to any client: either
        // the subscriber was dropped before the flush (the dispatcher
        // drops its staged events on the floor) or its queue is simply
        // never drained. Both model a client that never saw outcomes
        // the durability sink already holds.
        let mut acknowledged: Vec<QueryId> = Vec::new();
        let mut pre_kill: HashMap<QueryId, bool> = HashMap::new(); // id -> was terminal
        {
            let dc = DurableCoordinator::open(&dir, config.clone()).unwrap();
            dc.create_table("F", &["fno", "dest"]).unwrap();
            dc.load("F", vec![vec![eq_ir::Value::int(7), eq_ir::Value::str("Paris")]])
                .unwrap();
            let events = dc.coordinator().subscribe();
            if drop_subscriber_early {
                drop(events);
            } else {
                let _ = events.drain(); // touch the stream once, never again
            }
            for i in 0..pairs {
                // Entangled ground pairs on per-pair relations: with
                // multiple shards they spread across shard groups.
                let rel = format!("R{}", i % 4);
                let head = format!("{{{rel}(B{i}, x)}} {rel}(A{i}, x) <- F(x, Paris)");
                let post = format!("{{{rel}(A{i}, y)}} {rel}(B{i}, y) <- F(y, Paris)");
                let a = dc.submit(SubmitRequest::new(eq_sql::parse_ir_query(&head).unwrap()));
                let b = dc.submit(SubmitRequest::new(eq_sql::parse_ir_query(&post).unwrap()));
                acknowledged.push(a.unwrap().id);
                acknowledged.push(b.unwrap().id);
            }
            for i in 0..lonely {
                let text = format!("{{S(Ghost{i}, z)}} S(Solo{i}, z) <- F(z, Paris)");
                let h = dc
                    .submit(
                        SubmitRequest::new(eq_sql::parse_ir_query(&text).unwrap())
                            .staleness(Duration::from_secs(3600)),
                    )
                    .unwrap();
                acknowledged.push(h.id);
            }
            dc.flush();
            for &id in &acknowledged {
                let status = dc.coordinator().status(id);
                prop_assert!(status.is_some(), "{id:?} lost before kill");
                pre_kill.insert(id, !matches!(status, Some(QueryStatus::Pending)));
            }
            // No checkpoint, no drain: the dc drops here — the kill.
        }

        // Phase 2: recover. Every acknowledged id appears exactly once;
        // terminal outcomes are preserved as recorded, pending queries
        // are pending again.
        for reopen in 0..2 {
            let dc = DurableCoordinator::open(&dir, config.clone()).unwrap();
            let accounting = dc.accounting();
            let ids: Vec<QueryId> = accounting.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(
                &ids, &acknowledged,
                "reopen {}: every acknowledged id exactly once", reopen
            );
            for (id, outcome) in &accounting {
                let was_terminal = pre_kill[id];
                match outcome {
                    Some(QueryOutcome::Answered(_)) => prop_assert!(
                        was_terminal, "reopen {reopen}: {id:?} answered only after the kill"
                    ),
                    Some(other) => prop_assert!(
                        false, "reopen {reopen}: unexpected recovered outcome {other:?}"
                    ),
                    None => {
                        prop_assert!(
                            !was_terminal,
                            "reopen {reopen}: terminal {id:?} lost its outcome"
                        );
                        prop_assert!(matches!(
                            dc.coordinator().status(*id),
                            Some(QueryStatus::Pending)
                        ));
                    }
                }
            }
            dc.coordinator()
                .check_invariants()
                .unwrap_or_else(|v| panic!("recovered invariants: {v}"));
        }
        eq_store::purge_dir(&dir);
    }
}
