//! Property checks for the bounded event streams: under random
//! workloads, queue capacities, and overflow policies, **no subscriber
//! policy loses terminal events silently** —
//!
//! * `Block` delivers every published event (a concurrent drainer keeps
//!   the queue moving);
//! * `DropOldest` reconciles exactly: delivered + dropped = published;
//! * `Disconnect` either delivers everything or visibly ends the
//!   subscription, counted by the coordinator.
//!
//! Also checks the ordering contract under bounded channels: each
//! query's terminal event precedes the `Flushed` report of the flush
//! that retired it.

use eq_core::engine::NoSolutionPolicy;
use eq_core::{Coordinator, EngineConfig, EngineMode, Event, OverflowPolicy, SubmitRequest};
use eq_ir::QueryId;
use eq_workload::{giant_component, GiantBody, GiantComponentConfig};
use proptest::prelude::*;

fn coordinator(db: eq_db::Database, flush_threads: usize) -> Coordinator {
    Coordinator::new(
        db,
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads,
            intra_component_threshold: 32,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn block_policy_delivers_every_terminal_event(
        n in 6usize..40,
        k in 1usize..4,
        capacity in 1usize..8,
        threads in 1usize..5,
    ) {
        prop_assume!(n > 4 * k);
        let (db, queries) = giant_component(&GiantComponentConfig {
            queries: n,
            friends_per_user: k,
            body: GiantBody::Chain,
        });
        let coordinator = coordinator(db, threads);
        let events = coordinator.subscribe_with(capacity, OverflowPolicy::Block);
        // Tiny queue + big flush: the publisher must block on the
        // drainer, not drop or deadlock.
        let drainer = std::thread::spawn(move || {
            let mut seen: Vec<std::sync::Arc<Event>> = Vec::new();
            while let Some(e) = events.next_timeout(std::time::Duration::from_secs(30)) {
                let stop = matches!(*e, Event::Flushed(_));
                seen.push(e);
                if stop {
                    break;
                }
            }
            (seen, events.stats())
        });
        let mut session = coordinator.session();
        let ids: Vec<QueryId> = session
            .submit_batch(queries.into_iter().map(SubmitRequest::new).collect())
            .into_iter()
            .map(|r| r.unwrap().id)
            .collect();
        coordinator.flush();
        let (seen, stats) = drainer.join().unwrap();

        let flushed_at = seen
            .iter()
            .position(|e| matches!(**e, Event::Flushed(_)))
            .expect("flush report arrives");
        prop_assert_eq!(flushed_at, seen.len() - 1, "Flushed is last");
        let terminals: Vec<QueryId> =
            seen[..flushed_at].iter().filter_map(|e| e.id()).collect();
        // Every query's terminal event arrived, before the report.
        prop_assert_eq!(terminals.len(), ids.len());
        for id in ids {
            prop_assert!(terminals.contains(&id), "lost terminal for {:?}", id);
        }
        prop_assert_eq!(stats.dropped, 0u64);
        prop_assert!(!stats.disconnected);
        prop_assert_eq!(coordinator.disconnected_subscribers(), 0u64);
    }

    #[test]
    fn lossy_policies_account_for_every_event(
        n in 6usize..40,
        k in 1usize..4,
        capacity in 1usize..8,
        drop_oldest in 0usize..2,
    ) {
        let drop_oldest = drop_oldest == 1;
        prop_assume!(n > 4 * k);
        let (db, queries) = giant_component(&GiantComponentConfig {
            queries: n,
            friends_per_user: k,
            body: GiantBody::Chain,
        });
        let policy = if drop_oldest {
            OverflowPolicy::DropOldest
        } else {
            OverflowPolicy::Disconnect
        };
        let coordinator = coordinator(db, 1);
        let events = coordinator.subscribe_with(capacity, policy);
        let mut session = coordinator.session();
        let admitted = session
            .submit_batch(queries.into_iter().map(SubmitRequest::new).collect())
            .len();
        coordinator.flush();
        // No concurrent drainer: the queue overflows by construction
        // whenever capacity < admitted + 1 (terminals + Flushed).
        let published = (admitted + 1) as u64;
        let received = events.drain().len() as u64;
        let stats = events.stats();
        prop_assert_eq!(stats.delivered, received);
        if drop_oldest {
            // Delivered + dropped reconciles exactly with published.
            prop_assert_eq!(stats.delivered + stats.dropped, published);
            prop_assert!(!stats.disconnected);
            prop_assert_eq!(coordinator.disconnected_subscribers(), 0u64);
        } else if published > capacity as u64 {
            // Disconnect: the overflow is visible on both ends.
            prop_assert!(stats.disconnected);
            prop_assert_eq!(stats.delivered, capacity as u64);
            prop_assert_eq!(coordinator.disconnected_subscribers(), 1u64);
            prop_assert_eq!(coordinator.subscriber_count(), 0usize);
        } else {
            prop_assert_eq!(stats.delivered, published);
        }
    }
}
