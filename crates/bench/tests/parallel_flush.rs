//! Property checks for the sharded set-at-a-time flush (§4.1.2): on the
//! paper's workload generators, a parallel flush must produce exactly
//! the answers of the sequential path, and on small two-way workloads
//! the answered set must agree with the brute-force oracle of §2.3.

use eq_core::engine::{NoSolutionPolicy, QueryOutcome};
use eq_core::{bruteforce, safety, ucs, CoordinationEngine, EngineConfig, EngineMode, MatchGraph};
use eq_db::Database;
use eq_ir::{EntangledQuery, QueryId, VarGen};
use eq_workload::{
    build_database, chains, clique_groups, giant_cluster, three_way_triangles, two_way_pairs,
    PairStyle, SocialGraph, SocialGraphConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn graph() -> &'static SocialGraph {
    static GRAPH: OnceLock<SocialGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        SocialGraph::generate(&SocialGraphConfig {
            users: 400,
            airports: 6,
            planted_cliques: 60,
            ..Default::default()
        })
    })
}

/// Submits everything, flushes once with the given worker count, and
/// returns each query's terminal outcome in submission order (None =
/// still pending).
fn flush_outcomes(
    db: Database,
    queries: &[EntangledQuery],
    threads: usize,
) -> Vec<(QueryId, Option<QueryOutcome>)> {
    let mut engine = CoordinationEngine::new(
        db,
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads: threads,
            ..Default::default()
        },
    );
    let handles: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    engine.flush();
    handles
        .into_iter()
        .map(|h| (h.id, h.outcome.try_recv().ok()))
        .collect()
}

fn workload(kind: usize, n: usize, seed: u64) -> Vec<EntangledQuery> {
    match kind {
        0 => two_way_pairs(graph(), n, PairStyle::BestCase, seed),
        1 => two_way_pairs(graph(), n, PairStyle::Random, seed),
        2 => three_way_triangles(graph(), n, seed),
        3 => clique_groups(graph(), n.max(8), 2, seed),
        4 => chains(n, 6, seed),
        _ => giant_cluster(graph(), n, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_flush_equals_sequential_on_generators(
        kind in 0usize..6,
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 2usize..9,
    ) {
        let queries = workload(kind, n, seed);
        prop_assume!(!queries.is_empty());
        let sequential = flush_outcomes(build_database(graph()), &queries, 1);
        let parallel = flush_outcomes(build_database(graph()), &queries, threads);
        prop_assert_eq!(
            sequential, parallel,
            "kind={} n={} seed={} threads={}", kind, n, seed, threads
        );
    }

    #[test]
    fn parallel_flush_agrees_with_bruteforce_on_two_way(
        seed in 0u64..500,
        threads in 2usize..6,
    ) {
        let queries = two_way_pairs(graph(), 12, PairStyle::BestCase, seed);
        let db = build_database(graph());
        let outcomes = flush_outcomes(build_database(graph()), &queries, threads);
        // The engine assigns its own QueryIds at submission, so key
        // outcomes by submission index — the same order the match-graph
        // slots below use.
        let answered: Vec<bool> = outcomes
            .iter()
            .map(|(_, o)| matches!(o, Some(QueryOutcome::Answered(_))))
            .collect();

        // Per unifiability component, the engine answers everyone iff
        // the generic-semantics brute force finds a total coordinating
        // set (components here are friend pairs, so the search is tiny).
        let gen = VarGen::new();
        let renamed: Vec<EntangledQuery> = queries
            .iter()
            .map(|q| q.rename_apart(&gen).with_id(q.id))
            .collect();
        let mg = MatchGraph::build(renamed.clone());
        // The engine's pipeline enforces the §3.1.1 safety rule and the
        // §3.1.2 UCS condition before evaluating; the generic-semantics
        // oracle knows neither, so the comparison only covers safe, UCS
        // components (overlapping users in the sampled pairs can create
        // ambiguous pcs or cross-SCC edges).
        let mut alive = vec![true; mg.len()];
        safety::enforce(&mg, &mut alive);
        for component in mg.components() {
            if component.iter().any(|&s| !alive[s as usize]) {
                continue;
            }
            let mut comp_alive = vec![false; mg.len()];
            for &s in &component {
                comp_alive[s as usize] = true;
            }
            if !ucs::violations(&mg, &comp_alive).is_empty() {
                continue;
            }
            let comp: Vec<EntangledQuery> = component
                .iter()
                .map(|&s| renamed[s as usize].clone())
                .collect();
            let oracle = bruteforce::find_coordinating_set(&comp, &db, true)
                .unwrap()
                .is_some();
            let engine_all = component.iter().all(|&s| answered[s as usize]);
            prop_assert_eq!(
                engine_all, oracle,
                "seed={} component={:?}", seed, component
            );
        }
    }
}
