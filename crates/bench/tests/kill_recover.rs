//! Property test: kill the durable coordinator after an *arbitrary*
//! byte prefix of its write-ahead log — not just at a record boundary —
//! and reopening must still account exactly-once for every record that
//! survived the cut.
//!
//! Because submits are appended in acknowledgment (= ascending id)
//! order, a torn tail leaves some prefix of the acknowledged queries in
//! the log. Recovery must resurface exactly that prefix: each surviving
//! id exactly once, with its exact terminal outcome when the outcome
//! record also survived, and pending otherwise. Nothing invents
//! outcomes, nothing duplicates ids, and the recovered coordinator
//! still flushes.

use eq_core::durable::WAL_FILE;
use eq_core::{DurableCoordinator, EngineConfig, EngineMode, SubmitRequest};
use eq_workload::grid_pairs;
use proptest::prelude::*;

fn config() -> EngineConfig {
    EngineConfig {
        mode: EngineMode::SetAtATime { batch_size: 0 },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn torn_wal_recovers_a_prefix_exactly_once(
        n in 1usize..12,
        seed in 0u64..1024,
        cut_permille in 0u64..=1000,
    ) {
        let dir = eq_store::scratch_dir("kill-recover-prop");
        let queries = grid_pairs(n, seed);

        // Run: submit half, flush (producing terminal outcomes), submit
        // the rest, then die without ceremony.
        let before = {
            let dc = DurableCoordinator::open(&dir, config()).unwrap();
            let half = queries.len() / 2;
            for q in &queries[..half] {
                dc.submit(SubmitRequest::new(q.clone())).unwrap();
            }
            dc.flush();
            for q in &queries[half..] {
                dc.submit(SubmitRequest::new(q.clone())).unwrap();
            }
            dc.accounting()
        };

        // The kill tears the log at an arbitrary byte offset.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let keep = len * cut_permille / 1000;
        let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(keep).unwrap();
        file.sync_all().unwrap();
        drop(file);

        let dc = DurableCoordinator::open(&dir, config()).unwrap();
        let after = dc.accounting();

        // Exactly-once: the survivors are a prefix of the acknowledged
        // ids, each appearing once (accounting is sorted ascending).
        prop_assert!(after.len() <= before.len());
        for w in after.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "duplicate or unsorted recovered id");
        }
        for (i, (id, outcome)) in after.iter().enumerate() {
            let (orig_id, orig_outcome) = &before[i];
            prop_assert_eq!(id, orig_id, "recovered ids must be the acknowledged prefix");
            // A recovered terminal outcome must be the exact one
            // acknowledged pre-kill; pending is legal either way (the
            // query was pending pre-kill, or its outcome record fell
            // past the cut).
            if let Some(out) = outcome {
                prop_assert_eq!(Some(out), orig_outcome.as_ref());
            }
        }

        // The recovered pool is live, not a husk.
        dc.flush();
        eq_store::purge_dir(&dir);
    }
}
