//! Resident match-graph throughput under churn: the same interleaved
//! submit/flush/cancel script driven through the resident engine
//! (dirty-component flushes, sequential and parallel) and through a
//! rebuild-per-flush baseline that reconstructs the match graph from
//! the whole pending pool on every flush (the pre-resident engine's
//! strategy). The resident rows also print how many components each
//! strategy actually evaluated versus skipped clean.

use eq_bench::harness::{smoke_mode, BenchGroup};
use eq_bench::{drive_churn_rebuild, drive_churn_resident};
use eq_workload::{build_database, churn_script, ChurnConfig, SocialGraph, SocialGraphConfig};

fn main() {
    let (users, sizes, flush_every): (usize, &[usize], usize) = if smoke_mode() {
        (1_000, &[400], 50)
    } else {
        (5_000, &[2_000, 10_000], 250)
    };
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users,
        planted_cliques: 100,
        ..Default::default()
    });
    let db = build_database(&graph);

    let mut group = BenchGroup::new("fig_resident");
    group.sample_size(if smoke_mode() { 3 } else { 10 });
    for &n in sizes {
        let ops = churn_script(
            &graph,
            &ChurnConfig {
                queries: n,
                flush_every,
                solo_permille: 300,
                seed: 7,
            },
        );
        group.bench_with_setup(
            "resident (dirty flush)",
            n as u64,
            || eq_bench::clone_db(&db),
            |db| drive_churn_resident(db, &ops, 1),
        );
        group.bench_with_setup(
            "resident (parallel dirty flush)",
            n as u64,
            || eq_bench::clone_db(&db),
            |db| drive_churn_resident(db, &ops, 0),
        );
        group.bench("rebuild per flush", n as u64, || {
            drive_churn_rebuild(&db, &ops)
        });

        // One instrumented pass outside the timing loop: how much match
        // state was reused.
        let (_, counters) = drive_churn_resident(eq_bench::clone_db(&db), &ops, 1);
        println!(
            "  [counters n={n}] flushes={} components_evaluated={} skipped_clean={} \
             mgu_calls={} answered={}",
            counters.flushes,
            counters.components,
            counters.skipped_clean,
            counters.mgu_calls,
            counters.answered
        );
    }
}
