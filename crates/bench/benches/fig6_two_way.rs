//! Criterion version of Figure 6: incremental coordination throughput
//! on the two-way (random + best-case) and three-way workloads, at
//! reduced scale so `cargo bench` stays fast. Run the `fig6` binary for
//! the paper-scale sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_core::engine::NoSolutionPolicy;
use eq_core::{CoordinationEngine, EngineConfig, EngineMode};
use eq_workload::{
    build_database, three_way_triangles, two_way_pairs, PairStyle, SocialGraph,
    SocialGraphConfig,
};

fn engine(graph: &SocialGraph) -> CoordinationEngine {
    CoordinationEngine::new(
        build_database(graph),
        EngineConfig {
            mode: EngineMode::Incremental,
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            ..Default::default()
        },
    )
}

fn bench_fig6(c: &mut Criterion) {
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users: 5_000,
        planted_cliques: 300,
        ..Default::default()
    });
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for n in [200usize, 1_000] {
        let random = two_way_pairs(&graph, n, PairStyle::Random, 1);
        let best = two_way_pairs(&graph, n, PairStyle::BestCase, 2);
        let three = three_way_triangles(&graph, n, 3);
        group.bench_with_input(BenchmarkId::new("two-way random", n), &random, |b, qs| {
            b.iter(|| {
                let mut e = engine(&graph);
                for q in qs {
                    let _ = e.submit(q.clone());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("two-way best-case", n), &best, |b, qs| {
            b.iter(|| {
                let mut e = engine(&graph);
                for q in qs {
                    let _ = e.submit(q.clone());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("three-way", n), &three, |b, qs| {
            b.iter(|| {
                let mut e = engine(&graph);
                for q in qs {
                    let _ = e.submit(q.clone());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
