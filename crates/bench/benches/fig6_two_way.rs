//! Harness version of Figure 6: incremental coordination throughput on
//! the two-way (random + best-case) and three-way workloads, at reduced
//! scale so `cargo bench` stays fast. Run the `fig6` binary for the
//! paper-scale sweep.

use eq_bench::harness::{smoke_mode, BenchGroup};
use eq_core::engine::NoSolutionPolicy;
use eq_core::{CoordinationEngine, EngineConfig, EngineMode};
use eq_workload::{
    build_database, three_way_triangles, two_way_pairs, PairStyle, SocialGraph, SocialGraphConfig,
};

fn engine(graph: &SocialGraph) -> CoordinationEngine {
    CoordinationEngine::new(
        build_database(graph),
        EngineConfig {
            mode: EngineMode::Incremental,
            admission_safety_check: false,
            on_no_solution: NoSolutionPolicy::Reject,
            ..Default::default()
        },
    )
}

fn main() {
    let (users, cliques, sizes): (usize, usize, &[usize]) = if smoke_mode() {
        (1_000, 60, &[100])
    } else {
        (5_000, 300, &[200, 1_000])
    };
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users,
        planted_cliques: cliques,
        ..Default::default()
    });
    let mut group = BenchGroup::new("fig6");
    group.sample_size(10);
    for &n in sizes {
        let workloads = [
            (
                "two-way random",
                two_way_pairs(&graph, n, PairStyle::Random, 1),
            ),
            (
                "two-way best-case",
                two_way_pairs(&graph, n, PairStyle::BestCase, 2),
            ),
            ("three-way", three_way_triangles(&graph, n, 3)),
        ];
        for (series, qs) in &workloads {
            group.bench(series, n as u64, || {
                let mut e = engine(&graph);
                for q in qs {
                    let _ = e.submit(q.clone());
                }
            });
        }
    }
}
