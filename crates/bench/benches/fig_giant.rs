//! Intra-component evaluation under one giant entangled ring: the
//! sequential combined join versus the partitioned work-unit path at
//! several worker counts. The non-timing sweep (with JSON output and
//! the 100k bounded-event mode) lives in the `fig_giant` bin; this
//! bench target gives CI a smoke run and developers a stable A/B
//! timer.

use eq_bench::harness::{smoke_mode, BenchGroup};
use eq_bench::{clone_db, drive_giant};
use eq_core::EngineConfig;
use eq_workload::{giant_component, GiantBody, GiantComponentConfig};

fn main() {
    let (n, k, threads): (usize, usize, &[usize]) = if smoke_mode() {
        (500, 6, &[1, 2, 4])
    } else {
        (10_000, 12, &[1, 2, 4, 8])
    };
    let (chain_db, chain_queries) = giant_component(&GiantComponentConfig {
        queries: n,
        friends_per_user: k,
        body: GiantBody::Chain,
    });
    let (tri_db, tri_queries) = giant_component(&GiantComponentConfig {
        queries: n,
        friends_per_user: k,
        body: GiantBody::Triangle,
    });
    let (shared_db, shared_queries) = giant_component(&GiantComponentConfig {
        queries: n,
        friends_per_user: k,
        body: GiantBody::SharedChain,
    });
    let (wide_db, wide_queries) = giant_component(&GiantComponentConfig {
        queries: n,
        friends_per_user: k,
        body: GiantBody::SharedWide,
    });
    let crossover = EngineConfig::default().intra_split_crossover;

    let mut group = BenchGroup::new("fig_giant");
    group.sample_size(if smoke_mode() { 3 } else { 5 });

    // The pre-intra engine's only option: one combined join over the
    // whole ring (chain bodies — backtrack-free, so it terminates).
    // Quadratic atom-selection scan: one sample is plenty at scale.
    {
        let mut seq = BenchGroup::new("fig_giant (sequential baseline)");
        seq.sample_size(1);
        seq.bench_with_setup(
            "sequential (one combined join)",
            n as u64,
            || clone_db(&chain_db),
            |db| drive_giant(db, &chain_queries, usize::MAX, 1, usize::MAX, crossover),
        );
        // The shared-variable ring as a single work unit: same
        // quadratic atom-selection asymptotics, one sample.
        seq.bench_with_setup(
            "shared chain (one work unit)",
            n as u64,
            || clone_db(&shared_db),
            |db| drive_giant(db, &shared_queries, 1, 1, usize::MAX, crossover),
        );
    }

    for &t in threads {
        group.bench_with_setup(
            &format!("intra chain ({t} threads)"),
            n as u64,
            || clone_db(&chain_db),
            |db| drive_giant(db, &chain_queries, 1, t, usize::MAX, crossover),
        );
    }
    for &t in threads {
        group.bench_with_setup(
            &format!("intra triangle ({t} threads)"),
            n as u64,
            || clone_db(&tri_db),
            |db| drive_giant(db, &tri_queries, 1, t, usize::MAX, crossover),
        );
    }
    for &t in threads {
        group.bench_with_setup(
            &format!("shared chain, region split ({t} threads)"),
            n as u64,
            || clone_db(&shared_db),
            |db| drive_giant(db, &shared_queries, 1, t, 16, 0),
        );
    }
    // The streaming stress flavor: Θ(k²) local solutions per pendant
    // region, witness maps bounded by the articulation domain k.
    for &t in threads {
        group.bench_with_setup(
            &format!("shared wide, region split ({t} threads)"),
            n as u64,
            || clone_db(&wide_db),
            |db| drive_giant(db, &wide_queries, 1, t, 16, 0),
        );
    }
}
