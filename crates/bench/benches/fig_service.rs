//! Coordinator service throughput: sequential `submit` versus batched
//! parallel admission (`submit_batch`) on an admission-heavy hub-mix
//! workload, plus the long-running service-script harness driven
//! sequentially and batched. The non-timing sweep (with JSON output)
//! lives in the `fig_service` bin; this bench target gives CI a smoke
//! run and developers a stable A/B timer.

use eq_bench::harness::{smoke_mode, BenchGroup};
use eq_bench::{clone_db, drive_scale_harness, drive_service_harness};
use eq_core::{Coordinator, EngineConfig, EngineMode, NoSolutionPolicy, SubmitRequest};
use eq_workload::{
    build_database, grid_pairs, scale_service_script, service_script, ScaleServiceConfig,
    ServiceConfig, SocialGraph, SocialGraphConfig,
};

fn coordinator(db: eq_db::Database, flush_threads: usize) -> Coordinator {
    Coordinator::new(
        db,
        EngineConfig {
            mode: EngineMode::SetAtATime { batch_size: 0 },
            // The Figure 9 service posture: every admission is
            // safety-checked. Sequential submits scan the indexes for
            // the check and again for edge discovery; submit_batch
            // decides safety from the edge probes.
            admission_safety_check: true,
            on_no_solution: NoSolutionPolicy::Reject,
            flush_threads,
            ..Default::default()
        },
    )
}

fn main() {
    let (users, sizes): (usize, &[usize]) = if smoke_mode() {
        (1_000, &[600])
    } else {
        (10_000, &[2_000, 10_000])
    };
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users,
        ..Default::default()
    });
    let db = build_database(&graph);

    let mut group = BenchGroup::new("fig_service");
    group.sample_size(if smoke_mode() { 3 } else { 10 });
    for &n in sizes {
        let queries = grid_pairs(n, 7);

        group.bench_with_setup(
            "sequential submit",
            n as u64,
            || coordinator(clone_db(&db), 1),
            |coordinator| {
                let mut session = coordinator.session();
                for q in &queries {
                    session
                        .submit(SubmitRequest::new(q.clone()))
                        .expect("valid query");
                }
                coordinator.pending_count()
            },
        );
        group.bench_with_setup(
            "submit_batch (parallel)",
            n as u64,
            || coordinator(clone_db(&db), 0),
            |coordinator| {
                let mut session = coordinator.session();
                let results = session.submit_batch(
                    queries
                        .iter()
                        .map(|q| SubmitRequest::new(q.clone()))
                        .collect(),
                );
                results.iter().filter(|r| r.is_ok()).count()
            },
        );

        // One instrumented harness pass outside the timing loop: events
        // delivered and answers pushed over the stream.
        let script = service_script(
            &graph,
            &ServiceConfig {
                queries: n,
                burst: (n / 16).max(1),
                flush_every_bursts: 4,
                solo_permille: 300,
                seed: 7,
            },
        );
        let (millis, counters) = drive_service_harness(clone_db(&db), &script, true, 0);
        println!(
            "  [harness n={n}] {millis:.1} ms, answered={} events={} flushes={}",
            counters.answered, counters.events, counters.flushes
        );

        // The staleness + KeepPending churn script (ROADMAP 100k scale
        // target; CI smoke scales it down). The drive asserts its exact
        // outcome accounting — every zero-staleness query expires,
        // every deferred KeepPending pair coordinates after the Load.
        let scale = scale_service_script(
            &graph,
            &ScaleServiceConfig {
                queries: n,
                burst: (n / 16).max(1),
                seed: 7,
                ..Default::default()
            },
        );
        let (millis, counters, _) = drive_scale_harness(clone_db(&db), &scale, 0, 1);
        println!(
            "  [scale n={n}] {millis:.1} ms, answered={} expired={} flushes={}",
            counters.answered, counters.expired, counters.flushes
        );

        // The sharded flavor of the same churn: thousands-of-sessions
        // traffic over locality groups, driven through 4 engine shards
        // with out-of-lock dispatch. The interesting figures are the
        // lock-hold counters (see the fig_service bin / JSON sweep);
        // here it doubles as a smoke of the sharded admission path.
        let sharded = scale_service_script(
            &graph,
            &ScaleServiceConfig {
                queries: n,
                burst: (n / 16).max(1),
                sessions: (n / 10).max(2),
                locality_groups: 16,
                cross_permille: 30,
                seed: 7,
                ..Default::default()
            },
        );
        let (millis, counters, shard_stats) = drive_scale_harness(clone_db(&db), &sharded, 0, 4);
        let max_hold = shard_stats.iter().map(|s| s.max_hold_ns).max().unwrap_or(0);
        println!(
            "  [sharded n={n}] {millis:.1} ms, answered={} dispatch_peak={} max_shard_hold={}ns",
            counters.answered, counters.dispatch_queue_peak, max_hold
        );
    }
}
