//! Ablation benches for design decisions called out in DESIGN.md:
//!
//! 1. **Atom index vs pairwise edge discovery** (§4.1.4): the paper's
//!    `(Relation, Position, Value/Δ)` index against exhaustive pairwise
//!    unification of all heads with all postconditions.
//! 2. **Safe matching vs brute-force search** (Theorem 3.1 vs Theorem
//!    2.1): the polynomial pipeline against the exponential generic
//!    coordinating-set search, on a workload both can handle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eq_bench::pairwise_edge_count;
use eq_core::graph::MatchGraph;
use eq_core::{bruteforce, coordinate};
use eq_ir::{EntangledQuery, VarGen};
use eq_workload::{build_database, two_way_pairs, PairStyle, SocialGraph, SocialGraphConfig};

fn renamed(queries: &[EntangledQuery]) -> Vec<EntangledQuery> {
    let gen = VarGen::new();
    queries.iter().map(|q| q.rename_apart(&gen)).collect()
}

fn bench_index_vs_pairwise(c: &mut Criterion) {
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users: 5_000,
        planted_cliques: 100,
        ..Default::default()
    });
    let mut group = c.benchmark_group("ablation-edge-discovery");
    group.sample_size(10);
    for n in [200usize, 1_000] {
        let qs = renamed(&two_way_pairs(&graph, n, PairStyle::BestCase, 7));
        group.bench_with_input(BenchmarkId::new("indexed", n), &qs, |b, qs| {
            b.iter(|| MatchGraph::build(qs.clone()).edges().len())
        });
        group.bench_with_input(BenchmarkId::new("pairwise", n), &qs, |b, qs| {
            b.iter(|| pairwise_edge_count(qs))
        });
    }
    group.finish();
}

fn bench_matching_vs_bruteforce(c: &mut Criterion) {
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users: 2_000,
        planted_cliques: 100,
        ..Default::default()
    });
    let db = build_database(&graph);
    let mut group = c.benchmark_group("ablation-matching-vs-bruteforce");
    group.sample_size(10);
    // Brute force is exponential in the query count: keep it tiny.
    for n in [4usize, 8] {
        let qs = two_way_pairs(&graph, n, PairStyle::BestCase, 11);
        group.bench_with_input(BenchmarkId::new("safe matching", n), &qs, |b, qs| {
            b.iter(|| coordinate(qs, &db).unwrap().answers.len())
        });
        let rn = renamed(&qs);
        group.bench_with_input(BenchmarkId::new("brute force", n), &rn, |b, qs| {
            b.iter(|| {
                bruteforce::find_coordinating_set(qs, &db, false)
                    .unwrap()
                    .is_some()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_vs_pairwise, bench_matching_vs_bruteforce);
criterion_main!(benches);
