//! Ablation benches for design decisions called out in DESIGN.md:
//!
//! 1. **Atom index vs pairwise edge discovery** (§4.1.4): the paper's
//!    `(Relation, Position, Value/Δ)` index against exhaustive pairwise
//!    unification of all heads with all postconditions.
//! 2. **Safe matching vs brute-force search** (Theorem 3.1 vs Theorem
//!    2.1): the polynomial pipeline against the exponential generic
//!    coordinating-set search, on a workload both can handle.

use eq_bench::harness::{smoke_mode, BenchGroup};
use eq_bench::pairwise_edge_count;
use eq_core::graph::MatchGraph;
use eq_core::{bruteforce, coordinate};
use eq_ir::{EntangledQuery, VarGen};
use eq_workload::{build_database, two_way_pairs, PairStyle, SocialGraph, SocialGraphConfig};

fn renamed(queries: &[EntangledQuery]) -> Vec<EntangledQuery> {
    let gen = VarGen::new();
    queries.iter().map(|q| q.rename_apart(&gen)).collect()
}

fn main() {
    let smoke = smoke_mode();
    let graph = SocialGraph::generate(&SocialGraphConfig {
        users: if smoke { 1_000 } else { 5_000 },
        planted_cliques: 100,
        ..Default::default()
    });

    let mut group = BenchGroup::new("ablation-edge-discovery");
    group.sample_size(10);
    let sizes: &[usize] = if smoke { &[100] } else { &[200, 1_000] };
    for &n in sizes {
        let qs = renamed(&two_way_pairs(&graph, n, PairStyle::BestCase, 7));
        group.bench("indexed", n as u64, || {
            MatchGraph::build(qs.clone()).edges().len()
        });
        group.bench("pairwise", n as u64, || pairwise_edge_count(&qs));
    }

    let graph = SocialGraph::generate(&SocialGraphConfig {
        users: if smoke { 500 } else { 2_000 },
        planted_cliques: 100,
        ..Default::default()
    });
    let db = build_database(&graph);
    let mut group = BenchGroup::new("ablation-matching-vs-bruteforce");
    group.sample_size(10);
    // Brute force is exponential in the query count: keep it tiny.
    let sizes: &[usize] = if smoke { &[4] } else { &[4, 8] };
    for &n in sizes {
        let qs = two_way_pairs(&graph, n, PairStyle::BestCase, 11);
        group.bench("safe matching", n as u64, || {
            coordinate(&qs, &db).unwrap().answers.len()
        });
        let rn = renamed(&qs);
        group.bench("brute force", n as u64, || {
            bruteforce::find_coordinating_set(&rn, &db, false)
                .unwrap()
                .is_some()
        });
    }
}
